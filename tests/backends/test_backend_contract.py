"""The result-backend contract, enforced over every implementation.

Each registered backend (json, sqlite, memory) must behave identically
behind the :class:`ResultBackend` interface: get/put round-trips,
corruption recovery, concurrent-writer safety, and the maintenance
surface (``keys``/``info``/``clear``/``delete``). The suite is
parametrized so adding a backend means adding one fixture row, not a new
test file.
"""

import json
import sqlite3
import threading

import pytest

from repro.backends import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    JsonBackend,
    MemoryBackend,
    ResultBackend,
    SqliteBackend,
    backend_names,
    create_backend,
    resolve_backend_kind,
)

BACKENDS = sorted(backend_names())


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    store = create_backend(request.param, tmp_path / "store")
    yield store
    store.close()


def corrupt_entry(store: ResultBackend, key: str) -> None:
    """Rot the stored bytes for ``key`` in a backend-specific way."""
    if isinstance(store, JsonBackend):
        store.path(key).write_text("{not json", encoding="utf-8")
    elif isinstance(store, SqliteBackend):
        with sqlite3.connect(store.db_path) as conn:
            conn.execute(
                "UPDATE results SET payload = ? WHERE key = ?",
                ("{not json", key),
            )
    elif isinstance(store, MemoryBackend):
        with store._lock:
            store._data[key] = "{not json"
    else:  # pragma: no cover - future backends must opt in
        raise NotImplementedError(type(store).__name__)


PAYLOAD = {
    "schema_version": 1,
    "result": {"wall_s": 1.25, "counters": {"cycles": 123}},
    "nested": {"list": [1, 2, 3], "none": None, "flag": True},
}


class TestRoundTrip:
    def test_get_missing_returns_none(self, backend):
        assert backend.get("deadbeef") is None

    def test_put_get_round_trip(self, backend):
        backend.put("k1", PAYLOAD)
        assert backend.get("k1") == PAYLOAD

    def test_stored_entry_isolated_from_caller_mutation(self, backend):
        payload = {"a": [1, 2]}
        backend.put("k1", payload)
        payload["a"].append(3)
        assert backend.get("k1") == {"a": [1, 2]}

    def test_put_overwrites_last_writer_wins(self, backend):
        backend.put("k1", {"v": 1})
        backend.put("k1", {"v": 2})
        assert backend.get("k1") == {"v": 2}

    def test_unserializable_payload_rejected(self, backend):
        with pytest.raises(TypeError):
            backend.put("k1", {"bad": object()})


class TestMaintenance:
    def test_delete_is_idempotent(self, backend):
        backend.put("k1", {"v": 1})
        backend.delete("k1")
        backend.delete("k1")  # second delete must not raise
        assert backend.get("k1") is None

    def test_keys_sorted(self, backend):
        for key in ("bb", "aa", "cc"):
            backend.put(key, {"k": key})
        assert backend.keys() == ["aa", "bb", "cc"]

    def test_clear_empties_and_counts(self, backend):
        for i in range(3):
            backend.put(f"k{i}", {"i": i})
        assert backend.clear() == 3
        assert backend.keys() == []
        assert backend.clear() == 0

    def test_info_reports_contract_fields(self, backend):
        backend.put("k1", PAYLOAD)
        info = backend.info()
        assert info["backend"] == backend.kind
        assert isinstance(info["path"], str)
        assert info["entries"] == 1
        assert info["bytes"] > 0

    def test_context_manager_closes(self, backend):
        with backend as store:
            store.put("k1", {"v": 1})
            assert store.get("k1") == {"v": 1}


class TestCorruptionRecovery:
    def test_corrupt_entry_reads_as_missing(self, backend):
        backend.put("k1", PAYLOAD)
        corrupt_entry(backend, "k1")
        assert backend.get("k1") is None

    def test_corrupt_entry_recovers_on_next_put(self, backend):
        backend.put("k1", PAYLOAD)
        corrupt_entry(backend, "k1")
        assert backend.get("k1") is None
        backend.put("k1", {"v": "fresh"})
        assert backend.get("k1") == {"v": "fresh"}


class TestConcurrency:
    def test_concurrent_writers_leave_intact_entries(self, backend):
        """Racing writers of a shared keyspace never leave torn entries:
        every surviving payload is one that some writer actually wrote."""
        writers, rounds, keyspace = 8, 20, [f"key{i}" for i in range(4)]
        errors = []

        def hammer(worker: int) -> None:
            try:
                for round_no in range(rounds):
                    for key in keyspace:
                        backend.put(
                            key, {"worker": worker, "round": round_no}
                        )
                        got = backend.get(key)
                        # Another writer may have replaced the entry,
                        # but a torn/corrupt read is a contract breach.
                        assert got is None or (
                            set(got) == {"worker", "round"}
                        ), got
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for key in keyspace:
            final = backend.get(key)
            assert set(final) == {"worker", "round"}
            assert 0 <= final["worker"] < writers
            assert final["round"] == rounds - 1


class TestFactory:
    def test_registry_covers_expected_backends(self):
        assert {"json", "sqlite", "memory"} <= set(BACKENDS)

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown result backend"):
            create_backend("bogus", tmp_path)

    def test_env_var_selects_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        store = create_backend(None, tmp_path)
        assert isinstance(store, SqliteBackend)

    def test_argument_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        store = create_backend("memory", tmp_path)
        assert isinstance(store, MemoryBackend)

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend_kind() == DEFAULT_BACKEND

    def test_json_backend_stores_one_file_per_key(self, tmp_path):
        store = JsonBackend(tmp_path)
        store.put("abc123", {"v": 1})
        path = store.path("abc123")
        assert path.name == "abc123.json"
        assert json.loads(path.read_text()) == {"v": 1}

    def test_sqlite_backend_stores_one_database(self, tmp_path):
        store = SqliteBackend(tmp_path)
        store.put("abc123", {"v": 1})
        store.put("def456", {"v": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["results.sqlite"]
