"""``POST /api/v1/fleets`` end to end: the acceptance criterion that a
fleet submitted over HTTP is identical — content key and platform
metrics — to the same request simulated directly."""

import json
import urllib.error
import urllib.request

import pytest

from repro.fleet import FleetRequest, FleetResult, simulate_fleet
from repro.harness.engine import ExperimentEngine
from repro.service.app import ExperimentServer
from repro.service.client import ServiceClient
from repro.service.wire import (
    WireError,
    fleet_request_from_wire,
    fleet_request_to_wire,
)


def small_fleet(**overrides) -> FleetRequest:
    defaults = dict(
        workloads=("aes",),
        invocations=300,
        duration_s=300.0,
        seed=5,
        profile_seeds=1,
        invocation_allocs=250,
        keep_alive_s=30.0,
    )
    defaults.update(overrides)
    return FleetRequest(**defaults)


@pytest.fixture
def server(tmp_path):
    engine = ExperimentEngine(cache_dir=tmp_path, backend="memory")
    with ExperimentServer(host="127.0.0.1", port=0, engine=engine) as srv:
        yield srv


class TestWire:
    def test_round_trip(self):
        request = small_fleet()
        assert (
            fleet_request_from_wire(fleet_request_to_wire(request))
            == request
        )

    def test_partial_payload_uses_defaults(self):
        request = fleet_request_from_wire(
            {"invocations": 100, "seed": 9}
        )
        assert request.invocations == 100 and request.seed == 9
        assert request.pattern == "poisson"

    def test_non_object_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            fleet_request_from_wire([1, 2])

    def test_unknown_field_rejected(self):
        with pytest.raises(WireError, match="unknown FleetRequest"):
            fleet_request_from_wire({"invocations": 10, "oops": 1})


class TestEndpoint:
    def test_http_fleet_matches_direct_execution(self, server):
        request = small_fleet()
        client = ServiceClient(server.url)
        job_id = client.submit_fleet(request)
        over_http = client.fleet_result(job_id, timeout=300)

        direct = simulate_fleet(
            request, engine=ExperimentEngine(cache_dir=None)
        )
        assert over_http.fleet_key == request.content_key()
        assert over_http.to_dict() == direct.to_dict()

    def test_submission_response_carries_fleet_key(self, server):
        request = small_fleet()
        body = json.dumps(request.to_dict()).encode("utf-8")
        http_request = urllib.request.Request(
            f"{server.url}/api/v1/fleets",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(http_request, timeout=30) as response:
            payload = json.loads(response.read())
            assert response.status == 202
        assert payload["fleet_key"] == request.content_key()
        assert payload["state"] == "queued"
        # The job lists the fleet's workloads and stacks like run jobs.
        client = ServiceClient(server.url)
        status = client.status(payload["job_id"])
        assert status["kind"] == "fleet"
        assert status["workloads"] == ["aes"]

    def test_malformed_fleet_is_400(self, server):
        body = json.dumps({"invocations": 0}).encode("utf-8")
        http_request = urllib.request.Request(
            f"{server.url}/api/v1/fleets",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http_request, timeout=30)
        assert excinfo.value.code == 400

    def test_fleet_result_payload_parses_as_fleet_result(self, server):
        client = ServiceClient(server.url)
        job_id = client.submit_fleet(small_fleet())
        result = client.fleet_result(job_id, timeout=300)
        assert isinstance(result, FleetResult)
        assert "baseline" in result.stacks and "memento" in result.stacks
