"""End-to-end HTTP service tests against a live in-process server.

The acceptance criteria from the service redesign live here: an
HTTP-submitted run is bit-identical (counter digest included) to the
same request executed directly through the engine, under both the json
and sqlite backends; and eight simultaneous submissions all complete
with correct lifecycle transitions and no cross-job result mixing.
"""

import hashlib
import json
import threading
import urllib.request
from dataclasses import replace

import pytest

from repro.harness.engine import ExperimentEngine, RunRequest
from repro.obs.ledger import counter_digest
from repro.service.app import ExperimentServer
from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.workloads.registry import get_workload


def small(name: str = "aes", num_allocs: int = 1_200):
    return replace(get_workload(name), num_allocs=num_allocs)


def payload_digest(result) -> str:
    """Digest of the full result payload, counters included."""
    blob = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@pytest.fixture
def server(tmp_path):
    engine = ExperimentEngine(cache_dir=tmp_path, backend="memory")
    with ExperimentServer(host="127.0.0.1", port=0, engine=engine) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30)


def http_get(url: str):
    """Raw GET bypassing the client, for status-code assertions."""
    request = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["backend"] == "memory"
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed"
        }

    def test_workloads_lists_registry(self, client):
        assert "html" in client.workloads()

    def test_metrics_exposition_format(self, client):
        text = client.metrics()
        assert "# TYPE repro_service_http_requests gauge" in text
        assert 'component="service"' in text
        assert 'component="engine"' in text

    def test_unknown_route_404(self, server):
        status, payload = http_get(f"{server.url}/api/v1/nope")
        assert status == 404
        assert "no route" in payload["error"]

    def test_wrong_method_405(self, server):
        status, payload = http_get(f"{server.url}/api/v1/runs")
        assert status == 405

    def test_unknown_job_404(self, server):
        status, payload = http_get(f"{server.url}/api/v1/jobs/feedface")
        assert status == 404

    def test_malformed_submission_400(self, server, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"workload": "nope", "memento": True})
        assert err.value.status == 400

    def test_non_json_body_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/api/v1/runs",
            data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400

    def test_run_endpoint_rejects_batches(self, server, client):
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/api/v1/runs", {"requests": [
                {"workload": "html", "memento": True},
                {"workload": "html", "memento": False},
            ]})
        assert err.value.status == 400


class TestJobLifecycle:
    def test_submit_poll_fetch(self, client):
        job_id = client.submit({
            "workload": "aes", "memento": True,
            "spec_overrides": {"num_allocs": 1_200},
        })
        result = client.result(job_id, timeout=60)
        assert result.name == "aes" and result.memento is True
        status = client.status(job_id)
        assert status["state"] == "done"
        assert [s for s, _ in status["transitions"]] == [
            "queued", "running", "done"
        ]

    def test_failed_job_reports_error(self, client):
        job_id = client.submit(RunRequest(
            small(), memento=False,
            allocator="pymalloc", allocator_kwargs=(("bogus_kw", 1),),
        ))
        with pytest.raises(JobFailed, match="bogus_kw"):
            client.results(job_id, timeout=60)

    def test_result_before_done_is_202(self, server, client):
        job_id = client.submit(RunRequest(small(), memento=True))
        # Immediately racing the worker: the result endpoint must answer
        # 202 (not an error) at least until the job finishes.
        status, payload = http_get(
            f"{server.url}/api/v1/jobs/{job_id}/result"
        )
        assert status in (200, 202)
        client.results(job_id, timeout=60)

    def test_sweep_results_in_request_order(self, client):
        job_id = client.submit_sweep([
            RunRequest(small(), memento=True),
            RunRequest(small(), memento=False),
        ])
        results = client.results(job_id, timeout=120)
        assert [r.memento for r in results] == [True, False]


@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_http_run_bit_identical_to_direct(tmp_path, backend):
    """HTTP-submitted and direct runs agree bit-for-bit (counter digest
    included) and share one cache entry, under both durable backends."""
    engine = ExperimentEngine(cache_dir=tmp_path / backend, backend=backend)
    request = RunRequest(small("html"), memento=True)
    with ExperimentServer(host="127.0.0.1", port=0, engine=engine) as srv:
        client = ServiceClient(srv.url, timeout=30)
        served = client.result(client.submit(request), timeout=60)
    direct = ExperimentEngine(use_disk_cache=False).run(request)
    assert served.to_dict() == direct.to_dict()
    assert payload_digest(served) == payload_digest(direct)
    # Same digest the run ledger records: the determinism canary agrees.
    assert counter_digest(served.stats) == counter_digest(direct.stats)
    # The served run persisted under the request's content key, so the
    # direct engine pointed at the same store now gets a disk hit.
    warm = ExperimentEngine(cache_dir=tmp_path / backend, backend=backend)
    assert warm.run(request).to_dict() == served.to_dict()
    assert warm.stats.snapshot().get("engine.disk.hits", 0) >= 1


def test_eight_simultaneous_submissions(server, client):
    """≥8 concurrent HTTP submissions: every job completes, transitions
    stay ordered, and each job's results match its own request."""
    specs = [
        ("aes", True), ("aes", False), ("html", True), ("html", False),
        ("ir", True), ("ir", False), ("bfs", True), ("bfs", False),
    ]
    job_ids = [None] * len(specs)
    errors = []

    def submit(index: int, name: str, memento: bool) -> None:
        try:
            job_ids[index] = client.submit(RunRequest(
                small(name), memento=memento
            ))
        except Exception as exc:  # noqa: BLE001 - collected below
            errors.append(exc)

    threads = [
        threading.Thread(target=submit, args=(i, name, memento))
        for i, (name, memento) in enumerate(specs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(set(job_ids)) == len(specs)

    for job_id, (name, memento) in zip(job_ids, specs):
        result = client.result(job_id, timeout=120)
        # No cross-job mixing: the payload matches this job's request.
        assert result.name == name
        assert result.memento is memento
        status = client.status(job_id)
        states = [s for s, _ in status["transitions"]]
        assert states == ["queued", "running", "done"]
        times = [t for _, t in status["transitions"]]
        assert times == sorted(times)

    counts = client.healthz()["jobs"]
    assert counts["done"] == len(specs)
    assert counts["failed"] == 0
