"""Service telemetry: trace propagation, health teeth, client retries.

The tentpole acceptance criterion lives here: one trace id minted by the
client appears on the ``client.submit`` span, the synthesized
``job.queued``/``job.run`` spans, and the engine's own spans — readable
back through ``GET /api/v1/traces/<id>``, exported to JSONL, and
renderable as a valid Perfetto timeline.
"""

import io
import json
import urllib.error
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.harness.engine import ExperimentEngine, RunRequest
from repro.obs.metrics import read_jsonl
from repro.obs.timeline import export_timeline
from repro.obs.tracing import Tracer, set_tracer
from repro.service.app import ExperimentServer, ServiceState, op_health
from repro.service.client import ServiceClient, ServiceError
from repro.service.telemetry import ServiceTelemetry, stamp_trace_id
from repro.workloads.registry import get_workload


def small(name: str = "aes", num_allocs: int = 1_200):
    return replace(get_workload(name), num_allocs=num_allocs)


def walk(spans):
    stack = list(spans)
    while stack:
        span = stack.pop()
        yield span
        stack.extend(span.get("children", ()))


@pytest.fixture
def server(tmp_path):
    engine = ExperimentEngine(cache_dir=tmp_path, backend="memory")
    with ExperimentServer(
        host="127.0.0.1", port=0, engine=engine,
        telemetry_path=tmp_path / "telemetry.jsonl",
    ) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30)


class TestTracePropagation:
    def test_one_trace_id_spans_client_queue_and_engine(
        self, tmp_path, server, client
    ):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            job_id = client.submit(RunRequest(small(), memento=True))
            client.result(job_id, timeout=60)
        finally:
            set_tracer(previous)
        trace_id = client.last_trace_id
        assert trace_id

        # Client side: the submit span carries the id and the job id.
        client_spans = tracer.to_dict()["spans"]
        (submit_span,) = [
            s for s in client_spans if s["name"] == "client.submit"
        ]
        assert submit_span["attrs"]["trace_id"] == trace_id
        assert submit_span["attrs"]["job_id"] == job_id

        # Server side: the stored trace holds queue + engine spans, and
        # every one of them — children included — carries the same id.
        record = client.trace()
        assert record["trace_id"] == trace_id
        assert record["job_id"] == job_id
        names = [span["name"] for span in record["spans"]]
        assert names == ["job.queued", "job.run"]
        for span in walk(record["spans"]):
            assert span["attrs"]["trace_id"] == trace_id
        (run_span,) = [
            s for s in record["spans"] if s["name"] == "job.run"
        ]
        assert run_span["children"], "engine spans missing from job.run"

        # The JSONL export + the client's span record render into one
        # valid Perfetto timeline.
        exported = read_jsonl(server.state.telemetry.path)
        assert [r["trace_id"] for r in exported] == [trace_id]
        records = exported + [
            {"kind": "spans", "spans": client_spans}
        ]
        out = export_timeline(tmp_path / "trace.json", records)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_explicit_trace_id_is_honored(self, client):
        job_id = client.submit(
            RunRequest(small(), memento=False), trace_id="cafecafe"
        )
        client.result(job_id, timeout=60)
        assert client.last_trace_id == "cafecafe"
        assert client.trace("cafecafe")["job_id"] == job_id

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.trace("deadbeefdeadbeef")
        assert err.value.status == 404

    def test_trace_without_submission_raises(self):
        with pytest.raises(ServiceError, match="no trace id"):
            ServiceClient("http://127.0.0.1:9").trace()


class TestHealth:
    def test_healthy_state_reports_depth_and_liveness(self):
        state = ServiceState(ExperimentEngine(cache_dir=None), workers=2)
        try:
            status, payload, _ = op_health(state)
        finally:
            state.close()
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers_alive"] == 2
        assert payload["queue_depth"] == 0

    def test_dead_workers_flip_healthz_to_503(self):
        state = ServiceState(ExperimentEngine(cache_dir=None), workers=2)
        state.queue.shutdown(wait=True)
        status, payload, _ = op_health(state)
        assert status == 503
        assert payload["status"] == "degraded"
        assert payload["workers_alive"] == 0


class FakeResponse:
    def __init__(self, payload):
        self._payload = payload
        self.headers = {"Content-Type": "application/json"}

    def read(self):
        return json.dumps(self._payload).encode("utf-8")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestClientRetry:
    def flaky_client(self, failures: int, retries: int = 3,
                     backoff_s: float = 0.1):
        client = ServiceClient(
            "http://127.0.0.1:9", retries=retries, backoff_s=backoff_s
        )
        state = {"calls": 0}
        sleeps = []

        def fake_urlopen(request, timeout):
            state["calls"] += 1
            if state["calls"] <= failures:
                raise urllib.error.URLError("connection refused")
            return FakeResponse({"ok": state["calls"]})

        client._urlopen = fake_urlopen
        client._sleep = sleeps.append
        return client, state, sleeps

    def test_get_retries_with_exponential_backoff(self):
        client, state, sleeps = self.flaky_client(failures=2)
        assert client._request("GET", "/healthz") == {"ok": 3}
        assert state["calls"] == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backoff_is_capped(self):
        client, _, sleeps = self.flaky_client(
            failures=3, backoff_s=10.0
        )
        client._request("GET", "/healthz")
        assert sleeps == [2.0, 2.0, 2.0]

    def test_exhausted_retries_raise(self):
        client, state, _ = self.flaky_client(failures=99, retries=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client._request("GET", "/healthz")
        assert state["calls"] == 3

    def test_post_never_retries(self):
        client, state, sleeps = self.flaky_client(failures=99)
        with pytest.raises(ServiceError):
            client._request("POST", "/api/v1/runs", {"x": 1})
        assert state["calls"] == 1
        assert sleeps == []

    def test_http_errors_never_retry(self):
        client = ServiceClient("http://127.0.0.1:9", retries=3)
        state = {"calls": 0}

        def fake_urlopen(request, timeout):
            state["calls"] += 1
            raise urllib.error.HTTPError(
                "http://x", 404, "nope", {},
                io.BytesIO(b'{"error": "unknown job"}'),
            )

        client._urlopen = fake_urlopen
        client._sleep = lambda s: pytest.fail("must not sleep")
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/api/v1/jobs/x")
        assert err.value.status == 404
        assert "unknown job" in str(err.value)
        assert state["calls"] == 1


class FakeTracer:
    def to_dict(self):
        return {"spans": []}


def fake_job(job_id: str, trace_id: str, state: str = "done"):
    return SimpleNamespace(
        id=job_id, kind="run", state=state,
        submitted_pc=0.0, trace_id=trace_id,
    )


class TestServiceTelemetryUnit:
    def test_stamp_trace_id_reaches_nested_children(self):
        spans = [{
            "name": "a",
            "children": [{"name": "b", "children": [{"name": "c"}]}],
        }]
        stamp_trace_id(spans, "t1")
        assert all(
            span["attrs"]["trace_id"] == "t1" for span in walk(spans)
        )

    def test_observe_job_counts_and_histograms(self):
        telemetry = ServiceTelemetry()
        telemetry.observe_job(
            fake_job("j1", "t1"), FakeTracer(),
            started_pc=1.0, finished_pc=3.0,
        )
        snapshot = telemetry.snapshot()
        assert snapshot["service.jobs.finished.done"] == 1
        assert snapshot["service.jobs.kind.run"] == 1
        wait, run = telemetry.histogram_payloads()
        assert wait["name"] == "service.job.wait_us"
        assert wait["count"] == 1 and run["count"] == 1
        assert run["total"] == int(2.0 * 1e6)

    def test_trace_store_is_lru_bounded(self):
        telemetry = ServiceTelemetry(max_traces=2)
        for index in range(3):
            telemetry.observe_job(
                fake_job(f"j{index}", f"t{index}"), FakeTracer(),
                started_pc=0.0, finished_pc=0.0,
            )
        assert telemetry.trace("t0") is None
        assert telemetry.trace("t1")["job_id"] == "j1"
        assert telemetry.trace("t2")["job_id"] == "j2"
