"""Wire schema: RunRequest round-trips and submission parsing."""

from dataclasses import replace

import pytest

from repro.core.config import MementoConfig
from repro.harness.engine import RunRequest
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    run_request_from_wire,
    run_request_to_wire,
    run_requests_from_wire,
)
from repro.sim.params import MachineParams
from repro.workloads.registry import get_workload


def small(name: str = "aes", num_allocs: int = 1_500):
    return replace(get_workload(name), num_allocs=num_allocs)


def interesting_request() -> RunRequest:
    """A request exercising every nested codec path."""
    return RunRequest(
        small("html"),
        memento=True,
        config=MementoConfig(region_bytes=1 << 15),
        machine_params=MachineParams(),
        cold_start=True,
        mmap_populate=True,
    )


class TestRoundTrip:
    def test_round_trip_equality(self):
        request = interesting_request()
        rebuilt = run_request_from_wire(run_request_to_wire(request))
        assert rebuilt == request

    def test_round_trip_preserves_content_key(self):
        """The acceptance criterion behind HTTP/direct cache sharing:
        a round-tripped request hashes to the same content key."""
        for request in (
            interesting_request(),
            RunRequest(small(), memento=False),
            RunRequest(
                small(), memento=False,
                allocator="pymalloc",
                allocator_kwargs=(("arena_bytes", 131072),),
            ),
        ):
            rebuilt = run_request_from_wire(request.to_dict())
            assert rebuilt.content_key() == request.content_key()

    def test_wire_payload_is_versioned(self):
        payload = run_request_to_wire(interesting_request())
        assert payload["schema_version"] == WIRE_SCHEMA_VERSION

    def test_version_zero_payload_upgrades(self):
        payload = run_request_to_wire(interesting_request())
        del payload["schema_version"]
        assert run_request_from_wire(payload) == interesting_request()


class TestWorkloadByName:
    def test_workload_name_resolves_registry_spec(self):
        request = run_request_from_wire(
            {"workload": "html", "memento": True}
        )
        assert request.spec == get_workload("html")
        assert request.memento is True

    def test_spec_overrides_apply(self):
        request = run_request_from_wire({
            "workload": "html",
            "memento": False,
            "spec_overrides": {"num_allocs": 1_000},
        })
        assert request.spec.num_allocs == 1_000
        assert request.spec.name == "html"

    def test_named_workload_matches_inline_spec_key(self):
        by_name = run_request_from_wire(
            {"workload": "aes", "memento": True}
        )
        inline = RunRequest(get_workload("aes"), memento=True)
        assert by_name.content_key() == inline.content_key()


class TestRejections:
    def test_non_object_rejected(self):
        with pytest.raises(WireError, match="JSON object"):
            run_request_from_wire([1, 2, 3])

    def test_newer_schema_rejected(self):
        payload = {"workload": "html", "memento": True,
                   "schema_version": WIRE_SCHEMA_VERSION + 1}
        with pytest.raises(WireError, match="newer"):
            run_request_from_wire(payload)

    def test_unknown_workload_rejected(self):
        with pytest.raises(WireError, match="nope"):
            run_request_from_wire({"workload": "nope", "memento": True})

    def test_workload_and_spec_both_rejected(self):
        with pytest.raises(WireError, match="not both"):
            run_request_from_wire({
                "workload": "html", "spec": {}, "memento": True,
            })

    def test_bad_spec_overrides_rejected(self):
        with pytest.raises(WireError, match="spec_overrides"):
            run_request_from_wire({
                "workload": "html", "memento": True,
                "spec_overrides": {"no_such_field": 1},
            })

    def test_unknown_fields_rejected(self):
        with pytest.raises(WireError, match="unknown"):
            run_request_from_wire({
                "workload": "html", "memento": True, "surprise": 1,
            })

    def test_missing_memento_rejected(self):
        with pytest.raises(WireError):
            run_request_from_wire({"workload": "html"})


class TestBatch:
    def test_single_run_body(self):
        requests = run_requests_from_wire(
            {"workload": "html", "memento": True}
        )
        assert len(requests) == 1

    def test_sweep_body(self):
        requests = run_requests_from_wire({"requests": [
            {"workload": "html", "memento": True},
            {"workload": "html", "memento": False},
        ]})
        assert [r.stack for r in requests] == ["memento", "baseline"]

    def test_empty_sweep_rejected(self):
        with pytest.raises(WireError, match="non-empty"):
            run_requests_from_wire({"requests": []})

    def test_non_array_sweep_rejected(self):
        with pytest.raises(WireError, match="non-empty"):
            run_requests_from_wire({"requests": "html"})
