"""Job queue lifecycle: transitions, failure isolation, shutdown."""

from dataclasses import replace

import pytest

from repro.harness.engine import ExperimentEngine, RunRequest
from repro.service.jobs import JOB_STATES, JobQueue
from repro.workloads.registry import get_workload


def small(num_allocs: int = 1_200):
    return replace(get_workload("aes"), num_allocs=num_allocs)


@pytest.fixture
def engine():
    return ExperimentEngine(use_disk_cache=False)


@pytest.fixture
def queue(engine):
    jq = JobQueue(engine, workers=2)
    yield jq
    jq.shutdown()


def test_job_reaches_done_through_running(queue):
    job = queue.submit([RunRequest(small(), memento=True)])
    assert job.wait(timeout=60)
    assert job.state == "done"
    states = [state for state, _ in job.transitions]
    assert states == ["queued", "running", "done"]
    assert job.started_s is not None
    assert job.finished_s is not None and job.finished_s >= job.started_s


def test_done_job_carries_results_and_keys(queue, engine):
    request = RunRequest(small(), memento=True)
    job = queue.submit([request])
    assert job.wait(timeout=60)
    assert job.keys == [request.content_key(engine.cost_model)]
    assert len(job.results) == 1
    direct = engine.run(request)
    assert job.results[0] == direct.to_dict()


def test_failing_job_is_isolated(queue):
    # A bad allocator kwarg only detonates at system-build time, inside
    # the worker thread — exactly the failure path per-job isolation
    # must contain.
    bad = queue.submit([RunRequest(
        small(), memento=False,
        allocator="pymalloc", allocator_kwargs=(("bogus_kw", 1),),
    )])
    good = queue.submit([RunRequest(small(), memento=True)])
    assert bad.wait(timeout=60) and good.wait(timeout=60)
    assert bad.state == "failed"
    assert bad.error
    assert bad.results is None
    assert good.state == "done"


def test_sweep_job_preserves_request_order(queue):
    requests = [
        RunRequest(small(), memento=True),
        RunRequest(small(), memento=False),
    ]
    job = queue.submit(requests, kind="sweep")
    assert job.wait(timeout=120)
    assert job.state == "done"
    assert [r["memento"] for r in job.results] == [True, False]


def test_counts_cover_every_state(queue):
    counts = queue.counts()
    assert set(counts) == set(JOB_STATES)
    assert all(count == 0 for count in counts.values())


def test_jobs_listed_in_submission_order(queue):
    first = queue.submit([RunRequest(small(), memento=True)])
    second = queue.submit([RunRequest(small(), memento=False)])
    assert [job.id for job in queue.jobs()] == [first.id, second.id]


def test_empty_submission_rejected(queue):
    with pytest.raises(ValueError, match="empty"):
        queue.submit([])


def test_shutdown_rejects_new_jobs(engine):
    jq = JobQueue(engine, workers=1)
    jq.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        jq.submit([RunRequest(small(), memento=True)])
    jq.shutdown()  # idempotent


def test_invalid_worker_count_rejected(engine):
    with pytest.raises(ValueError, match="positive integer"):
        JobQueue(engine, workers=0)
