"""Tests for the energy model."""

from dataclasses import replace

import pytest

from repro.analysis.energy import EnergyModel
from repro.harness.experiment import run_workload
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def energy_and_result():
    spec = replace(get_workload("aes"), num_allocs=6_000)
    return EnergyModel(), run_workload(spec)


def test_constants_sane():
    model = EnergyModel()
    # 4 W at 3 GHz: ~1.3 nJ per cycle.
    assert model.core_joules_per_cycle == pytest.approx(1.33e-9, rel=0.01)
    # HOT access: sub-picojoule (1.32 mW, 2-cycle access).
    assert model.hot_joules_per_access < 1e-12
    assert model.aac_joules_per_access < model.hot_joules_per_access


def test_baseline_has_no_structure_energy(energy_and_result):
    model, result = energy_and_result
    assert model.structure_energy(result.baseline) == 0.0
    assert model.structure_energy(result.memento) > 0.0


def test_memento_saves_mm_energy(energy_and_result):
    model, result = energy_and_result
    report = model.report(result)
    assert report["mm_energy_reduction"] > 0.5
    assert report["memento_mm_j"] < report["baseline_mm_j"]


def test_structure_energy_negligible_vs_savings(energy_and_result):
    """Table 3's 'minimal hardware cost', quantified: the HOT+AAC spend
    well under 1% of the energy they save."""
    model, result = energy_and_result
    report = model.report(result)
    assert report["structure_share_of_savings"] < 0.01


def test_dram_energy_tracks_traffic(energy_and_result):
    model, result = energy_and_result
    assert model.dram_energy(result.baseline) > model.dram_energy(
        result.memento
    )
    report = model.report(result)
    assert report["dram_energy_reduction"] > 0.0


def test_mm_energy_composition(energy_and_result):
    model, result = energy_and_result
    mem = result.memento
    assert model.mm_energy(mem) == pytest.approx(
        model.mm_core_energy(mem) + model.structure_energy(mem)
    )
