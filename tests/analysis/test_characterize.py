"""Tests for characterization, pricing, and report rendering."""

from dataclasses import replace

import pytest

from repro.analysis.characterize import (
    joint_size_lifetime,
    lifetime_bin_index,
    lifetime_distribution,
    malloc_free_distances,
    size_bin_index,
    size_distribution,
    small_fraction,
)
from repro.analysis.pricing import PricingModel
from repro.analysis.report import (
    paper_vs_measured,
    render_grouped,
    render_series,
    render_table,
)
from repro.harness.experiment import run_workload
from repro.workloads.registry import get_workload
from repro.workloads.synth import generate_trace
from repro.workloads.trace import Alloc, Free, Trace


def small_trace(name="html", allocs=3_000):
    return generate_trace(
        replace(get_workload(name), num_allocs=allocs).resolved()
    )


# ---------------------------------------------------------------- bin math


def test_size_bins():
    assert size_bin_index(1) == 0
    assert size_bin_index(512) == 0
    assert size_bin_index(513) == 1
    assert size_bin_index(4096) == 7
    assert size_bin_index(5000) == 8


def test_lifetime_bins():
    assert lifetime_bin_index(1) == 0
    assert lifetime_bin_index(16) == 0
    assert lifetime_bin_index(17) == 1
    assert lifetime_bin_index(256) == 15
    assert lifetime_bin_index(257) == 16
    assert lifetime_bin_index(None) == 16


# ------------------------------------------------------------ distributions


def test_size_distribution_sums_to_one():
    dist = size_distribution([small_trace()])
    assert sum(dist) == pytest.approx(1.0)


def test_most_allocations_small():
    # Fig. 2: ~93% of allocations are <= 512 B.
    assert small_fraction([small_trace()]) > 0.85


def test_lifetime_distribution_sums_to_one():
    dist = lifetime_distribution([small_trace()])
    assert sum(dist) == pytest.approx(1.0)


def test_malloc_free_distance_semantics():
    trace = Trace("t", "python", "function", [
        Alloc(0, 16),
        Alloc(1, 16),
        Alloc(2, 16),
        Free(0),          # freed after 2 more same-class allocs
        Alloc(3, 64),     # different class, must not count
        Alloc(4, 16),
        Free(4),          # freed immediately -> distance clamps to >= 1
    ])
    records = dict(enumerate(d for _, d in malloc_free_distances(trace)))
    assert records[0] == 2
    assert records[1] is None  # never freed
    assert records[3] is None
    assert records[4] == 1


def test_cpp_is_short_lived_python_bimodal():
    cpp = lifetime_distribution([small_trace("US")])
    python = lifetime_distribution([small_trace("html")])
    assert cpp[0] > 0.6  # short bucket dominates for C++
    assert python[16] > 0.2  # long-lived mass for Python (startup state)


def test_go_is_long_lived():
    go = lifetime_distribution([small_trace("html-go")])
    assert go[16] > 0.6


def test_joint_distribution_table1():
    cells = joint_size_lifetime([small_trace(), small_trace("US")])
    assert sum(cells.values()) == pytest.approx(1.0)
    # Small+short is the dominant cell (61% in Table 1).
    assert cells["small_short"] == max(cells.values())
    assert cells["large_long"] < 0.1


def test_empty_traces_rejected():
    empty = Trace("e", "python", "function", [])
    with pytest.raises(ValueError):
        size_distribution([empty])


# ------------------------------------------------------------------ pricing


@pytest.fixture(scope="module")
def priced():
    spec = replace(get_workload("aes"), num_allocs=10_000)
    return PricingModel(), run_workload(spec)


def test_memento_cheaper(priced):
    pricing, result = priced
    assert pricing.normalized_runtime_pricing(result) < 1.0


def test_fee_dilutes_savings(priced):
    pricing, result = priced
    runtime = pricing.normalized_runtime_pricing(result)
    end_to_end = pricing.normalized_invocation_pricing(result)
    assert runtime <= end_to_end <= 1.0


def test_cost_scales_with_duration(priced):
    pricing, result = priced
    assert pricing.runtime_cost(result.baseline) > 0
    assert pricing.invocation_cost(result.baseline) > pricing.runtime_cost(
        result.baseline
    )


# ------------------------------------------------------------------- report


def test_render_table_basic():
    out = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
    assert "T" in out and "a" in out
    assert "2.500" in out


def test_render_series_bars():
    out = render_series(["one", "two"], [1.0, 0.5], title="S")
    assert out.count("#") > 0
    assert "one" in out


def test_render_series_length_mismatch():
    with pytest.raises(ValueError):
        render_series(["a"], [1.0, 2.0])


def test_render_grouped_columns():
    out = render_grouped(
        ["w1", "w2"], {"user": [0.5, 0.6], "kernel": [0.7, 0.8]}
    )
    assert "user" in out and "kernel" in out and "w1" in out


def test_paper_vs_measured_format():
    out = paper_vs_measured([["speedup", 1.16, 1.15]], "Fig. 8")
    assert "paper" in out and "measured" in out
