"""Tests for the ASCII renderers in :mod:`repro.analysis.report`."""

import pytest

from repro.analysis.report import (
    paper_vs_measured,
    render_grouped,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_title_headers_and_rows(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 1.5], ["beta", 2.0]],
            title="things",
        )
        lines = out.splitlines()
        assert lines[0] == "things"
        assert lines[1] == "=" * len("things")
        assert "name" in lines[2] and "value" in lines[2]
        assert set(lines[3]) == {"-"}
        assert "alpha" in lines[4] and "1.500" in lines[4]
        assert "beta" in lines[5] and "2.000" in lines[5]

    def test_no_title_starts_with_header(self):
        out = render_table(["a"], [["x"]])
        assert out.splitlines()[0].strip() == "a"

    def test_floatfmt_applies_to_floats_only(self):
        out = render_table(["a", "b"], [[1.23456, 7]], floatfmt=".1f")
        assert "1.2" in out and "1.23" not in out
        assert "7" in out and "7.0" not in out

    def test_empty_rows_still_renders_headers(self):
        out = render_table(["only", "headers"], [])
        assert "only" in out and "headers" in out

    def test_columns_align(self):
        out = render_table(
            ["name", "v"], [["short", 1], ["much-longer-name", 2]]
        )
        data_lines = out.splitlines()[2:]
        assert len({len(line) for line in data_lines}) == 1


class TestRenderSeries:
    def test_bars_scale_to_peak(self):
        out = render_series(["a", "b"], [1.0, 2.0], bar_width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_value_format(self):
        out = render_series(["x"], [0.5], title="Fig", value_fmt=".1f")
        assert out.splitlines()[0] == "Fig"
        assert "0.5" in out

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            render_series(["a", "b"], [1.0])

    def test_all_zero_values_render_no_bars(self):
        out = render_series(["a"], [0.0])
        assert "#" not in out

    def test_negative_values_use_magnitude(self):
        out = render_series(["a", "b"], [-2.0, 1.0], bar_width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5


class TestRenderGrouped:
    def test_one_row_per_label_one_column_per_series(self):
        out = render_grouped(
            ["html", "aes"],
            {"baseline": [1.0, 2.0], "memento": [3.0, 4.0]},
            title="grouped",
        )
        lines = out.splitlines()
        assert lines[0] == "grouped"
        header = lines[2]
        assert "workload" in header
        assert "baseline" in header and "memento" in header
        assert "html" in lines[4] and "3.000" in lines[4]
        assert "aes" in lines[5] and "4.000" in lines[5]

    def test_value_fmt_forwarded(self):
        out = render_grouped(["x"], {"s": [0.123456]}, value_fmt=".2f")
        assert "0.12" in out and "0.123" not in out


def test_paper_vs_measured_columns():
    out = paper_vs_measured(
        [["speedup", 1.62, 1.58]], title="Fig. 8"
    )
    lines = out.splitlines()
    assert lines[0] == "Fig. 8"
    assert "metric" in lines[2] and "paper" in lines[2]
    assert "measured" in lines[2]
    assert "speedup" in lines[4]
    assert "1.620" in lines[4] and "1.580" in lines[4]
