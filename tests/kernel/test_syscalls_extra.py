"""Additional syscall-path tests: madvise, MAP_POPULATE batching."""

import pytest

from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import PAGE_SIZE


@pytest.fixture
def system():
    machine = Machine()
    kernel = Kernel(machine)
    return machine, kernel, kernel.create_process()


def test_madvise_drops_backed_pages(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 8 * PAGE_SIZE)
    for page in range(4):
        kernel.fault_handler.handle(
            machine.core, process, addr + page * PAGE_SIZE
        )
    dropped = kernel.syscalls.madvise_dontneed(
        machine.core, process, addr, 8 * PAGE_SIZE
    )
    assert dropped == 4  # only the backed pages
    assert process.user_pages_live == 0
    # The VMA survives; the next access refaults.
    assert process.vmas.find(addr) is not None
    kernel.fault_handler.handle(machine.core, process, addr)
    assert process.user_pages_live == 1


def test_madvise_invalidates_tlb(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    pfn = kernel.fault_handler.handle(machine.core, process, addr)
    machine.core.tlb.insert(addr >> 12, pfn)
    kernel.syscalls.madvise_dontneed(machine.core, process, addr, PAGE_SIZE)
    assert machine.core.tlb.lookup(addr >> 12) is None


def test_madvise_on_unbacked_range_is_cheap_noop(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 4 * PAGE_SIZE)
    dropped = kernel.syscalls.madvise_dontneed(
        machine.core, process, addr, 4 * PAGE_SIZE
    )
    assert dropped == 0
    assert machine.stats["kernel.syscall.madvise_calls"] == 1


def test_populate_is_batched_not_per_fault(system):
    machine, kernel, process = system
    kernel.syscalls.mmap(machine.core, process, 64 * PAGE_SIZE, populate=True)
    # No per-page faults: the batch loop backs everything.
    assert machine.stats.get("kernel.fault.faults", 0) == 0
    assert machine.stats["kernel.syscall.populated_pages"] == 64
    assert process.user_pages_live == 64


def test_populate_cost_well_below_faulting(system):
    machine, kernel, process = system
    kernel.syscalls.mmap(machine.core, process, 64 * PAGE_SIZE, populate=True)
    populate_cycles = machine.core.cycles_in("kernel_page")
    machine2 = Machine()
    kernel2 = Kernel(machine2)
    process2 = kernel2.create_process()
    addr = kernel2.syscalls.mmap(machine2.core, process2, 64 * PAGE_SIZE)
    for page in range(64):
        kernel2.fault_handler.handle(
            machine2.core, process2, addr + page * PAGE_SIZE
        )
    fault_cycles = machine2.core.cycles_in("kernel_page")
    assert populate_cycles < fault_cycles / 5


def test_spurious_fault_returns_existing_mapping(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    first = kernel.fault_handler.handle(machine.core, process, addr)
    again = kernel.fault_handler.handle(machine.core, process, addr)
    assert first == again
    assert machine.stats["kernel.fault.spurious"] == 1
    assert process.user_pages_live == 1


def test_populated_pages_freed_at_exit(system):
    machine, kernel, process = system
    kernel.syscalls.mmap(machine.core, process, 16 * PAGE_SIZE, populate=True)
    kernel.exit_process(machine.core, process)
    assert process.user_pages_live == 0
    assert machine.stats["kernel.exit_freed_pages"] == 16


def test_warm_prefault_is_unmetered(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 4 * PAGE_SIZE)
    before = machine.core.cycles
    for page in range(4):
        kernel.prefault_warm(process, addr + page * PAGE_SIZE)
    assert machine.core.cycles == before  # no cycles charged
    assert process.user_pages_live == 4
    assert machine.stats["kernel.warm_prefaulted_pages"] == 4
    # Idempotent on already-backed pages.
    kernel.prefault_warm(process, addr)
    assert process.user_pages_live == 4
