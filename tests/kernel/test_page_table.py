"""Unit and property tests for the 4-level page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.page_table import PageTable, split_vpn


def test_split_vpn_round_trips():
    vpn = 0b101010101_110110110_011011011_000111000
    l4, l3, l2, l1 = split_vpn(vpn)
    rebuilt = (((l4 << 9 | l3) << 9 | l2) << 9) | l1
    assert rebuilt == vpn


def test_map_then_walk():
    table = PageTable()
    assert table.walk(0x12345) is None
    created = table.map(0x12345, 777)
    assert created == 3  # three interior nodes below the root
    assert table.walk(0x12345) == 777


def test_sibling_pages_share_tables():
    table = PageTable()
    table.map(0x1000, 1)
    created = table.map(0x1001, 2)
    assert created == 0
    assert table.table_pages == 4  # root + 3 interior


def test_double_map_raises():
    table = PageTable()
    table.map(5, 1)
    with pytest.raises(ValueError):
        table.map(5, 2)


def test_unmap_returns_pfn_and_frees_empty_tables():
    table = PageTable()
    table.map(0x2000, 42)
    pfn, freed_tables = table.unmap(0x2000)
    assert pfn == 42
    assert freed_tables == 3
    assert table.table_pages == 1  # only the root survives
    assert table.walk(0x2000) is None


def test_unmap_keeps_shared_tables():
    table = PageTable()
    table.map(0x3000, 1)
    table.map(0x3001, 2)
    _, freed = table.unmap(0x3000)
    assert freed == 0
    assert table.walk(0x3001) == 2


def test_unmap_missing_raises():
    table = PageTable()
    with pytest.raises(KeyError):
        table.unmap(99)


def test_walk_path_grows_with_mapping():
    table = PageTable()
    assert len(table.walk_path(0x5000)) == 1  # only the root
    table.map(0x5000, 7)
    assert len(table.walk_path(0x5000)) == 4


def test_walk_path_frames_are_node_pfns():
    frames = iter(range(100, 200))
    table = PageTable(alloc_table_page=lambda: next(frames))
    table.map(0x700, 9)
    path = table.walk_path(0x700)
    assert path[0] == 100  # root got the first frame
    assert len(set(path)) == len(path)


def test_clear_returns_all_leaves():
    table = PageTable()
    table.map(0x100, 1)
    table.map(0x200000, 2)
    leaves, interior = table.clear()
    assert sorted(leaves) == [1, 2]
    assert interior > 0
    assert table.table_pages == 1
    assert table.mapped_pages == 0
    assert table.walk(0x100) is None


def test_free_callback_invoked():
    freed = []
    counter = iter(range(1000))
    table = PageTable(
        alloc_table_page=lambda: next(counter),
        free_table_page=freed.append,
    )
    table.map(0x9000, 5)
    table.unmap(0x9000)
    assert len(freed) == 3


def test_mappings_iterates_everything():
    table = PageTable()
    expected = {}
    for i in range(20):
        vpn = i * 0x1111
        table.map(vpn, i)
        expected[vpn] = i
    assert dict(table.mappings()) == expected


@settings(max_examples=40, deadline=None)
@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=(1 << 36) - 1),
        unique=True,
        max_size=40,
    )
)
def test_map_unmap_roundtrip_property(vpns):
    """After mapping and unmapping everything, only the root remains and
    mapped_pages returns to zero."""
    table = PageTable()
    for i, vpn in enumerate(vpns):
        table.map(vpn, i + 1)
    assert table.mapped_pages == len(vpns)
    for i, vpn in enumerate(vpns):
        pfn, _ = table.unmap(vpn)
        assert pfn == i + 1
    assert table.mapped_pages == 0
    assert table.table_pages == 1


@settings(max_examples=40, deadline=None)
@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=(1 << 36) - 1),
        unique=True,
        min_size=1,
        max_size=30,
    )
)
def test_walk_agrees_with_mappings_property(vpns):
    table = PageTable()
    for i, vpn in enumerate(vpns):
        table.map(vpn, i + 1000)
    for i, vpn in enumerate(vpns):
        assert table.walk(vpn) == i + 1000
    assert dict(table.mappings()) == {
        vpn: i + 1000 for i, vpn in enumerate(vpns)
    }
