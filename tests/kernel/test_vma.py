"""Unit tests for VMA management."""

import pytest

from repro.kernel.vma import Vma, VmaManager, VMA_SLAB_BYTES
from repro.sim.params import PAGE_SIZE


def test_vma_requires_page_alignment():
    with pytest.raises(ValueError):
        Vma(100, PAGE_SIZE)
    with pytest.raises(ValueError):
        Vma(0, 100)


def test_vma_must_be_nonempty():
    with pytest.raises(ValueError):
        Vma(PAGE_SIZE, PAGE_SIZE)


def test_vma_contains():
    vma = Vma(0, 2 * PAGE_SIZE)
    assert vma.contains(0)
    assert vma.contains(2 * PAGE_SIZE - 1)
    assert not vma.contains(2 * PAGE_SIZE)
    assert vma.pages == 2


def test_reserve_rounds_up_to_pages():
    mgr = VmaManager(mmap_base=0x1000_0000)
    vma = mgr.reserve(100)
    assert vma.end - vma.start == PAGE_SIZE
    assert vma.start == 0x1000_0000


def test_reserve_is_monotonic_and_disjoint():
    mgr = VmaManager(mmap_base=0)
    a = mgr.reserve(PAGE_SIZE)
    b = mgr.reserve(3 * PAGE_SIZE)
    c = mgr.reserve(PAGE_SIZE)
    assert a.end <= b.start and b.end <= c.start


def test_reserve_rejects_nonpositive():
    mgr = VmaManager()
    with pytest.raises(ValueError):
        mgr.reserve(0)


def test_find_covers_interior_addresses():
    mgr = VmaManager(mmap_base=0)
    vma = mgr.reserve(4 * PAGE_SIZE)
    assert mgr.find(vma.start) is vma
    assert mgr.find(vma.start + 5000) is vma
    assert mgr.find(vma.end) is None


def test_find_in_gap_returns_none():
    mgr = VmaManager(mmap_base=0x10000)
    assert mgr.find(0) is None
    mgr.reserve(PAGE_SIZE)
    assert mgr.find(0x10000 - 1) is None


def test_remove_exact_start():
    mgr = VmaManager(mmap_base=0)
    vma = mgr.reserve(PAGE_SIZE)
    removed = mgr.remove(vma.start)
    assert removed is vma
    assert mgr.find(vma.start) is None
    assert len(mgr) == 0


def test_remove_wrong_address_raises():
    mgr = VmaManager(mmap_base=0)
    mgr.reserve(PAGE_SIZE)
    with pytest.raises(KeyError):
        mgr.remove(12345 * PAGE_SIZE)


def test_live_bytes_and_len():
    mgr = VmaManager(mmap_base=0)
    mgr.reserve(PAGE_SIZE)
    mgr.reserve(2 * PAGE_SIZE)
    assert mgr.live_bytes == 3 * PAGE_SIZE
    assert len(mgr) == 2


def test_metadata_accounting():
    mgr = VmaManager(mmap_base=0)
    per_page = PAGE_SIZE // VMA_SLAB_BYTES
    for _ in range(per_page + 1):
        mgr.reserve(PAGE_SIZE)
    assert mgr.metadata_pages() == 2
    assert mgr.aggregate_created == per_page + 1
    # Removing VMAs reduces live metadata but not the aggregate.
    first = next(iter(mgr))
    mgr.remove(first.start)
    assert mgr.aggregate_metadata_pages() == 2
