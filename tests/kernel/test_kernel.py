"""Integration-level tests for the kernel facade, syscalls, and faults."""

import pytest

from repro.kernel.fault import PageFaultError
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import PAGE_SIZE


@pytest.fixture
def system():
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    return machine, kernel, process


def test_mmap_reserves_without_backing(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 16 * PAGE_SIZE)
    assert process.vmas.find(addr) is not None
    assert process.user_pages_live == 0  # nothing faulted yet
    assert kernel.translate(machine.core, process, addr) is None


def test_mmap_charges_kernel_cycles(system):
    machine, kernel, process = system
    kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    expected = machine.costs.syscall_entry_exit + machine.costs.mmap_base
    assert machine.core.cycles_in("kernel_page") == expected


def test_fault_backs_one_page(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 4 * PAGE_SIZE)
    pfn = kernel.fault_handler.handle(machine.core, process, addr)
    assert kernel.translate(machine.core, process, addr) == pfn
    assert process.user_pages_live == 1
    # Neighboring page still unbacked.
    assert kernel.translate(machine.core, process, addr + PAGE_SIZE) is None


def test_fault_outside_vma_is_segv(system):
    machine, kernel, process = system
    with pytest.raises(PageFaultError):
        kernel.fault_handler.handle(machine.core, process, 0xDEAD000)
    assert machine.stats["kernel.fault.segv"] == 1


def test_fault_cost_is_thousands_of_cycles(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    before = machine.core.cycles_in("kernel_page")
    kernel.fault_handler.handle(machine.core, process, addr)
    fault_cost = machine.core.cycles_in("kernel_page") - before
    assert 2000 <= fault_cost <= 10000


def test_munmap_frees_backed_pages(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 4 * PAGE_SIZE)
    for i in range(4):
        kernel.fault_handler.handle(machine.core, process, addr + i * PAGE_SIZE)
    free_before = kernel.buddy.free_frames
    kernel.syscalls.munmap(machine.core, process, addr)
    assert process.user_pages_live == 0
    assert kernel.buddy.free_frames >= free_before + 4
    assert machine.stats["kernel.syscall.munmap_pages"] == 4


def test_munmap_skips_unbacked_pages(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 8 * PAGE_SIZE)
    kernel.fault_handler.handle(machine.core, process, addr)
    kernel.syscalls.munmap(machine.core, process, addr)
    assert machine.stats["kernel.syscall.munmap_pages"] == 1


def test_map_populate_faults_everything_eagerly(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(
        machine.core, process, 8 * PAGE_SIZE, populate=True
    )
    assert process.user_pages_live == 8
    assert kernel.translate(machine.core, process, addr + 7 * PAGE_SIZE)


def test_exit_process_batch_frees(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, 16 * PAGE_SIZE)
    for i in range(16):
        kernel.fault_handler.handle(machine.core, process, addr + i * PAGE_SIZE)
    kernel.exit_process(machine.core, process)
    assert process.exited
    assert process.user_pages_live == 0
    assert machine.stats["kernel.exit_freed_pages"] == 16
    assert process.page_table.table_pages == 1


def test_exit_twice_raises(system):
    machine, kernel, process = system
    kernel.exit_process(machine.core, process)
    with pytest.raises(ValueError):
        kernel.exit_process(machine.core, process)


def test_context_switch_flushes_tlb(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    pfn = kernel.fault_handler.handle(machine.core, process, addr)
    machine.core.tlb.insert(addr >> 12, pfn)
    other = kernel.create_process()
    kernel.context_switch(machine.core, other)
    assert machine.core.tlb.lookup(addr >> 12) is None
    assert machine.core.cycles_in("kernel_other") >= machine.costs.context_switch


def test_page_walk_hits_cache_on_repeat(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    kernel.fault_handler.handle(machine.core, process, addr)
    kernel.translate(machine.core, process, addr)
    before = machine.core.cycles_in("walk")
    kernel.translate(machine.core, process, addr)
    second_walk = machine.core.cycles_in("walk") - before
    # All four node lines are now cached: 4 x L1 latency.
    assert second_walk == 4 * machine.params.l1d.latency


def test_kernel_pages_charged_for_page_tables(system):
    machine, kernel, process = system
    addr = kernel.syscalls.mmap(machine.core, process, PAGE_SIZE)
    kernel.fault_handler.handle(machine.core, process, addr)
    # Root + 3 interior nodes were charged to the kernel category.
    assert machine.frames.live("kernel") == 4


def test_pids_are_unique(system):
    _, kernel, process = system
    pids = {process.pid}
    for _ in range(5):
        pids.add(kernel.create_process().pid)
    assert len(pids) == 6
