"""Unit and property tests for the buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.buddy import BuddyAllocator, MAX_ORDER, OutOfMemoryError
from repro.sim.stats import Stats


def make_buddy(frames=1024, base=0):
    return BuddyAllocator(base=base, total_frames=frames, stats=Stats())


def test_simple_alloc_free():
    buddy = make_buddy()
    frame = buddy.alloc(0)
    assert 0 <= frame < 1024
    assert buddy.free_frames == 1023
    buddy.free(frame)
    assert buddy.free_frames == 1024


def test_alloc_returns_aligned_blocks():
    buddy = make_buddy()
    for order in range(5):
        block = buddy.alloc(order)
        assert block % (1 << order) == 0
        buddy.free(block)


def test_split_and_coalesce_roundtrip():
    buddy = make_buddy(frames=16)
    frames = [buddy.alloc(0) for _ in range(16)]
    assert buddy.free_frames == 0
    with pytest.raises(OutOfMemoryError):
        buddy.alloc(0)
    for frame in frames:
        buddy.free(frame)
    # Everything should coalesce back into one order-4 block... but
    # MAX_ORDER allows it only if 16 frames coalesce fully.
    assert buddy.free_frames == 16
    assert buddy.free_lists[4] == {0}


def test_double_free_rejected():
    buddy = make_buddy()
    frame = buddy.alloc(0)
    buddy.free(frame)
    with pytest.raises(ValueError):
        buddy.free(frame)


def test_free_unallocated_rejected():
    buddy = make_buddy()
    with pytest.raises(ValueError):
        buddy.free(123)


def test_free_with_wrong_order_rejected():
    buddy = make_buddy()
    block = buddy.alloc(2)
    with pytest.raises(ValueError):
        buddy.free(block, order=1)
    buddy.free(block, order=2)


def test_nonzero_base():
    buddy = make_buddy(frames=64, base=1000)
    frame = buddy.alloc(0)
    assert 1000 <= frame < 1064
    buddy.free(frame)
    buddy.check_invariants()


def test_non_power_of_two_range():
    buddy = make_buddy(frames=100)
    buddy.check_invariants()
    assert buddy.free_frames == 100
    blocks = [buddy.alloc(0) for _ in range(100)]
    assert len(set(blocks)) == 100
    with pytest.raises(OutOfMemoryError):
        buddy.alloc(0)


def test_alloc_order_out_of_range():
    buddy = make_buddy()
    with pytest.raises(ValueError):
        buddy.alloc(MAX_ORDER + 1)
    with pytest.raises(ValueError):
        buddy.alloc(-1)


def test_alloc_pages_bulk():
    buddy = make_buddy()
    frames = buddy.alloc_pages(10)
    assert len(frames) == len(set(frames)) == 10
    assert buddy.allocated_frames == 10


def test_stats_recorded():
    stats = Stats()
    buddy = BuddyAllocator(base=0, total_frames=64, stats=stats)
    frame = buddy.alloc(0)
    buddy.free(frame)
    assert stats["buddy.allocs"] == 1
    assert stats["buddy.frees"] == 1
    assert stats["buddy.splits"] > 0
    assert stats["buddy.coalesces"] > 0


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=4)),
        max_size=60,
    )
)
def test_invariants_hold_under_random_ops(ops):
    """Free blocks stay disjoint, aligned, and tile the range."""
    buddy = make_buddy(frames=256)
    live = []
    for is_alloc, order in ops:
        if is_alloc:
            try:
                live.append(buddy.alloc(order))
            except OutOfMemoryError:
                pass
        elif live:
            buddy.free(live.pop())
    buddy.check_invariants()


@settings(max_examples=30, deadline=None)
@given(orders=st.lists(st.integers(min_value=0, max_value=3), max_size=30))
def test_full_free_restores_all_frames(orders):
    buddy = make_buddy(frames=512)
    blocks = []
    for order in orders:
        try:
            blocks.append(buddy.alloc(order))
        except OutOfMemoryError:
            pass
    for block in blocks:
        buddy.free(block)
    assert buddy.free_frames == 512
    buddy.check_invariants()
