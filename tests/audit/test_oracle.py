"""Unit tests for the differential oracle: reference parity on real
traces, the bypass-soundness monitor, divergence reporting, and the
greedy prefix minimizer."""

import dataclasses

import pytest

from repro.audit import oracle
from repro.audit.oracle import (
    BypassSoundnessMonitor,
    DiffReport,
    Divergence,
    build_reference_system,
    minimize_prefix,
    run_diff,
    run_lockstep,
)
from repro.workloads.registry import get_workload
from repro.workloads.synth import generate_trace
from repro.workloads.trace import Alloc, Compute, Free, Touch


def small_spec(num_allocs=200):
    return dataclasses.replace(
        get_workload("html").resolved(), num_allocs=num_allocs
    )


# ------------------------------------------------------------- lockstep


@pytest.mark.parametrize(
    "stack", ["baseline", "memento", "snapshot", "reclaim"]
)
def test_lockstep_clean_on_real_trace(stack):
    spec = small_spec()
    events = list(generate_trace(spec).events)
    divergence, fast = run_lockstep(events, spec, stack)
    assert divergence is None
    assert fast is not None  # replay state intact for invariant checks


def test_reference_system_matches_fast_end_state():
    spec = small_spec()
    trace = generate_trace(spec)
    fast = oracle.SimulatedSystem(spec, memento=True)
    fast._replay_events(trace)
    reference = build_reference_system(spec, stack="memento")
    reference._replay_events(trace)
    for key in oracle._PROBE_KEYS_MEMENTO:
        assert fast.machine.stats[key] == reference.machine.stats[key], key
    assert fast.core.cycles == reference.core.cycles


def test_lockstep_reports_counter_divergence(monkeypatch):
    spec = small_spec(60)
    events = list(generate_trace(spec).events)
    real_probe = oracle._probe
    systems = []

    def probe(system, keys):
        values = real_probe(system, keys)
        if system not in systems:
            systems.append(system)
        if systems.index(system) == 1:  # the reference side
            values["l1d.hits"] += 1
        return values

    monkeypatch.setattr(oracle, "_probe", probe)
    divergence, _fast = run_lockstep(events, spec, "memento")
    assert divergence is not None
    assert divergence.kind == "counter"
    assert divergence.key == "l1d.hits"
    assert divergence.event_index == 0
    assert divergence.fast + 1 == divergence.reference
    assert "l1d.hits" in str(divergence)
    assert divergence.to_dict()["kind"] == "counter"


def test_lockstep_reports_reference_exception(monkeypatch):
    spec = small_spec(60)
    events = list(generate_trace(spec).events)
    real_step = oracle._step_event
    calls = {"n": 0}

    def step(system, event):
        calls["n"] += 1
        if calls["n"] == 8:  # reference side of the 4th event
            raise RuntimeError("reference blew up")
        return real_step(system, event)

    monkeypatch.setattr(oracle, "_step_event", step)
    divergence, _fast = run_lockstep(events, spec, "memento")
    assert divergence is not None
    assert divergence.kind == "exception"
    assert divergence.key == "reference"
    assert divergence.event_index == 3
    assert "reference blew up" in divergence.reference


# ------------------------------------------------------------- monitor


def test_monitor_flags_bypass_of_live_written_line():
    monitor = BypassSoundnessMonitor()
    monitor.observe(obj=1, vaddr=0x1000, write=True, bypassed=False)
    monitor.observe(obj=2, vaddr=0x1010, write=False, bypassed=True)
    assert len(monitor.violations) == 1
    assert "bypassed line" in monitor.violations[0]


def test_monitor_releases_lines_on_free():
    monitor = BypassSoundnessMonitor()
    monitor.observe(obj=1, vaddr=0x1000, write=True, bypassed=False)
    monitor.on_free(1)
    monitor.observe(obj=2, vaddr=0x1000, write=False, bypassed=True)
    assert monitor.violations == []  # writer freed; bypass is safe


def test_monitor_refcounts_shared_lines():
    monitor = BypassSoundnessMonitor()
    monitor.observe(obj=1, vaddr=0x2000, write=True, bypassed=False)
    monitor.observe(obj=2, vaddr=0x2020, write=True, bypassed=False)
    monitor.on_free(1)
    monitor.observe(obj=3, vaddr=0x2000, write=False, bypassed=True)
    assert len(monitor.violations) == 1  # obj 2 still holds the line


# ------------------------------------------------------------ minimizer


def test_minimize_prefix_drops_innocent_objects(monkeypatch):
    events = [
        Alloc(obj=1, size=64),
        Alloc(obj=2, size=64),
        Compute(cycles=10),
        Touch(obj=1),
        Alloc(obj=3, size=64),
        Touch(obj=3),
        Touch(obj=2),  # the divergent event; obj 2 is the culprit
    ]

    def fake_lockstep(candidate, spec, stack, monitor=None, check_every=1):
        # The "bug" reproduces whenever object 2's events are present.
        hit = any(getattr(e, "obj", None) == 2 for e in candidate)
        divergence = (
            Divergence(len(candidate) - 1, "counter", "k", 1, 2)
            if hit
            else None
        )
        return divergence, None

    monkeypatch.setattr(oracle, "run_lockstep", fake_lockstep)
    minimized = minimize_prefix(events, small_spec(), "memento")
    # Objects 1 and 3 and the Compute are innocent; only obj 2 survives.
    assert minimized == [Alloc(obj=2, size=64), Touch(obj=2)]


def test_minimize_prefix_respects_run_budget(monkeypatch):
    events = [Alloc(obj=i, size=64) for i in range(1, 6)] + [Touch(obj=5)]
    calls = {"n": 0}

    def fake_lockstep(candidate, spec, stack, monitor=None, check_every=1):
        calls["n"] += 1
        return Divergence(0, "counter", "k", 1, 2), None

    monkeypatch.setattr(oracle, "run_lockstep", fake_lockstep)
    minimize_prefix(events, small_spec(), "memento", max_runs=2)
    assert calls["n"] <= 2


# ------------------------------------------------------------- run_diff


@pytest.mark.parametrize(
    "stack", ["baseline", "memento", "snapshot", "reclaim"]
)
def test_run_diff_clean_leg(stack):
    report = run_diff(small_spec(), stack, num_allocs=200)
    assert report.ok
    assert report.divergence is None
    assert report.soundness == []
    assert report.invariant_findings == []
    assert report.columnar_mismatches == []
    assert report.minimized_events is None
    assert report.events > 200
    assert report.stack == stack
    payload = report.to_dict()
    assert payload["workload"] == "html"
    assert payload["divergence"] is None


def test_run_diff_accepts_legacy_boolean():
    report = run_diff(small_spec(), True, num_allocs=120)
    assert report.stack == "memento"
    assert report.ok


def test_diff_report_ok_flips_on_any_finding():
    report = DiffReport(workload="w", stack="memento", events=1)
    assert report.ok
    report.soundness = ["bad"]
    assert not report.ok
    report.soundness = []
    report.columnar_mismatches = ["stats mismatch"]
    assert not report.ok
    report.columnar_mismatches = []
    report.divergence = Divergence(0, "counter", "k", 1, 2)
    assert not report.ok
