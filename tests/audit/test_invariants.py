"""Unit tests for the invariant checker: each rule passes on a healthy
system, fires on a deliberately corrupted one, and the Auditor's gating
mirrors the observability hooks."""

import dataclasses

import pytest

from repro.audit import (
    AuditContext,
    Auditor,
    DEFAULT_RULES,
    Violation,
    get_audit,
    install_audit,
)
from repro.audit.invariants import (
    ArenaListMembership,
    BypassCounterRange,
    CacheWritebackLedger,
    HotAacBacking,
    PoolBalance,
    ShootdownCoverage,
)
from repro.core.bypass import COUNTER_MAX
from repro.harness.system import SimulatedSystem
from repro.workloads.registry import get_workload


def small_spec(num_allocs=300):
    return dataclasses.replace(
        get_workload("html").resolved(), num_allocs=num_allocs
    )


@pytest.fixture
def run_system():
    """A Memento system mid-flight: replayed but not torn down."""
    system = SimulatedSystem(small_spec(), memento=True)
    from repro.workloads.synth import generate_trace

    trace = generate_trace(system.spec)
    system._replay_events(trace)
    return system


def check_rule(rule_cls, system):
    return rule_cls().check(AuditContext.from_system(system))


# ------------------------------------------------------------ clean state


def test_all_rules_pass_on_clean_replay(run_system):
    ctx = AuditContext.from_system(run_system)
    for rule_cls in DEFAULT_RULES:
        assert rule_cls().check(ctx) == [], rule_cls.name


def test_baseline_stack_is_also_clean():
    system = SimulatedSystem(small_spec(), memento=False)
    from repro.workloads.synth import generate_trace

    system._replay_events(generate_trace(system.spec))
    ctx = AuditContext.from_system(system)
    for rule_cls in DEFAULT_RULES:
        assert rule_cls().check(ctx) == [], rule_cls.name


# ------------------------------------------------------- corrupted state


def test_membership_catches_header_off_every_list(run_system):
    allocator = run_system.runtime.context.object_allocator
    header = next(iter(allocator.headers.values()))
    # Forge a header that claims a list but is linked on none.
    saved = header.list_name
    hot = allocator.hot.lookup(header.size_class)
    if hot.header is header:
        hot.header = None  # make it neither HOT-resident nor listed
        if saved is not None:
            header.list_name = None
    else:
        allocator.available[header.size_class].remove(header) \
            if saved == "available" else \
            allocator.full[header.size_class].remove(header)
    messages = check_rule(ArenaListMembership, run_system)
    assert any("neither HOT-resident nor reachable" in m for m in messages)


def test_membership_catches_stale_link(run_system):
    allocator = run_system.runtime.context.object_allocator
    for lst in list(allocator.available) + list(allocator.full):
        if lst.head is not None:
            break
    else:
        # Small replays keep every arena HOT-resident; demote one onto
        # its available list so there is a linked node to corrupt.
        entry = next(e for e in allocator.hot.entries if e.header is not None)
        header, entry.header = entry.header, None
        lst = allocator.available[header.size_class]
        lst.push_head(header)
    lst.head.prev = lst.head  # corrupt the head's prev link
    messages = check_rule(ArenaListMembership, run_system)
    assert any("stale prev link" in m for m in messages)


def test_counter_range_catches_overflow(run_system):
    allocator = run_system.runtime.context.object_allocator
    header = next(iter(allocator.headers.values()))
    header.bypass_counter = COUNTER_MAX + 5  # 11-bit wraparound forged
    messages = check_rule(BypassCounterRange, run_system)
    assert any("outside" in m for m in messages)


def test_hot_backing_catches_dead_header(run_system):
    allocator = run_system.runtime.context.object_allocator
    for entry in allocator.hot.entries:
        if entry.header is not None:
            del allocator.headers[entry.header.va]  # kill it behind HOT
            break
    else:
        pytest.skip("no HOT-resident arena in this replay")
    messages = check_rule(HotAacBacking, run_system)
    assert any("dead header" in m for m in messages)


def test_pool_balance_catches_leaked_frame(run_system):
    page_allocator = run_system.page_allocator
    page_allocator.pool.pop()  # frame vanishes without ledger movement
    messages = check_rule(PoolBalance, run_system)
    assert any("pooled pages" in m for m in messages)


def test_pool_balance_catches_double_pooled_leaf(run_system):
    page_allocator = run_system.page_allocator
    state = next(iter(page_allocator._states.values()))
    vpn, pfn = next(iter(state.page_table.mappings()))
    page_allocator.pool.append(pfn)  # mapped leaf also sitting in pool
    messages = check_rule(PoolBalance, run_system)
    assert any("leaf frames are still in the pool" in m for m in messages)


def test_shootdown_catches_unrecorded_walker(run_system):
    page_allocator = run_system.page_allocator
    state = next(iter(page_allocator._states.values()))
    vpn = next(iter(state.page_table.mappings()))[0]
    assert run_system.core.core_id in state.walker_cores
    state.walker_cores.clear()  # core's TLB still caches the region
    # Ensure the translation really is cached on the core.
    run_system.core.tlb.insert(vpn, 12345)
    messages = check_rule(ShootdownCoverage, run_system)
    assert any("not in walker_cores" in m for m in messages)


def test_writeback_ledger_catches_unpaired_bytes(run_system):
    run_system.machine.dram._write_bytes.pending += 7  # bytes w/o lines
    messages = check_rule(CacheWritebackLedger, run_system)
    assert any("unpaired" in m for m in messages)


def test_writeback_ledger_catches_int_dirty_bit(run_system):
    caches = run_system.core.caches
    for cache_set in caches.l1d._sets:
        if cache_set:
            line = next(iter(cache_set))
            cache_set[line] = 1  # int where a bool belongs
            break
    messages = check_rule(CacheWritebackLedger, run_system)
    assert any("non-boolean dirty bit" in m for m in messages)


# ------------------------------------------------------------- Auditor


def test_auditor_epoch_gating():
    run = Auditor(epoch="run")
    assert not run.steps_events
    assert not run.should_check(0)
    event = Auditor(epoch="event")
    assert event.steps_events and event.should_check(7)
    interval = Auditor(epoch="interval", every=10)
    assert interval.steps_events
    assert not interval.should_check(0)
    assert interval.should_check(9)
    with pytest.raises(ValueError):
        Auditor(epoch="sometimes")


def test_auditor_caps_stored_violations(run_system):
    class Noisy:
        name = "noisy"

        def check(self, ctx):
            return [f"m{i}" for i in range(10)]

    auditor = Auditor(rules=[Noisy()], max_violations=4)
    auditor.check(AuditContext.from_system(run_system), 3)
    assert auditor.total_violations == 10
    assert len(auditor.violations) == 4
    assert auditor.violations[0] == Violation("noisy", "m0", 3)
    summary = auditor.summary()
    assert summary["violations"] == 10
    assert summary["rules"] == ["noisy"]


def test_auditor_survives_crashing_rule(run_system):
    class Crashy:
        name = "crashy"

        def check(self, ctx):
            raise RuntimeError("boom")

    auditor = Auditor(rules=[Crashy()])
    auditor.check(AuditContext.from_system(run_system))
    assert auditor.total_violations == 1
    assert "rule crashed" in auditor.violations[0].message


def test_install_audit_returns_previous():
    first = Auditor()
    second = Auditor()
    assert install_audit(first) is None
    try:
        assert get_audit() is first
        assert install_audit(second) is first
        assert get_audit() is second
    finally:
        install_audit(None)
    assert get_audit() is None


def test_disabled_audit_leaves_result_untouched():
    result = SimulatedSystem(small_spec(150), memento=True).run()
    assert result.audit is None


def test_audited_run_reports_summary_and_matches_unaudited():
    spec = small_spec(150)
    plain = SimulatedSystem(spec, memento=True).run()
    previous = install_audit(Auditor(epoch="event"))
    try:
        audited = SimulatedSystem(spec, memento=True).run()
    finally:
        install_audit(previous)
    assert audited.audit is not None
    assert audited.audit["violations"] == 0
    assert audited.audit["checks"] > len(spec.resolved().name)
    # Auditing must observe, never perturb: every simulated number of the
    # audited run is bit-identical to the unaudited one.
    plain_d, audited_d = plain.to_dict(), audited.to_dict()
    audited_d["audit"] = plain_d["audit"] = None
    assert plain_d == audited_d
