"""The full ``@audit`` tier: every registered workload x every
registered stack, replayed under a per-run invariant audit and the
differential oracle.

Minutes of work — opt in with ``--run-audit`` or ``REPRO_AUDIT=1`` (the
nightly audit workflow does). Tier-1 collects and skips these.
"""

import dataclasses

import pytest

from repro.audit import Auditor, install_audit
from repro.harness.system import SimulatedSystem
from repro.stacks import stack_names
from repro.workloads.registry import all_workloads

NUM_ALLOCS = 800  # enough churn to exercise eviction/reclaim paths

ALL_SPECS = [spec.resolved() for spec in all_workloads()]
IDS = [spec.name for spec in ALL_SPECS]
ALL_STACKS = list(stack_names())


def sized(spec):
    return dataclasses.replace(spec, num_allocs=NUM_ALLOCS)


@pytest.mark.audit
@pytest.mark.parametrize("stack", ALL_STACKS)
@pytest.mark.parametrize("spec", ALL_SPECS, ids=IDS)
def test_per_run_audit_clean(spec, stack):
    auditor = Auditor(epoch="interval", every=64)
    previous = install_audit(auditor)
    try:
        result = SimulatedSystem(sized(spec), stack).run()
    finally:
        install_audit(previous)
    assert result.audit is not None and result.audit["checks"] > 0
    assert auditor.violations == [], [str(v) for v in auditor.violations]


@pytest.mark.audit
@pytest.mark.parametrize("stack", ALL_STACKS)
@pytest.mark.parametrize("spec", ALL_SPECS, ids=IDS)
def test_differential_oracle_clean(spec, stack):
    from repro.audit.oracle import run_diff

    report = run_diff(sized(spec), stack, num_allocs=NUM_ALLOCS)
    assert report.divergence is None, str(report.divergence)
    assert report.soundness == []
    assert [str(v) for v in report.invariant_findings] == []
    assert report.columnar_mismatches == []
