"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_all_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("html", "Redis", "deploy", "aes-go"):
        assert name in out


def test_run_single_workload(capsys, monkeypatch):
    # Shrink the workload so the CLI test stays fast.
    from dataclasses import replace
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=2_000),
    )
    assert main(["run", "aes"]) == 0
    out = capsys.readouterr().out
    assert "aes" in out and "speedup" in out


def test_run_unknown_workload_raises():
    with pytest.raises(KeyError):
        main(["run", "not-a-workload"])


def test_sweep_choices_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "bogus"])


def test_sweep_iso_storage(capsys):
    assert main(["sweep", "iso-storage"]) == 0
    out = capsys.readouterr().out
    assert "iso" in out.lower()
    assert "memento" in out.lower()


def test_characterize(capsys, monkeypatch):
    from dataclasses import replace
    import repro.cli as cli

    monkeypatch.setattr(
        cli, "all_workloads",
        lambda: [replace(s, num_allocs=1_500) for s in
                 __import__("repro.workloads.registry",
                            fromlist=["all_workloads"]).all_workloads()[:4]],
    )
    assert main(["characterize"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out and "Fig. 3" in out and "Table 1" in out


def test_energy_command(capsys, monkeypatch):
    from dataclasses import replace
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=2_000),
    )
    assert main(["energy", "aes"]) == 0
    out = capsys.readouterr().out
    assert "mm_energy_reduction" in out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
