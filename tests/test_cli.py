"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_all_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("html", "Redis", "deploy", "aes-go"):
        assert name in out


def test_run_single_workload(capsys, monkeypatch):
    # Shrink the workload so the CLI test stays fast.
    from dataclasses import replace
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=2_000),
    )
    assert main(["run", "aes"]) == 0
    out = capsys.readouterr().out
    assert "aes" in out and "speedup" in out


def test_run_unknown_workload_reports_error(capsys):
    # Operational errors follow the shared convention: exit code 1 and a
    # one-line ``repro: error: ...`` report on stderr, not a traceback.
    assert main(["run", "not-a-workload"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "not-a-workload" in err


def test_run_requires_names_or_all(capsys):
    assert main(["run"]) == 2
    assert main(["run", "aes", "--all"]) == 2


def test_run_all_with_jobs(capsys, monkeypatch, tmp_path):
    # Shrink the world to two workloads so --all stays fast.
    from dataclasses import replace
    import repro.harness.experiment as experiment

    small = [
        replace(spec, num_allocs=1_200)
        for spec in experiment.FUNCTION_WORKLOADS[:2]
    ]
    monkeypatch.setattr(experiment, "FUNCTION_WORKLOADS", small)
    monkeypatch.setattr(experiment, "DATAPROC_WORKLOADS", [])
    monkeypatch.setattr(experiment, "PLATFORM_WORKLOADS", [])
    assert main([
        "run", "--all", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    captured = capsys.readouterr()
    for spec in small:
        assert spec.name in captured.out
    # Per-run progress lines go to stderr: workload, stack, hit-or-live.
    assert "live" in captured.err and "baseline" in captured.err
    # A second invocation is answered from the persistent cache.
    assert main([
        "run", "--all",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    assert "cache hit" in capsys.readouterr().err


def test_cache_info_and_clear(capsys, tmp_path, monkeypatch):
    from dataclasses import replace
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=1_000),
    )
    cache_dir = str(tmp_path / "cache")
    assert main(["run", "aes", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "3" in out

    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 3" in capsys.readouterr().out
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    assert "0" in capsys.readouterr().out


def test_cache_sqlite_backend(capsys, tmp_path, monkeypatch):
    from dataclasses import replace
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=1_000),
    )
    cache_dir = str(tmp_path / "cache")
    monkeypatch.setenv("REPRO_BACKEND", "sqlite")
    assert main(["run", "aes", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    # ``cache`` honors both the env var and the explicit flag.
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    assert "sqlite" in capsys.readouterr().out
    monkeypatch.delenv("REPRO_BACKEND")
    assert main([
        "cache", "clear", "--cache-dir", cache_dir, "--backend", "sqlite",
    ]) == 0
    assert "removed 3" in capsys.readouterr().out


def test_serve_validates_arguments(capsys):
    # Usage errors follow the exit-2 convention, before binding a port.
    assert main(["serve", "--jobs", "0"]) == 2
    assert "jobs" in capsys.readouterr().err
    assert main(["serve", "--workers", "-1"]) == 2
    assert "positive integer" in capsys.readouterr().err
    assert main(["serve", "--port", "70000"]) == 2
    assert "port" in capsys.readouterr().err
    assert main(["serve", "--host", ""]) == 2
    assert "host" in capsys.readouterr().err


def test_serve_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--backend", "bogus"])


def test_sweep_choices_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "bogus"])


def test_sweep_iso_storage(capsys):
    assert main(["sweep", "iso-storage"]) == 0
    out = capsys.readouterr().out
    assert "iso" in out.lower()
    assert "memento" in out.lower()


def test_characterize(capsys, monkeypatch):
    from dataclasses import replace
    import repro.cli as cli

    monkeypatch.setattr(
        cli, "all_workloads",
        lambda: [replace(s, num_allocs=1_500) for s in
                 __import__("repro.workloads.registry",
                            fromlist=["all_workloads"]).all_workloads()[:4]],
    )
    assert main(["characterize"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out and "Fig. 3" in out and "Table 1" in out


def test_energy_command(capsys, monkeypatch):
    from dataclasses import replace
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=2_000),
    )
    assert main(["energy", "aes"]) == 0
    out = capsys.readouterr().out
    assert "mm_energy_reduction" in out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
