"""Unit tests for the TLB models."""

import pytest

from repro.sim.params import MachineParams, TlbParams
from repro.sim.stats import Stats
from repro.sim.tlb import Tlb, TlbHierarchy


@pytest.fixture
def tiny_tlb():
    stats = Stats()
    return Tlb(TlbParams(entries=4, ways=2), stats.scoped("t")), stats


def test_miss_then_hit(tiny_tlb):
    tlb, stats = tiny_tlb
    assert tlb.lookup(5) is None
    tlb.insert(5, 99)
    assert tlb.lookup(5) == 99
    assert stats["t.hits"] == 1
    assert stats["t.misses"] == 1


def test_lru_within_set(tiny_tlb):
    tlb, _ = tiny_tlb
    # 2 sets x 2 ways; vpns 0, 2, 4 map to set 0.
    tlb.insert(0, 10)
    tlb.insert(2, 20)
    tlb.lookup(0)
    tlb.insert(4, 40)  # evicts vpn 2
    assert tlb.lookup(2) is None
    assert tlb.lookup(0) == 10
    assert tlb.lookup(4) == 40


def test_insert_updates_existing(tiny_tlb):
    tlb, _ = tiny_tlb
    tlb.insert(1, 10)
    tlb.insert(1, 20)
    assert tlb.lookup(1) == 20
    assert tlb.occupancy == 1


def test_invalidate(tiny_tlb):
    tlb, _ = tiny_tlb
    tlb.insert(3, 30)
    assert tlb.invalidate(3)
    assert not tlb.invalidate(3)
    assert tlb.lookup(3) is None


def test_flush(tiny_tlb):
    tlb, stats = tiny_tlb
    tlb.insert(0, 1)
    tlb.insert(1, 2)
    tlb.flush()
    assert tlb.occupancy == 0
    assert stats["t.flushes"] == 1


def test_hierarchy_l2_hit_promotes_to_l1():
    stats = Stats()
    hier = TlbHierarchy(MachineParams(), stats)
    hier.l2.insert(7, 70)
    assert hier.lookup(7) == 70
    # Promotion: next lookup hits L1.
    assert hier.l1.lookup(7) == 70


def test_hierarchy_insert_fills_both_levels():
    stats = Stats()
    hier = TlbHierarchy(MachineParams(), stats)
    hier.insert(9, 90)
    assert hier.l1.lookup(9) == 90
    assert hier.l2.lookup(9) == 90


def test_hierarchy_miss_returns_none():
    hier = TlbHierarchy(MachineParams(), Stats())
    assert hier.lookup(1234) is None


def test_hierarchy_invalidate_both():
    hier = TlbHierarchy(MachineParams(), Stats())
    hier.insert(5, 50)
    hier.invalidate(5)
    assert hier.lookup(5) is None


def test_table3_geometry():
    params = MachineParams()
    assert params.tlb_l1.entries == 64 and params.tlb_l1.ways == 4
    assert params.tlb_l2.entries == 2048 and params.tlb_l2.ways == 12
