"""Unit tests for the cache level and the hierarchy."""

import pytest

from repro.sim.cache import Cache, CacheHierarchy, MemLevel
from repro.sim.dram import Dram
from repro.sim.params import CacheParams, MachineParams
from repro.sim.stats import Stats


@pytest.fixture
def small_cache():
    stats = Stats()
    cache = Cache(CacheParams(size_bytes=4 * 64, ways=2, latency=1),
                  stats.scoped("c"))
    return cache, stats


def test_miss_then_hit(small_cache):
    cache, stats = small_cache
    assert not cache.lookup(0x10, write=False)
    cache.insert(0x10, dirty=False)
    assert cache.lookup(0x10, write=False)
    assert stats["c.hits"] == 1
    assert stats["c.misses"] == 1


def test_lru_eviction_order(small_cache):
    cache, _ = small_cache
    # 2 sets x 2 ways; lines 0, 2, 4 map to set 0.
    cache.insert(0, dirty=False)
    cache.insert(2, dirty=False)
    cache.lookup(0, write=False)  # 0 becomes MRU, 2 is LRU
    victim = cache.insert(4, dirty=False)
    assert victim == (2, False)
    assert cache.contains(0)
    assert not cache.contains(2)


def test_dirty_bit_set_on_write(small_cache):
    cache, _ = small_cache
    cache.insert(0, dirty=False)
    cache.lookup(0, write=True)  # clean line becomes dirty on a write hit
    cache.insert(2, dirty=False)  # 2 is now MRU, 0 is LRU
    victim = cache.insert(4, dirty=False)
    assert victim == (0, True)  # evicted dirty even though inserted clean
    victim = cache.insert(6, dirty=False)
    assert victim == (2, False)


def test_insert_existing_line_keeps_one_copy(small_cache):
    cache, _ = small_cache
    cache.insert(0, dirty=False)
    assert cache.insert(0, dirty=True) is None
    assert cache.occupancy == 1


def test_invalidate(small_cache):
    cache, _ = small_cache
    cache.insert(0, dirty=True)
    assert cache.invalidate(0)
    assert not cache.invalidate(0)
    assert not cache.contains(0)


def test_flush_counts_dirty(small_cache):
    cache, _ = small_cache
    cache.insert(0, dirty=True)
    cache.insert(1, dirty=False)
    assert cache.flush() == 1
    assert cache.occupancy == 0


@pytest.fixture
def hierarchy():
    params = MachineParams()
    stats = Stats()
    dram = Dram(params, stats)
    return CacheHierarchy(params, stats, dram), stats, dram, params


def test_cold_access_goes_to_dram(hierarchy):
    caches, stats, dram, params = hierarchy
    result = caches.access(0x1000)
    assert result.level == MemLevel.DRAM
    assert result.cycles == (
        params.l1d.latency + params.l2.latency + params.llc.latency
        + params.dram_latency
    )
    assert stats["dram.read_bytes"] == 64


def test_second_access_hits_l1(hierarchy):
    caches, _, _, params = hierarchy
    caches.access(0x1000)
    result = caches.access(0x1000)
    assert result.level == MemLevel.L1
    assert result.cycles == params.l1d.latency


def test_same_line_different_bytes_hit(hierarchy):
    caches, _, _, _ = hierarchy
    caches.access(0x1000)
    assert caches.access(0x1004).level == MemLevel.L1
    assert caches.access(0x103F).level == MemLevel.L1


def test_adjacent_line_misses(hierarchy):
    caches, _, _, _ = hierarchy
    caches.access(0x1000)
    assert caches.access(0x1040).level == MemLevel.DRAM


def test_instantiate_skips_dram(hierarchy):
    caches, stats, dram, _ = hierarchy
    result = caches.instantiate(0x2000)
    assert result.level == MemLevel.LLC
    assert stats["dram.read_bytes"] == 0
    assert stats["hierarchy.bypass_fills"] == 1
    # Line now present: next access is an L1 hit.
    assert caches.access(0x2000).level == MemLevel.L1


def test_instantiated_dirty_line_writes_back_eventually(hierarchy):
    caches, stats, _, params = hierarchy
    caches.instantiate(0x0)
    # Thrash the LLC set of line 0 until it evicts the dirty line.
    num_sets = caches.llc.params.num_sets
    for i in range(1, params.llc.ways + 2):
        caches._fill_llc(i * num_sets, dirty=False)
    assert stats["dram.write_bytes"] >= 64


def test_l1_dirty_eviction_propagates_to_l2(hierarchy):
    caches, _, _, params = hierarchy
    num_sets = caches.l1d.params.num_sets
    line0 = 0
    caches.access_line(line0, write=True)
    # Fill set 0 of L1 until line0 evicts; it must land dirty in L2.
    for i in range(1, params.l1d.ways + 1):
        caches.access_line(i * num_sets)
    assert not caches.l1d.contains(line0)
    assert caches.l2.contains(line0)


def test_flush_all_writes_dirty_llc_lines(hierarchy):
    caches, stats, _, _ = hierarchy
    caches.instantiate(0x40)  # dirty in LLC
    caches.flush_all()
    assert stats["dram.write_bytes"] >= 64
    assert not caches.present(0x40)


def test_present_checks_all_levels(hierarchy):
    caches, _, _, _ = hierarchy
    assert not caches.present(0x1000)
    caches.access(0x1000)
    assert caches.present(0x1000)


def test_flush_all_writes_back_dirty_l1_lines(hierarchy):
    caches, stats, _, _ = hierarchy
    caches.access(0x80, write=True)  # dirty in L1 after the fill
    before = stats["dram.write_bytes"]
    caches.flush_all()
    assert stats["dram.write_bytes"] >= before + 64
    assert not caches.present(0x80)
