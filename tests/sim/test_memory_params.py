"""Unit tests for the frame ledger, machine params, and hardware costs."""

import pytest

from repro.sim.hwcost import AAC_COST, HOT_COST, hot_total_bytes
from repro.sim.machine import Machine
from repro.sim.memory import FrameSpace
from repro.sim.params import MachineParams, PAGE_SIZE


def test_frame_capacity_matches_dram_size():
    frames = FrameSpace(MachineParams(dram_gb=64))
    assert frames.total_frames == 64 * (1 << 30) // PAGE_SIZE


def test_charge_and_credit():
    frames = FrameSpace(MachineParams())
    frames.charge("user", 3)
    frames.credit("user", 1)
    assert frames.live("user") == 2
    assert frames.aggregate("user") == 3
    assert frames.peak("user") == 3


def test_credit_below_zero_raises():
    frames = FrameSpace(MachineParams())
    frames.charge("user", 1)
    with pytest.raises(ValueError):
        frames.credit("user", 2)


def test_negative_charge_rejected():
    frames = FrameSpace(MachineParams())
    with pytest.raises(ValueError):
        frames.charge("user", -1)


def test_move_does_not_inflate_aggregate():
    frames = FrameSpace(MachineParams())
    frames.charge("memento", 4)
    frames.move("memento", "user", 2)
    assert frames.live("memento") == 2
    assert frames.live("user") == 2
    assert frames.aggregate("user") == 0  # counted under memento
    assert frames.aggregate("memento") == 4


def test_usage_report_shape():
    frames = FrameSpace(MachineParams())
    frames.charge("kernel", 2)
    report = frames.usage_report()
    assert report["kernel"] == {"live": 2, "aggregate": 2, "peak": 2}


def test_machine_assembles_table3_defaults():
    machine = Machine()
    params = machine.params
    assert params.l1d.size_bytes == 32 * 1024 and params.l1d.ways == 8
    assert params.l2.size_bytes == 256 * 1024 and params.l2.latency == 14
    assert params.llc.ways == 16 and params.llc.latency == 40
    assert params.freq_hz == 3.0e9
    assert len(machine.cores) == 1


def test_core_charge_categories():
    machine = Machine()
    machine.core.charge(100, "app")
    machine.core.charge(50, "kernel_page")
    assert machine.core.cycles == 150
    assert machine.core.cycles_in("app") == 100
    assert machine.core.cycles_in("kernel_page") == 50


def test_cycles_to_seconds():
    params = MachineParams()
    assert params.cycles_to_seconds(3.0e9) == pytest.approx(1.0)


def test_iso_storage_l1d_is_nine_way():
    params = MachineParams().with_iso_storage_l1d()
    assert params.l1d.ways == 9
    assert params.l1d.size_bytes == 36 * 1024
    assert params.l1d.latency == MachineParams().l1d.latency


def test_hot_analytic_size_matches_table3():
    # Table 3: HOT is 3.4 KB; the bit-level layout should land within 2%.
    assert hot_total_bytes() == pytest.approx(HOT_COST.size_bytes, rel=0.02)


def test_published_cacti_numbers_carried():
    assert HOT_COST.power_mw == 1.32 and HOT_COST.area_mm2 == 0.0084
    assert AAC_COST.power_mw == 0.43 and AAC_COST.area_mm2 == 0.0023


def test_multicore_machine():
    machine = Machine(MachineParams(num_cores=4))
    assert len(machine.cores) == 4
    machine.cores[2].charge(500)
    assert machine.total_cycles() == 500
