"""Unit tests for the statistics counters."""

from repro.sim.stats import Stats


def test_counters_start_at_zero():
    stats = Stats()
    assert stats.get("anything") == 0
    assert stats["anything"] == 0
    assert "anything" not in stats


def test_add_accumulates():
    stats = Stats()
    stats.add("hits")
    stats.add("hits", 4)
    assert stats["hits"] == 5


def test_set_overwrites():
    stats = Stats()
    stats.add("x", 10)
    stats.set("x", 3)
    assert stats["x"] == 3


def test_scoped_prefixes_names():
    stats = Stats()
    scoped = stats.scoped("l1d")
    scoped.add("hits", 2)
    assert stats["l1d.hits"] == 2
    assert scoped["hits"] == 2


def test_nested_scopes_compose():
    stats = Stats()
    inner = stats.scoped("memento").scoped("hot")
    inner.add("alloc_hits")
    assert stats["memento.hot.alloc_hits"] == 1


def test_merge_adds_counters():
    a, b = Stats(), Stats()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 5)
    a.merge(b)
    assert a["x"] == 3
    assert a["y"] == 5


def test_snapshot_and_diff():
    stats = Stats()
    stats.add("x", 5)
    before = stats.snapshot()
    stats.add("x", 2)
    stats.add("y", 1)
    delta = stats.diff(before)
    assert delta == {"x": 2, "y": 1}


def test_with_prefix_filters():
    stats = Stats()
    stats.add("l1d.hits", 1)
    stats.add("l1d.misses", 2)
    stats.add("l2.hits", 3)
    subset = stats.with_prefix("l1d")
    assert set(subset) == {"l1d.hits", "l1d.misses"}


def test_items_sorted():
    stats = Stats()
    stats.add("b")
    stats.add("a")
    assert [name for name, _ in stats.items()] == ["a", "b"]


def test_clear_resets():
    stats = Stats()
    stats.add("x", 9)
    stats.clear()
    assert stats["x"] == 0


# -- Counter handles (interned cells for hot emitters) ---------------------


def test_counter_handles_are_interned():
    stats = Stats()
    assert stats.counter("hits") is stats.counter("hits")
    assert stats.counter("hits") is not stats.counter("misses")


def test_counter_handle_matches_string_path():
    stats = Stats()
    cell = stats.counter("hits")
    cell.add(3)
    stats.add("hits", 2)
    assert stats["hits"] == 5


def test_pending_bumps_fold_on_read():
    stats = Stats()
    cell = stats.counter("hits")
    cell.pending += 7
    # Reading through any surface folds the pending amount in.
    assert stats["hits"] == 7
    assert cell.pending == 0
    cell.pending += 1
    assert stats.get("hits") == 8


def test_pending_visible_in_snapshot_and_diff():
    stats = Stats()
    cell = stats.counter("x")
    cell.pending += 4
    before = stats.snapshot()
    assert before["x"] == 4
    cell.pending += 2
    assert stats.diff(before) == {"x": 2}


def test_pending_visible_through_merge():
    a, b = Stats(), Stats()
    b.counter("x").pending += 3
    a.merge(b)
    assert a["x"] == 3


def test_scoped_counter_prefixes_name():
    stats = Stats()
    cell = stats.scoped("l1d").counter("hits")
    cell.pending += 2
    assert stats["l1d.hits"] == 2


def test_handle_creation_does_not_create_counter():
    stats = Stats()
    stats.counter("idle")
    assert "idle" not in stats.snapshot()


def test_clear_resets_pending_cells():
    stats = Stats()
    cell = stats.counter("x")
    cell.pending += 9
    stats.clear()
    assert stats["x"] == 0
    assert cell.pending == 0
    cell.pending += 1
    assert stats["x"] == 1


def test_to_dict_round_trip():
    stats = Stats()
    stats.add("l1d.hits", 3)
    stats.counter("hot.allocs").pending += 2
    payload = stats.to_dict()
    assert payload == {"l1d.hits": 3, "hot.allocs": 2}
    restored = Stats.from_dict(payload)
    assert restored.snapshot() == payload
    # The restored instance is live, not a frozen view.
    restored.add("l1d.hits")
    assert restored["l1d.hits"] == 4


def test_from_dict_rejects_malformed_payloads():
    import pytest

    with pytest.raises(ValueError):
        Stats.from_dict([("a", 1)])
    with pytest.raises(ValueError):
        Stats.from_dict({1: 2.0})
    with pytest.raises(ValueError):
        Stats.from_dict({"a": "fast"})
    with pytest.raises(ValueError):
        Stats.from_dict({"a": True})
