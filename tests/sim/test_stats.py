"""Unit tests for the statistics counters."""

from repro.sim.stats import Stats


def test_counters_start_at_zero():
    stats = Stats()
    assert stats.get("anything") == 0
    assert stats["anything"] == 0
    assert "anything" not in stats


def test_add_accumulates():
    stats = Stats()
    stats.add("hits")
    stats.add("hits", 4)
    assert stats["hits"] == 5


def test_set_overwrites():
    stats = Stats()
    stats.add("x", 10)
    stats.set("x", 3)
    assert stats["x"] == 3


def test_scoped_prefixes_names():
    stats = Stats()
    scoped = stats.scoped("l1d")
    scoped.add("hits", 2)
    assert stats["l1d.hits"] == 2
    assert scoped["hits"] == 2


def test_nested_scopes_compose():
    stats = Stats()
    inner = stats.scoped("memento").scoped("hot")
    inner.add("alloc_hits")
    assert stats["memento.hot.alloc_hits"] == 1


def test_merge_adds_counters():
    a, b = Stats(), Stats()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 5)
    a.merge(b)
    assert a["x"] == 3
    assert a["y"] == 5


def test_snapshot_and_diff():
    stats = Stats()
    stats.add("x", 5)
    before = stats.snapshot()
    stats.add("x", 2)
    stats.add("y", 1)
    delta = stats.diff(before)
    assert delta == {"x": 2, "y": 1}


def test_with_prefix_filters():
    stats = Stats()
    stats.add("l1d.hits", 1)
    stats.add("l1d.misses", 2)
    stats.add("l2.hits", 3)
    subset = stats.with_prefix("l1d")
    assert set(subset) == {"l1d.hits", "l1d.misses"}


def test_items_sorted():
    stats = Stats()
    stats.add("b")
    stats.add("a")
    assert [name for name, _ in stats.items()] == ["a", "b"]


def test_clear_resets():
    stats = Stats()
    stats.add("x", 9)
    stats.clear()
    assert stats["x"] == 0
