"""Exposition-format validity of the live ``/metrics`` endpoint.

Rather than pinning individual lines, this suite runs one job through a
real service and checks the invariants a Prometheus scraper relies on:
every sample's family has exactly one ``# HELP`` and ``# TYPE`` header,
metric names match the exposition grammar, and histogram bucket series
are cumulative with ``+Inf`` equal to ``_count``.
"""

import re
from math import inf

import pytest

from repro.harness.engine import ExperimentEngine
from repro.service.app import ExperimentServer
from repro.service.client import ServiceClient

#: Prometheus metric-name grammar (exposition format).
NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")

LABELS_RE = re.compile(r"\{[^}]*\}")


@pytest.fixture(scope="module")
def metrics_text(tmp_path_factory):
    """One scrape of ``/metrics`` after a run completed."""
    engine = ExperimentEngine(
        cache_dir=tmp_path_factory.mktemp("cache"), backend="memory"
    )
    with ExperimentServer(host="127.0.0.1", port=0, engine=engine) as srv:
        client = ServiceClient(srv.url, timeout=30)
        job_id = client.submit({
            "workload": "aes", "memento": True,
            "spec_overrides": {"num_allocs": 1_200},
        })
        client.result(job_id, timeout=60)
        return client.metrics()


def parse(text):
    """``(helps, types, samples)`` — samples as (name, labels, value)."""
    helps, types, samples = {}, {}, []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split(maxsplit=3)[2]
            assert name not in helps, f"duplicate HELP for {name}"
            helps[name] = line
        elif line.startswith("# TYPE "):
            parts = line.split()
            name, kind = parts[2], parts[3]
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            match = LABELS_RE.search(line)
            labels = match.group(0) if match else ""
            bare = LABELS_RE.sub("", line)
            name, value = bare.split()
            samples.append((name, labels, float(value)))
    return helps, types, samples


def family_of(name, types):
    """The sample's metric family (folding histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def test_scrape_is_nonempty_and_covers_both_components(metrics_text):
    assert 'component="service"' in metrics_text
    assert 'component="engine"' in metrics_text
    assert metrics_text.endswith("\n")


def test_every_sample_family_has_help_and_type(metrics_text):
    helps, types, samples = parse(metrics_text)
    assert samples
    for name, _, _ in samples:
        family = family_of(name, types)
        assert family in types, f"{name} has no # TYPE"
        assert family in helps, f"{name} has no # HELP"
        assert types[family] in ("gauge", "counter", "histogram")


def test_metric_names_match_the_exposition_grammar(metrics_text):
    _, types, samples = parse(metrics_text)
    for name, _, _ in samples:
        assert NAME_RE.fullmatch(name), f"bad metric name {name!r}"
    for name in types:
        assert NAME_RE.fullmatch(name), f"bad family name {name!r}"


def test_job_latency_histograms_are_exposed(metrics_text):
    _, types, samples = parse(metrics_text)
    assert types.get("repro_service_job_wait_us") == "histogram"
    assert types.get("repro_service_job_run_us") == "histogram"
    finished = [
        value for name, _, value in samples
        if name == "repro_service_jobs_finished_done"
    ]
    assert finished and finished[0] >= 1


def test_histogram_buckets_are_cumulative_to_count(metrics_text):
    _, types, samples = parse(metrics_text)
    families = [
        name for name, kind in types.items() if kind == "histogram"
    ]
    assert families
    for family in families:
        buckets = []
        for name, labels, value in samples:
            if name != f"{family}_bucket":
                continue
            le = re.search(r'le="([^"]+)"', labels).group(1)
            buckets.append((inf if le == "+Inf" else float(le), value))
        buckets.sort()
        assert buckets, f"{family} has no buckets"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), f"{family} not cumulative"
        assert buckets[-1][0] == inf
        (count,) = [
            value for name, _, value in samples
            if name == f"{family}_count"
        ]
        assert buckets[-1][1] == count
        assert any(name == f"{family}_sum" for name, _, _ in samples)
