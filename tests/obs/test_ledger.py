"""Tests for the run ledger and regression gate (:mod:`repro.obs.ledger`)."""

import json

import pytest

from repro.obs.ledger import (
    RunLedger,
    check_bench,
    check_ledger_determinism,
    counter_digest,
    default_ledger_path,
    manifest,
)


class TestCounterDigest:
    def test_order_independent(self):
        assert counter_digest({"a": 1.0, "b": 2.0}) == counter_digest(
            {"b": 2.0, "a": 1.0}
        )

    def test_value_sensitive(self):
        assert counter_digest({"a": 1.0}) != counter_digest({"a": 2.0})

    def test_format(self):
        digest = counter_digest({})
        assert len(digest) == 16
        int(digest, 16)  # hex


def test_manifest_shape():
    entry = manifest(
        key="k1",
        workload="html",
        stack="memento",
        source="live",
        elapsed_s=1.25,
        result_summary={
            "total_cycles": 10.0,
            "dram_bytes": 20.0,
            "stats": {"c": 1.0},
        },
        fingerprints={"source": "abc"},
    )
    assert entry["schema"] == 1
    assert entry["key"] == "k1"
    assert entry["workload"] == "html"
    assert entry["source"] == "live"
    assert entry["elapsed_s"] == 1.25
    assert entry["total_cycles"] == 10.0
    assert entry["counter_digest"] == counter_digest({"c": 1.0})
    assert entry["fingerprints"] == {"source": "abc"}
    assert entry["ts"] > 0


class TestRunLedger:
    def entry(self, key="k", digest="d1"):
        return {"key": key, "counter_digest": digest}

    def test_append_creates_parents_and_read_round_trips(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "ledger.jsonl")
        ledger.append(self.entry("a"))
        ledger.append(self.entry("b"))
        assert [e["key"] for e in ledger.read()] == ["a", "b"]

    def test_read_missing_file(self, tmp_path):
        assert RunLedger(tmp_path / "nope.jsonl").read() == []

    def test_read_skips_corrupt_and_keyless_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            json.dumps(self.entry("good")) + "\n"
            + "garbage\n"
            + json.dumps({"no_key": True}) + "\n"
        )
        assert [e["key"] for e in RunLedger(path).read()] == ["good"]

    def test_tail(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for i in range(5):
            ledger.append(self.entry(f"k{i}"))
        assert [e["key"] for e in ledger.tail(2)] == ["k3", "k4"]

    def test_digests_by_key_deduplicates(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(self.entry("k", "d1"))
        ledger.append(self.entry("k", "d1"))
        ledger.append(self.entry("k", "d2"))
        ledger.append(self.entry("other", "d9"))
        assert ledger.digests_by_key() == {
            "k": ["d1", "d2"], "other": ["d9"]
        }


class TestCheckBench:
    def payload(self, **keys):
        return {
            "replay": {
                key: {"events_per_sec": value} for key, value in keys.items()
            }
        }

    def test_within_threshold_ok(self):
        verdict = check_bench(
            self.payload(a=95.0), self.payload(a=100.0), threshold_pct=10
        )
        assert verdict["ok"]
        (row,) = verdict["rows"]
        assert row["ratio"] == pytest.approx(0.95)
        assert not row["regressed"]

    def test_breach_fails(self):
        verdict = check_bench(
            self.payload(a=80.0), self.payload(a=100.0), threshold_pct=10
        )
        assert not verdict["ok"]
        assert verdict["rows"][0]["regressed"]

    def test_improvement_never_fails(self):
        verdict = check_bench(
            self.payload(a=500.0), self.payload(a=100.0), threshold_pct=10
        )
        assert verdict["ok"]

    def test_missing_keys_reported_not_failed(self):
        verdict = check_bench(
            self.payload(new=100.0), self.payload(old=100.0)
        )
        assert verdict["ok"]
        assert {row["key"] for row in verdict["rows"]} == {"new", "old"}
        assert all(row["ratio"] is None for row in verdict["rows"])

    def test_accepts_bare_replay_mapping(self):
        # A payload without the {"replay": ...} wrapper works too.
        verdict = check_bench(
            {"a": {"events_per_sec": 50.0}},
            {"a": {"events_per_sec": 100.0}},
        )
        assert not verdict["ok"]


def test_check_ledger_determinism(tmp_path):
    ledger = RunLedger(default_ledger_path(tmp_path))
    ledger.append({"key": "stable", "counter_digest": "d1"})
    ledger.append({"key": "stable", "counter_digest": "d1"})
    assert check_ledger_determinism(ledger) == {"ok": True, "conflicts": {}}
    ledger.append({"key": "stable", "counter_digest": "d2"})
    verdict = check_ledger_determinism(ledger)
    assert not verdict["ok"]
    assert verdict["conflicts"] == {"stable": ["d1", "d2"]}


def test_default_ledger_path(tmp_path):
    assert default_ledger_path(tmp_path).name == "ledger.jsonl"
    assert default_ledger_path(str(tmp_path)).parent == tmp_path


# -- schema-tolerant reads ----------------------------------------------------


class TestReadClassified:
    def test_counts_unrecognized_lines(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "a", "schema": 1})
        ledger.append({"key": "b"})  # pre-schema line: accepted as v1
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write('{"no_key": true}\n')
            handle.write('{"key": "c", "schema": 99}\n')
            handle.write('{"key": "d", "schema": "weird"}\n')
        entries, skipped = ledger.read_classified()
        assert [e["key"] for e in entries] == ["a", "b"]
        assert skipped == 4

    def test_read_matches_classified_entries(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "a"})
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "z", "schema": 99}\n')
        assert ledger.read() == ledger.read_classified()[0]

    def test_missing_file_is_empty(self, tmp_path):
        entries, skipped = RunLedger(
            tmp_path / "absent.jsonl"
        ).read_classified()
        assert entries == [] and skipped == 0
