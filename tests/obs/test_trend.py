"""Ledger trend analytics: robust drift detection over run history."""

import pytest

from repro.obs.ledger import RunLedger
from repro.obs.trend import (
    check_trend,
    mad,
    median,
    render_trend,
    trend_by_key,
)


def entry(key="k1", source="live", elapsed=1.0, digest="d0", **extra):
    return {
        "key": key,
        "workload": "html",
        "stack": "memento",
        "source": source,
        "elapsed_s": elapsed,
        "counter_digest": digest,
        **extra,
    }


def history(elapsed_series, key="k1", digest="d0"):
    return [entry(key=key, elapsed=e, digest=digest) for e in elapsed_series]


class TestRobustStats:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0]) == 1.0


class TestTrendByKey:
    def test_steady_history_is_ok(self):
        (row,) = trend_by_key(history([1.0, 1.01, 0.99, 1.02]))
        assert not row["drift"]
        assert row["live_samples"] == 4
        assert row["median_s"] == pytest.approx(1.0)

    def test_large_slowdown_flags(self):
        (row,) = trend_by_key(history([1.0, 1.01, 0.99, 5.0]))
        assert row["time_drift"] and row["drift"]
        assert row["latest_s"] == 5.0

    def test_speedup_never_flags(self):
        (row,) = trend_by_key(history([1.0, 1.01, 0.99, 0.1]))
        assert not row["time_drift"]

    def test_noisy_history_needs_both_tests(self):
        # 71% over the median (past the 50% gate) but well inside the
        # wide MAD spread of a noisy history: not drift.
        (row,) = trend_by_key(history([1.0, 3.0, 0.4, 2.5, 3.0]))
        assert not row["time_drift"]
        assert row["latest_s"] == 3.0

    def test_small_slowdown_below_pct_threshold_is_ok(self):
        # Far outside the tight MAD spread but under the 50% gate.
        (row,) = trend_by_key(history([1.0, 1.001, 0.999, 1.3]))
        assert not row["time_drift"]

    def test_insufficient_history_abstains(self):
        (row,) = trend_by_key(history([1.0, 9.0]))
        assert not row["time_drift"]
        assert row["median_s"] is None

    def test_cache_hits_do_not_pollute_the_series(self):
        entries = history([1.0, 1.02, 0.98]) + [
            entry(source="cache", elapsed=0.0),
            entry(source="memo", elapsed=0.0),
        ]
        (row,) = trend_by_key(entries)
        assert row["live_samples"] == 3
        assert row["runs"] == 5
        assert not row["drift"]

    def test_digest_drift_flags_regardless_of_timing(self):
        entries = history([1.0, 1.0, 1.0]) + [entry(digest="dX")]
        (row,) = trend_by_key(entries)
        assert row["digest_drift"] and row["drift"]

    def test_keys_group_independently(self):
        entries = history([1.0, 1.0, 1.0, 9.0], key="slow") + history(
            [1.0, 1.0, 1.0, 1.0], key="steady"
        )
        rows = {r["key"]: r for r in trend_by_key(entries)}
        assert rows["slow"]["drift"]
        assert not rows["steady"]["drift"]


class TestCheckTrend:
    def write_ledger(self, tmp_path, entries, garbage=()):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for item in entries:
            ledger.append(item)
        if garbage:
            with ledger.path.open("a", encoding="utf-8") as handle:
                for line in garbage:
                    handle.write(line + "\n")
        return ledger

    def test_ok_report(self, tmp_path):
        ledger = self.write_ledger(tmp_path, history([1.0, 1.0, 1.0]))
        report = check_trend(ledger)
        assert report["ok"]
        assert report["entries"] == 3 and report["skipped"] == 0

    def test_drift_fails_and_renders(self, tmp_path):
        ledger = self.write_ledger(
            tmp_path, history([1.0, 1.0, 1.0, 1.0, 8.0])
        )
        report = check_trend(ledger)
        assert not report["ok"]
        assert "TIME DRIFT" in render_trend(report)

    def test_unknown_schema_lines_are_skipped_not_fatal(self, tmp_path):
        ledger = self.write_ledger(
            tmp_path,
            history([1.0, 1.0, 1.0]),
            garbage=[
                "not json at all",
                '{"no_key_field": true}',
                '{"key": "future", "schema": 99}',
            ],
        )
        report = check_trend(ledger)
        assert report["ok"]
        assert report["skipped"] == 3
        assert "skipped 3" in render_trend(report)

    def test_missing_ledger_is_empty_not_an_error(self, tmp_path):
        report = check_trend(RunLedger(tmp_path / "absent.jsonl"))
        assert report["ok"] and report["entries"] == 0
        assert render_trend(report) == "(ledger has no trend data)"
