"""Cycle-attribution profiler: exactness, determinism, zero perturbation.

The load-bearing properties:

* attributed component cycles sum to the run's ``total_cycles`` exactly
  (the per-category residual assignment leaves nothing unattributed);
* profiling the same request twice yields identical payloads (the
  simulator is deterministic and the profiler adds no state of its own);
* enabling the profiler changes *nothing* about the simulation — the
  RunResult counter digest is identical with it on or off.
"""

import json
from dataclasses import replace

import pytest

from repro.harness.engine import RunRequest
from repro.obs.ledger import counter_digest
from repro.obs.profile import (
    CATEGORY_RESIDUAL,
    COMPONENT_CATEGORY,
    CycleProfile,
    Log2Histogram,
    install_profile,
    render_histograms,
    render_profile,
    render_top_consumers,
)
from repro.workloads.registry import get_workload

#: One workload per language stack keeps the integration matrix honest
#: without replaying all 23 workloads per test.
WORKLOADS = ("html", "Redis", "deploy")


def small_spec(name="html", num_allocs=1_200):
    return replace(get_workload(name).resolved(), num_allocs=num_allocs)


@pytest.fixture(autouse=True)
def _no_leaked_profile():
    previous = install_profile(None)
    yield
    install_profile(previous)


def profiled_run(spec, memento):
    """Execute one request under a fresh profile; returns (result, run)."""
    profile = CycleProfile()
    install_profile(profile)
    try:
        result = RunRequest(spec=spec, memento=memento).execute()
    finally:
        install_profile(None)
    (run,) = profile.runs
    return result, run, profile


# -- Log2Histogram ------------------------------------------------------------


class TestLog2Histogram:
    def test_bucket_placement_is_bit_length(self):
        hist = Log2Histogram("op")
        for value in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            hist.record(value)
        assert hist.buckets[0] == 1  # 0
        assert hist.buckets[1] == 1  # 1
        assert hist.buckets[2] == 2  # 2, 3
        assert hist.buckets[3] == 2  # 4, 7
        assert hist.buckets[4] == 1  # 8
        assert hist.buckets[10] == 1  # 1023
        assert hist.buckets[11] == 1  # 1024
        assert hist.count == 9

    def test_huge_values_clamp_to_last_bucket(self):
        hist = Log2Histogram("op")
        hist.record(1 << 40)
        assert hist.buckets[-1] == 1
        assert hist.total == 1 << 40

    def test_round_trip(self):
        hist = Log2Histogram("op")
        for value in (1, 5, 900):
            hist.record(value)
        payload = hist.to_dict()
        assert payload["upper_bounds"][3] == 7
        clone = Log2Histogram.from_dict(json.loads(json.dumps(payload)))
        assert clone.to_dict() == payload


# -- finish_run reconciliation (synthetic) ------------------------------------


class TestFinishRun:
    def test_residual_absorbs_uninstrumented_cycles(self):
        profile = CycleProfile()
        ckpt = profile.checkpoint()
        profile.cell("kernel.fault").add(100)
        run = profile.finish_run(
            workload="w", stack="baseline",
            categories={"kernel_page": 150, "app": 40},
            total_cycles=190, checkpoint=ckpt,
        )
        components = run["components"]
        assert components["kernel.fault"] == {"count": 1, "cycles": 100}
        assert components["kernel.page_other"]["cycles"] == 50
        assert components["app.compute"]["cycles"] == 40
        assert run["attributed_cycles"] == 190
        assert run["unattributed_cycles"] == 0

    def test_checkpoint_scopes_the_delta(self):
        profile = CycleProfile()
        profile.cell("kernel.fault").add(999)  # a previous run's charge
        ckpt = profile.checkpoint()
        profile.cell("kernel.fault").add(10)
        run = profile.finish_run(
            workload="w", stack="baseline",
            categories={"kernel_page": 10},
            total_cycles=10, checkpoint=ckpt,
        )
        assert run["components"]["kernel.fault"]["cycles"] == 10

    def test_uncategorized_cell_is_an_overlay(self):
        profile = CycleProfile()
        ckpt = profile.checkpoint()
        profile.cell("dram.access").add(256)
        run = profile.finish_run(
            workload="w", stack="memento", categories={"app": 7},
            total_cycles=7, checkpoint=ckpt,
        )
        assert run["overlays"]["dram.access"]["cycles"] == 256
        # Overlays never count toward attribution.
        assert run["attributed_cycles"] == 7

    def test_derived_components_join_their_category(self):
        profile = CycleProfile()
        run = profile.finish_run(
            workload="w", stack="memento", categories={"touch": 100},
            total_cycles=100,
            derived={"touch.bypass_instantiate": (5, 60)},
        )
        assert run["components"]["touch.bypass_instantiate"] == {
            "count": 5, "cycles": 60,
        }
        assert run["components"]["touch.demand_lines"]["cycles"] == 40

    def test_every_residual_name_has_a_consistent_category(self):
        # A residual sink that is also an instrumented component must
        # map back to the same category, or reconciliation double counts.
        for category, name in CATEGORY_RESIDUAL.items():
            if name in COMPONENT_CATEGORY:
                assert COMPONENT_CATEGORY[name] == category


# -- full-system integration --------------------------------------------------


class TestAttributionExactness:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("memento", [False, True])
    def test_components_sum_to_total(self, name, memento):
        result, run, _ = profiled_run(small_spec(name), memento)
        assert run["total_cycles"] == result.total_cycles
        component_sum = sum(
            row["cycles"] for row in run["components"].values()
        )
        assert component_sum == result.total_cycles
        assert run["unattributed_cycles"] == 0

    def test_categories_match_the_stats_counters(self):
        result, run, _ = profiled_run(small_spec(), memento=True)
        assert run["categories"] == {
            k: int(v) for k, v in result.cycles.items()
        }

    def test_phases_partition_the_total(self):
        _, run, _ = profiled_run(small_spec(), memento=True)
        assert sum(run["phases"].values()) == run["total_cycles"]
        assert "replay" in run["phases"]

    def test_memento_attributes_hardware_components(self):
        _, run, profile = profiled_run(small_spec(), memento=True)
        names = set(run["components"])
        assert "hot.alloc_hit" in names
        assert "touch.bypass_instantiate" in names
        assert {"aac.hit", "aac.miss"} & names
        assert "op.alloc" in profile.hists
        assert "op.page_walk" in profile.hists

    def test_baseline_attributes_software_components(self):
        _, run, _ = profiled_run(small_spec(), memento=False)
        names = set(run["components"])
        assert "swalloc.alloc_fast" in names
        assert "kernel.fault" in names
        assert not any(n.startswith("hot.") for n in names)


# -- determinism and zero perturbation ----------------------------------------


class TestDeterminism:
    def test_identical_requests_identical_payloads(self):
        spec = small_spec()
        _, run_a, profile_a = profiled_run(spec, memento=True)
        _, run_b, profile_b = profiled_run(spec, memento=True)
        assert run_a == run_b
        payload_a = json.dumps(profile_a.to_dict(), sort_keys=True)
        payload_b = json.dumps(profile_b.to_dict(), sort_keys=True)
        assert payload_a == payload_b

    @pytest.mark.parametrize("memento", [False, True])
    def test_profiler_does_not_perturb_the_simulation(self, memento):
        spec = small_spec()
        request = RunRequest(spec=spec, memento=memento)
        plain = request.execute()
        profiled, _, _ = profiled_run(spec, memento)
        assert counter_digest(plain.stats) == counter_digest(profiled.stats)
        assert plain.total_cycles == profiled.total_cycles


# -- rendering ----------------------------------------------------------------


class TestRendering:
    def test_render_profile_shows_components_and_categories(self):
        _, _, profile = profiled_run(small_spec(), memento=True)
        text = render_profile(profile.to_dict())
        assert "html [memento]" in text
        assert "hot.alloc_hit" in text
        assert "kernel_page" in text
        assert "#" in text
        assert "! unattributed" not in text

    def test_render_top_consumers_ranks_and_limits(self):
        _, _, profile = profiled_run(small_spec(), memento=True)
        text = render_top_consumers(profile.to_dict(), top=3)
        assert "top 3 cycle consumers" in text
        assert len(text.splitlines()) == 4

    def test_render_histograms_shows_buckets(self):
        _, _, profile = profiled_run(small_spec(), memento=True)
        text = render_histograms(profile.to_dict())
        assert "op.alloc" in text
        assert "mean=" in text

    def test_empty_payload_renders_placeholders(self):
        assert render_profile({"runs": []}) == "(no profiled runs)"
        assert render_top_consumers({"runs": []}) == "(no profiled runs)"
        assert render_histograms({}) == "(no histograms)"
