"""Perfetto trace-event export: schema, nesting, round trips."""

import json
from dataclasses import replace

import pytest

from repro.harness.engine import RunRequest
from repro.obs.events import EventRing, install_ring
from repro.obs.metrics import event_record, span_record
from repro.obs.timeline import (
    EVENT_TID,
    SPAN_TID,
    event_trace_events,
    export_timeline,
    span_trace_events,
    trace_events,
    validate_trace_events,
)
from repro.obs.tracing import Tracer, set_tracer
from repro.workloads.registry import get_workload


def nested_span_payload():
    tracer = Tracer()
    with tracer.span("outer", workload="html"):
        with tracer.span("inner.a"):
            pass
        with tracer.span("inner.b"):
            pass
    return tracer.to_dict()["spans"]


def strip_starts(spans):
    """Simulate a pre-``start`` span payload (older metrics files)."""
    out = []
    for span in spans:
        span = dict(span)
        span.pop("start", None)
        if "children" in span:
            span["children"] = strip_starts(span["children"])
        out.append(span)
    return out


class TestSpanEvents:
    def test_complete_event_schema(self):
        events = span_trace_events(nested_span_payload())
        assert [e["name"] for e in events] == ["outer", "inner.a", "inner.b"]
        for event in events:
            assert event["ph"] == "X"
            assert event["tid"] == SPAN_TID
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert events[0]["args"] == {"workload": "html"}

    def test_children_nest_inside_the_parent(self):
        outer, inner_a, inner_b = span_trace_events(nested_span_payload())
        outer_end = outer["ts"] + outer["dur"]
        for child in (inner_a, inner_b):
            assert child["ts"] >= outer["ts"]
            assert child["ts"] + child["dur"] <= outer_end + 1e-6
        assert inner_b["ts"] >= inner_a["ts"]

    def test_earliest_span_rebases_to_zero(self):
        events = span_trace_events(nested_span_payload())
        assert min(e["ts"] for e in events) == 0

    def test_startless_payload_synthesizes_monotone_layout(self):
        spans = strip_starts(nested_span_payload())
        events = span_trace_events(spans)
        validate_trace_events(events)
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)


class TestEventInstants:
    def test_timestamped_ring_records_share_the_clock(self):
        ring = EventRing(capacity=16, sample_every=1, timestamps=True)
        ring.record("hot.alloc_hit", 3)
        ring.record("tlb.shootdown", 1)
        events = event_trace_events(ring.to_dict())
        assert [e["ph"] for e in events] == ["i", "i"]
        assert events[0]["tid"] == EVENT_TID
        assert events[0]["args"] == {"seq": 1, "value": 3}
        assert events[1]["ts"] >= events[0]["ts"]

    def test_bare_records_lay_out_by_index(self):
        ring = EventRing(capacity=16, sample_every=1)
        ring.record("a")
        ring.record("b")
        events = event_trace_events(ring.to_dict())
        assert [e["ts"] for e in events] == [0.0, 1.0]


class TestTraceEvents:
    def test_metadata_tracks_are_emitted(self):
        records = [span_record({"spans": nested_span_payload()})]
        events = trace_events(records)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"repro", "phases", "hw events"} <= names

    def test_spans_and_events_share_one_base(self):
        tracer = Tracer()
        ring = EventRing(capacity=8, sample_every=1, timestamps=True)
        with tracer.span("run"):
            ring.record("hot.alloc_hit")
        records = [
            span_record(tracer.to_dict()),
            event_record(ring.to_dict()),
        ]
        events = trace_events(records)
        (span,) = [e for e in events if e["ph"] == "X"]
        (instant,) = [e for e in events if e["ph"] == "i"]
        # The instant fired while the span was open.
        assert span["ts"] <= instant["ts"] <= span["ts"] + span["dur"]

    def test_other_record_kinds_are_ignored(self):
        events = trace_events([{"kind": "run", "workload": "html"}])
        assert all(e["ph"] == "M" for e in events)


class TestValidation:
    def test_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing"):
            validate_trace_events([{"ph": "X", "ts": 0, "pid": 1}])

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError, match="dur"):
            validate_trace_events(
                [{"ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1}]
            )

    def test_non_monotone_track_raises(self):
        events = [
            {"ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1},
            {"ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="out of order"):
            validate_trace_events(events)

    def test_separate_tracks_validate_independently(self):
        events = [
            {"ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1},
            {"ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 2},
        ]
        assert validate_trace_events(events) == 2


class TestExport:
    def test_real_run_exports_a_loadable_trace(self, tmp_path):
        tracer = Tracer()
        ring = EventRing(timestamps=True)
        previous_tracer = set_tracer(tracer)
        previous_ring = install_ring(ring)
        try:
            spec = replace(
                get_workload("html").resolved(), num_allocs=1_000
            )
            RunRequest(spec=spec, memento=True).execute()
        finally:
            set_tracer(previous_tracer)
            install_ring(previous_ring)
        records = [
            span_record(tracer.to_dict()),
            event_record(ring.to_dict()),
        ]
        out = export_timeline(tmp_path / "trace.json", records)
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert validate_trace_events(events) == len(events)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "system.run" in names and "replay" in names
        assert any(e["ph"] == "i" for e in events)
