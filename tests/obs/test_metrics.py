"""Tests for metrics export (:mod:`repro.obs.metrics`)."""

from repro.obs.metrics import (
    event_record,
    prometheus_lines,
    read_jsonl,
    render_prometheus,
    run_record,
    sanitize_metric_name,
    span_record,
    write_jsonl,
    write_prometheus,
)


class TestSanitize:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            sanitize_metric_name("hot.alloc_hits") == "repro_hot_alloc_hits"
        )

    def test_leading_digit_guard_and_no_prefix(self):
        assert sanitize_metric_name("9lives", prefix="") == "_9lives"

    def test_illegal_characters_folded(self):
        assert sanitize_metric_name("a-b c") == "repro_a_b_c"


class TestPrometheusLines:
    def test_help_type_headers_labels_and_value(self):
        lines = prometheus_lines(
            {"cycles.total": 12.0}, {"workload": "html", "stack": "memento"}
        )
        assert lines[0] == (
            "# HELP repro_cycles_total repro counter cycles.total"
        )
        assert lines[1] == "# TYPE repro_cycles_total gauge"
        assert lines[2] == (
            'repro_cycles_total{stack="memento",workload="html"} 12'
        )

    def test_names_sorted_and_type_deduped_across_snapshots(self):
        seen = set()
        first = prometheus_lines({"b": 1, "a": 2}, seen_types=seen)
        second = prometheus_lines({"a": 3}, seen_types=seen)
        metrics = [l for l in first if not l.startswith("#")]
        assert metrics == ["repro_a 2", "repro_b 1"]
        assert not any(l.startswith("#") for l in second)

    def test_label_values_escaped(self):
        (line,) = prometheus_lines({"x": 1}, {"q": 'say "hi"'})[2:]
        assert r'q="say \"hi\""' in line


def test_render_prometheus_multi_snapshot_document():
    doc = render_prometheus([
        {"labels": {"stack": "baseline"}, "counters": {"c": 1.0}},
        {"labels": {"stack": "memento"}, "counters": {"c": 2.0}},
    ])
    assert doc.count("# TYPE repro_c gauge") == 1
    assert 'repro_c{stack="baseline"} 1' in doc
    assert 'repro_c{stack="memento"} 2' in doc
    assert doc.endswith("\n")
    assert render_prometheus([]) == ""


def test_write_prometheus(tmp_path):
    out = write_prometheus(
        tmp_path / "m.prom", [{"labels": {}, "counters": {"k": 5}}]
    )
    assert out.read_text() == (
        "# HELP repro_k repro counter k\n# TYPE repro_k gauge\nrepro_k 5\n"
    )


class TestRecords:
    SUMMARY = {
        "name": "html",
        "memento": True,
        "total_cycles": 100.0,
        "seconds": 0.5,
        "dram_bytes": 64.0,
        "stats": {"hot.hits": 3.0},
    }

    def test_run_record_derives_stack(self):
        record = run_record(self.SUMMARY)
        assert record["kind"] == "run"
        assert record["workload"] == "html"
        assert record["stack"] == "memento"
        assert record["counters"] == {"hot.hits": 3.0}

    def test_run_record_stack_override(self):
        record = run_record(self.SUMMARY, stack="memento_nobypass")
        assert record["stack"] == "memento_nobypass"

    def test_run_record_baseline(self):
        record = run_record({**self.SUMMARY, "memento": False})
        assert record["stack"] == "baseline"

    def test_span_and_event_records(self):
        spans = span_record({"spans": [{"name": "a", "seconds": 0.0}]})
        assert spans == {
            "kind": "spans", "spans": [{"name": "a", "seconds": 0.0}]
        }
        events = event_record({"counts": {"x": 1}, "events": []})
        assert events["kind"] == "events"
        assert events["counts"] == {"x": 1}


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        records = [{"kind": "run", "workload": "html"}, {"kind": "spans"}]
        write_jsonl(path, records)
        assert read_jsonl(path) == records

    def test_read_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"ok": 1}\n\nnot json\n[1, 2]\n{"ok": 2}\n')
        assert read_jsonl(path) == [{"ok": 1}, {"ok": 2}]

    def test_read_missing_file_returns_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []


# -- histogram exposition -----------------------------------------------------


class TestHistogramLines:
    def payload(self):
        from repro.obs.profile import Log2Histogram

        hist = Log2Histogram("op.alloc")
        for value in (2, 3, 40, 900):
            hist.record(value)
        return hist.to_dict()

    def test_buckets_are_cumulative_with_inf_terminal(self):
        from repro.obs.metrics import histogram_lines

        lines = histogram_lines(self.payload())
        assert lines[0] == (
            "# HELP repro_op_alloc repro log2 histogram op.alloc"
        )
        assert lines[1] == "# TYPE repro_op_alloc histogram"
        assert 'repro_op_alloc_bucket{le="3"} 2' in lines
        assert 'repro_op_alloc_bucket{le="63"} 3' in lines
        assert 'repro_op_alloc_bucket{le="1023"} 4' in lines
        assert 'repro_op_alloc_bucket{le="+Inf"} 4' in lines
        assert "repro_op_alloc_sum 945" in lines
        assert "repro_op_alloc_count 4" in lines

    def test_labels_compose_with_le(self):
        from repro.obs.metrics import histogram_lines

        lines = histogram_lines(self.payload(), labels={"workload": "html"})
        assert any(
            'le="+Inf"' in line and 'workload="html"' in line
            for line in lines
        )

    def test_shared_seen_types_suppresses_duplicate_headers(self):
        from repro.obs.metrics import histogram_lines

        seen = set()
        first = histogram_lines(self.payload(), seen_types=seen)
        second = histogram_lines(self.payload(), seen_types=seen)
        assert first[0].startswith("# HELP")
        assert first[1].startswith("# TYPE")
        assert not any(line.startswith("#") for line in second)


def test_profile_record_wraps_the_payload():
    from repro.obs.metrics import profile_record
    from repro.obs.profile import CycleProfile

    profile = CycleProfile()
    record = profile_record(profile.to_dict())
    assert record["kind"] == "profile"
    assert record["runs"] == [] and "histograms" in record
