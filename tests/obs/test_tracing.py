"""Tests for span tracing (:mod:`repro.obs.tracing`)."""

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    render_span_tree,
    set_tracer,
)


@pytest.fixture(autouse=True)
def _restore_active_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


def make_tracer(times):
    """A tracer driven by a scripted clock (one reading per call)."""
    readings = iter(times)
    return Tracer(clock=lambda: next(readings))


def test_nested_spans_build_a_tree():
    tracer = Tracer()
    with tracer.span("outer", workload="html"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner2"):
            pass
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.name == "outer"
    assert [c.name for c in outer.children] == ["inner", "inner2"]


def test_span_durations_from_clock():
    tracer = make_tracer([10.0, 11.0, 13.0, 14.0])
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer = tracer.roots[0]
    assert outer.seconds == pytest.approx(4.0)
    assert outer.children[0].seconds == pytest.approx(2.0)


def test_span_set_attribute():
    tracer = Tracer()
    with tracer.span("s", a=1) as span:
        span.set("b", 2)
    payload = tracer.to_dict()["spans"][0]
    assert payload["attrs"] == {"a": 1, "b": 2}


def test_exception_inside_span_still_closes_it():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.end >= outer.start
    assert outer.children[0].end >= outer.children[0].start
    # The stack fully unwound: a new span is a root, not a child.
    with tracer.span("after"):
        pass
    assert [s.name for s in tracer.roots] == ["outer", "after"]


def test_to_dict_round_trips_structure():
    tracer = Tracer()
    with tracer.span("a", k="v"):
        with tracer.span("b"):
            pass
    payload = tracer.to_dict()
    assert list(payload) == ["spans"]
    (root,) = payload["spans"]
    assert root["name"] == "a"
    assert root["attrs"] == {"k": "v"}
    assert root["children"][0]["name"] == "b"
    assert "children" not in root["children"][0]


def test_clear_resets_roots_and_stack():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.clear()
    assert tracer.roots == []
    assert tracer.to_dict() == {"spans": []}


def test_null_tracer_is_shared_noop():
    null = NullTracer()
    first = null.span("anything", attr=1)
    second = null.span("else")
    assert first is second  # one shared instance, no allocation
    with first as span:
        span.set("ignored", True)
    assert null.roots == []
    assert null.to_dict() == {"spans": []}
    assert null.enabled is False and Tracer.enabled is True


def test_get_set_tracer_protocol():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    previous = set_tracer(tracer)
    assert previous is NULL_TRACER
    assert get_tracer() is tracer
    assert set_tracer(None) is tracer
    assert get_tracer() is NULL_TRACER


def test_render_span_tree_indents_and_sorts_attrs():
    tracer = make_tracer([0.0, 0.0, 0.001, 0.002])
    with tracer.span("outer", z=1, a=2):
        with tracer.span("inner"):
            pass
    text = render_span_tree(tracer.to_dict())
    lines = text.splitlines()
    assert lines[0].startswith("outer")
    assert "a=2 z=1" in lines[0]  # attrs sorted by key
    assert lines[1].startswith("  inner")
    assert "ms" in lines[0]


def test_render_span_tree_accepts_single_span():
    text = render_span_tree({"name": "solo", "seconds": 0.001})
    assert text.startswith("solo")
