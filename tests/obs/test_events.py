"""Tests for the sampled hardware-event ring (:mod:`repro.obs.events`)."""

import pytest

from repro.obs.events import EventRing, get_ring, install_ring


@pytest.fixture(autouse=True)
def _no_leaked_ring():
    previous = install_ring(None)
    yield
    install_ring(previous)


def test_counts_are_exact_samples_every_nth():
    ring = EventRing(capacity=16, sample_every=4)
    for i in range(10):
        ring.record("hot.alloc_hit", i)
    assert ring.counts == {"hot.alloc_hit": 10}
    # Occurrences 4 and 8 were sampled, carrying their values (3 and 7).
    assert ring.events() == [
        (4, "hot.alloc_hit", 3),
        (8, "hot.alloc_hit", 7),
    ]


def test_per_kind_sampling_is_independent():
    ring = EventRing(capacity=16, sample_every=2)
    ring.record("a")
    ring.record("b")
    ring.record("a")  # 2nd "a": sampled
    assert [e[1] for e in ring.events()] == ["a"]
    assert ring.counts == {"a": 2, "b": 1}


def test_ring_rotates_keeping_most_recent():
    ring = EventRing(capacity=3, sample_every=1)
    for i in range(5):
        ring.record("k", i)
    events = ring.events()
    assert len(events) == 3
    assert [value for _, _, value in events] == [2, 3, 4]  # oldest first
    assert ring.counts["k"] == 5  # counts never truncate


def test_to_dict_and_clear():
    ring = EventRing(capacity=4, sample_every=1)
    ring.record("x", 7)
    payload = ring.to_dict()
    assert payload["capacity"] == 4
    assert payload["sample_every"] == 1
    assert payload["counts"] == {"x": 1}
    assert payload["events"] == [[1, "x", 7]]
    ring.clear()
    assert ring.counts == {} and ring.events() == []


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        EventRing(capacity=0)
    with pytest.raises(ValueError):
        EventRing(sample_every=0)


def test_install_ring_protocol():
    assert get_ring() is None
    ring = EventRing()
    assert install_ring(ring) is None
    assert get_ring() is ring
    assert install_ring(None) is ring
    assert get_ring() is None


def test_memento_system_emits_events_when_ring_installed():
    """End to end: a Memento replay populates the ring; without a ring
    the same construction path emits nothing (the sites are gated)."""
    from dataclasses import replace

    from repro.harness.system import SimulatedSystem
    from repro.workloads.registry import get_workload
    from repro.workloads.synth import generate_trace

    spec = replace(get_workload("html").resolved(), num_allocs=1_500)
    trace = generate_trace(spec)

    ring = EventRing(sample_every=8)
    install_ring(ring)
    try:
        SimulatedSystem(spec, memento=True).run(trace)
    finally:
        install_ring(None)
    assert ring.counts.get("hot.alloc_hit", 0) > 0
    assert ring.counts.get("hot.free_hit", 0) > 0
    assert any(kind.startswith("aac.") for kind in ring.counts)
    assert ring.events(), "sampling should have captured records"

    # Ring removed: a fresh system must not touch the old ring.
    before = dict(ring.counts)
    SimulatedSystem(spec, memento=True).run(generate_trace(spec))
    assert ring.counts == before
