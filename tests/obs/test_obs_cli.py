"""Integration tests: engine ledger, traced runs, the ``repro obs`` CLI,
and the ``repro.api`` facade."""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.harness.engine import ExperimentEngine, RunRequest
from repro.obs import (
    EventRing,
    RunLedger,
    Tracer,
    default_ledger_path,
    get_tracer,
    install_profile,
    install_ring,
    set_tracer,
)
from repro.workloads.registry import get_workload


def small_spec(name="html", num_allocs=1_500):
    return replace(get_workload(name).resolved(), num_allocs=num_allocs)


@pytest.fixture(autouse=True)
def _clean_obs_globals():
    previous_tracer = get_tracer()
    previous_ring = install_ring(None)
    previous_profile = install_profile(None)
    yield
    set_tracer(previous_tracer)
    install_ring(previous_ring)
    install_profile(previous_profile)


@pytest.fixture
def small_cli_workloads(monkeypatch):
    import repro.cli as cli

    original = cli.get_workload
    monkeypatch.setattr(
        cli, "get_workload",
        lambda name: replace(original(name), num_allocs=1_500),
    )


# -- engine ledger integration ------------------------------------------------


class TestEngineLedger:
    def test_every_execution_appends_a_manifest(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path, use_disk_cache=True)
        request = RunRequest(spec=small_spec(), memento=True)
        engine.run(request)  # live
        engine.run(request)  # memo hit
        entries = RunLedger(default_ledger_path(tmp_path)).read()
        assert [e["source"] for e in entries] == ["live", "memo"]
        live, memo = entries
        assert live["key"] == memo["key"]
        # The determinism canary: identical requests, identical digests.
        assert live["counter_digest"] == memo["counter_digest"]
        assert live["workload"] == "html"
        assert live["elapsed_s"] > 0 and memo["elapsed_s"] == 0.0
        assert set(live["fingerprints"]) == {"source", "cost_model"}
        assert engine.summary().get("engine.ledger.writes") == 2

    def test_disk_hit_recorded_as_cache_source(self, tmp_path):
        request = RunRequest(spec=small_spec(), memento=False)
        ExperimentEngine(cache_dir=tmp_path, use_disk_cache=True).run(request)
        ExperimentEngine(cache_dir=tmp_path, use_disk_cache=True).run(request)
        sources = [
            e["source"]
            for e in RunLedger(default_ledger_path(tmp_path)).read()
        ]
        assert sources == ["live", "cache"]

    def test_use_ledger_false_writes_nothing(self, tmp_path):
        engine = ExperimentEngine(
            cache_dir=tmp_path, use_disk_cache=True, use_ledger=False
        )
        engine.run(RunRequest(spec=small_spec(), memento=False))
        assert not default_ledger_path(tmp_path).exists()

    def test_repro_no_ledger_env_opts_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_LEDGER", "1")
        engine = ExperimentEngine(cache_dir=tmp_path, use_disk_cache=True)
        assert engine.ledger is None


# -- span integration ---------------------------------------------------------


def test_system_run_produces_phase_spans(tmp_path):
    tracer = Tracer()
    set_tracer(tracer)
    engine = ExperimentEngine(cache_dir=tmp_path, use_disk_cache=True)
    engine.run(RunRequest(spec=small_spec(), memento=True))
    set_tracer(None)
    (batch,) = tracer.roots
    assert batch.name == "engine.run_many"
    names = [c.name for c in batch.children]
    assert names[0] == "cache.lookup"
    assert "execute" in names
    execute = batch.children[names.index("execute")]
    run_spans = [c for c in execute.children if c.name == "system.run"]
    assert run_spans, "system.run should nest under execute"
    phases = [c.name for c in run_spans[0].children]
    assert phases == ["trace.load", "trace.pack", "replay", "stats.fold"]
    assert "total_cycles" in run_spans[0].attrs
    assert any(c.name == "cache.admit" for c in execute.children)


def test_cached_run_skips_execute_span(tmp_path):
    engine = ExperimentEngine(cache_dir=tmp_path, use_disk_cache=True)
    request = RunRequest(spec=small_spec(), memento=False)
    engine.run(request)
    tracer = Tracer()
    set_tracer(tracer)
    engine.run(request)
    set_tracer(None)
    (batch,) = tracer.roots
    assert [c.name for c in batch.children] == ["cache.lookup"]


# -- repro run --trace --metrics ---------------------------------------------


def test_run_trace_and_metrics_end_to_end(
    tmp_path, capsys, small_cli_workloads
):
    prom = tmp_path / "out.prom"
    assert main([
        "run", "--workload", "html",
        "--cache-dir", str(tmp_path / "cache"),
        "--trace", "--metrics", str(prom),
    ]) == 0
    out = capsys.readouterr().out
    assert "Span tree" in out
    assert "engine.run_many" in out and "replay" in out

    text = prom.read_text()
    assert "# TYPE" in text
    assert 'workload="html"' in text
    assert 'stack="baseline"' in text and 'stack="memento"' in text

    records = [
        json.loads(line)
        for line in (tmp_path / "out.prom.jsonl").read_text().splitlines()
    ]
    kinds = [r["kind"] for r in records]
    assert kinds.count("run") == 3  # baseline, memento, memento_nobypass
    assert "spans" in kinds and "events" in kinds
    stacks = {r["stack"] for r in records if r["kind"] == "run"}
    assert stacks == {"baseline", "memento", "memento_nobypass"}
    (events,) = [r for r in records if r["kind"] == "events"]
    assert events["counts"].get("hot.alloc_hit", 0) > 0

    # The CLI restored the globals on exit.
    from repro.obs.tracing import NULL_TRACER
    from repro.obs.events import get_ring

    assert get_tracer() is NULL_TRACER and get_ring() is None


def test_run_positional_and_flag_workloads_combine(
    tmp_path, capsys, small_cli_workloads
):
    assert main([
        "run", "aes", "--workload", "html",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "aes" in out and "html" in out


# -- repro obs ----------------------------------------------------------------


class TestObsCli:
    def run_once(self, tmp_path, extra=()):
        return main([
            "run", "--workload", "html",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ])

    def test_report_renders_ledger_and_metrics(
        self, tmp_path, capsys, small_cli_workloads
    ):
        prom = tmp_path / "m.prom"
        assert self.run_once(
            tmp_path, ["--trace", "--metrics", str(prom)]
        ) == 0
        capsys.readouterr()
        assert main([
            "obs", "report",
            "--ledger", str(tmp_path / "cache" / "ledger.jsonl"),
            "--metrics", str(tmp_path / "m.prom.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "run ledger" in out
        assert "metric runs" in out
        assert "Span tree" in out
        assert "sampled hardware events" in out

    def test_report_empty_everything(self, tmp_path, capsys):
        assert main([
            "obs", "report", "--ledger", str(tmp_path / "absent.jsonl"),
        ]) == 0
        assert "nothing to report" in capsys.readouterr().out

    def bench_payload(self, tmp_path, name, events_per_sec):
        path = tmp_path / name
        path.write_text(json.dumps({
            "replay": {
                "html/baseline": {"events_per_sec": events_per_sec},
            },
        }))
        return path

    def test_check_passes_within_threshold(self, tmp_path, capsys):
        base = self.bench_payload(tmp_path, "base.json", 100.0)
        cur = self.bench_payload(tmp_path, "cur.json", 95.0)
        assert main([
            "obs", "check", "--bench", str(cur),
            "--baseline", str(base), "--threshold", "10",
            "--ledger", str(tmp_path / "no-ledger.jsonl"),
        ]) == 0
        assert "obs check: ok" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        base = self.bench_payload(tmp_path, "base.json", 100.0)
        cur = self.bench_payload(tmp_path, "cur.json", 50.0)
        assert main([
            "obs", "check", "--bench", str(cur),
            "--baseline", str(base), "--threshold", "10",
            "--ledger", str(tmp_path / "no-ledger.jsonl"),
        ]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "obs check: FAILED" in captured.err

    def test_check_smoke_is_report_only(self, tmp_path, capsys):
        base = self.bench_payload(tmp_path, "base.json", 100.0)
        cur = self.bench_payload(tmp_path, "cur.json", 50.0)
        assert main([
            "obs", "check", "--bench", str(cur),
            "--baseline", str(base), "--smoke",
            "--ledger", str(tmp_path / "no-ledger.jsonl"),
        ]) == 0
        assert "report-only" in capsys.readouterr().out

    def test_check_flags_nondeterministic_ledger(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append({"key": "k", "counter_digest": "d1"})
        ledger.append({"key": "k", "counter_digest": "d2"})
        assert main([
            "obs", "check", "--ledger", str(ledger.path),
        ]) == 1
        assert "1 conflicting" in capsys.readouterr().out

    def test_check_without_inputs_is_usage_error(self, tmp_path, capsys):
        assert main([
            "obs", "check", "--ledger", str(tmp_path / "absent.jsonl"),
        ]) == 2

    def test_diff_bench_payloads(self, tmp_path, capsys):
        old = self.bench_payload(tmp_path, "old.json", 100.0)
        new = self.bench_payload(tmp_path, "new.json", 120.0)
        assert main(["obs", "diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "html/baseline" in out and "1.200x" in out

    def test_diff_metrics_jsonl(self, tmp_path, capsys):
        record = {
            "kind": "run", "workload": "html", "stack": "memento",
            "total_cycles": 100.0, "counters": {"c": 1.0},
        }
        old = tmp_path / "old.jsonl"
        new = tmp_path / "new.jsonl"
        old.write_text(json.dumps(record) + "\n")
        new.write_text(
            json.dumps({**record, "total_cycles": 110.0}) + "\n"
        )
        assert main(["obs", "diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "+10.00%" in out

    def test_diff_mixed_kinds_is_usage_error(self, tmp_path, capsys):
        bench = self.bench_payload(tmp_path, "b.json", 1.0)
        jsonl = tmp_path / "m.jsonl"
        jsonl.write_text('{"kind": "run"}\n')
        assert main(["obs", "diff", str(bench), str(jsonl)]) == 2


# -- repro run --profile / repro obs profile|timeline|trend -------------------


class TestProfileCli:
    def profiled_run(self, tmp_path, capsys, extra=()):
        prom = tmp_path / "p.prom"
        code = main([
            "run", "--workload", "html",
            "--cache-dir", str(tmp_path / "cache"),
            "--profile", "--metrics", str(prom), *extra,
        ])
        return code, prom, capsys.readouterr()

    def test_profile_prints_breakdown_and_exports(
        self, tmp_path, capsys, small_cli_workloads
    ):
        code, prom, captured = self.profiled_run(tmp_path, capsys)
        assert code == 0
        assert "Cycle attribution" in captured.out
        assert "hot.alloc_hit" in captured.out
        assert "top 10 cycle consumers" in captured.out
        records = [
            json.loads(line)
            for line in (tmp_path / "p.prom.jsonl").read_text().splitlines()
        ]
        (profile,) = [r for r in records if r["kind"] == "profile"]
        assert len(profile["runs"]) == 3
        for run in profile["runs"]:
            assert run["unattributed_cycles"] == 0
        # Histograms ride in the Prometheus file too.
        text = prom.read_text()
        assert "# TYPE repro_op_alloc histogram" in text
        assert "repro_op_alloc_bucket" in text

    def test_profile_forces_serial(
        self, tmp_path, capsys, small_cli_workloads
    ):
        code, _, captured = self.profiled_run(
            tmp_path, capsys, ["--jobs", "4"]
        )
        assert code == 0
        assert "ignoring --jobs" in captured.err

    def test_obs_profile_renders_an_export(
        self, tmp_path, capsys, small_cli_workloads
    ):
        self.profiled_run(tmp_path, capsys)
        assert main([
            "obs", "profile", str(tmp_path / "p.prom.jsonl"), "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Cycle attribution" in out
        assert "top 5 cycle consumers" in out
        assert "op.alloc" in out

    def test_obs_profile_without_records_errors(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "run"}\n')
        assert main(["obs", "profile", str(path)]) == 1
        assert "no profile records" in capsys.readouterr().err

    def test_obs_timeline_exports_valid_trace(
        self, tmp_path, capsys, small_cli_workloads
    ):
        prom = tmp_path / "t.prom"
        assert main([
            "run", "--workload", "html",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace", "--metrics", str(prom),
        ]) == 0
        capsys.readouterr()
        out_path = tmp_path / "trace.json"
        assert main([
            "obs", "timeline", str(tmp_path / "t.prom.jsonl"),
            "--out", str(out_path),
        ]) == 0
        assert "trace events" in capsys.readouterr().out
        from repro.obs import validate_trace_events

        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        assert validate_trace_events(events) == len(events)
        assert any(e.get("name") == "system.run" for e in events)

    def test_obs_timeline_without_records_errors(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "run"}\n')
        assert main([
            "obs", "timeline", str(path),
            "--out", str(tmp_path / "trace.json"),
        ]) == 1
        assert (
            "no span, event, or fleet records" in capsys.readouterr().err
        )

    def trend_ledger(self, tmp_path, elapsed_series):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for elapsed in elapsed_series:
            ledger.append({
                "key": "k1", "workload": "html", "stack": "memento",
                "source": "live", "elapsed_s": elapsed,
                "counter_digest": "d0",
            })
        return ledger

    def test_obs_trend_ok(self, tmp_path, capsys):
        ledger = self.trend_ledger(tmp_path, [1.0, 1.0, 1.0])
        assert main(["obs", "trend", "--ledger", str(ledger.path)]) == 0
        assert "obs trend: ok" in capsys.readouterr().out

    def test_obs_trend_fails_on_drift(self, tmp_path, capsys):
        ledger = self.trend_ledger(tmp_path, [1.0, 1.0, 1.0, 1.0, 9.0])
        assert main(["obs", "trend", "--ledger", str(ledger.path)]) == 1
        captured = capsys.readouterr()
        assert "TIME DRIFT" in captured.out
        assert "obs trend: FAILED" in captured.err

    def test_obs_trend_report_only_never_fails(self, tmp_path, capsys):
        ledger = self.trend_ledger(tmp_path, [1.0, 1.0, 1.0, 1.0, 9.0])
        assert main([
            "obs", "trend", "--ledger", str(ledger.path), "--report-only",
        ]) == 0
        assert "report-only" in capsys.readouterr().out

    def test_obs_trend_empty_ledger_is_ok(self, tmp_path, capsys):
        assert main([
            "obs", "trend", "--ledger", str(tmp_path / "absent.jsonl"),
            "--bench-root", str(tmp_path),
        ]) == 0
        assert "no entries" in capsys.readouterr().out

    @staticmethod
    def write_bench(root, date, events_per_sec):
        payload = {
            "date": date,
            "replay": {
                "html/memento": {"events_per_sec": events_per_sec}
            },
        }
        (root / f"BENCH_{date}.json").write_text(json.dumps(payload))

    def test_obs_trend_gates_bench_throughput_drop(self, tmp_path, capsys):
        for day, rate in (("01", 100e3), ("02", 102e3), ("03", 40e3)):
            self.write_bench(tmp_path, f"2026-08-{day}", rate)
        code = main([
            "obs", "trend", "--ledger", str(tmp_path / "absent.jsonl"),
            "--bench-root", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "THROUGHPUT DRIFT" in captured.out

    def test_obs_trend_bench_within_tolerance_ok(self, tmp_path, capsys):
        for day, rate in (("01", 100e3), ("02", 102e3), ("03", 95e3)):
            self.write_bench(tmp_path, f"2026-08-{day}", rate)
        assert main([
            "obs", "trend", "--ledger", str(tmp_path / "absent.jsonl"),
            "--bench-root", str(tmp_path),
        ]) == 0
        assert "Bench throughput" in capsys.readouterr().out

    def test_obs_trend_bench_drift_report_only(self, tmp_path, capsys):
        for day, rate in (("01", 100e3), ("02", 102e3), ("03", 40e3)):
            self.write_bench(tmp_path, f"2026-08-{day}", rate)
        assert main([
            "obs", "trend", "--ledger", str(tmp_path / "absent.jsonl"),
            "--bench-root", str(tmp_path), "--report-only",
        ]) == 0
        assert "report-only" in capsys.readouterr().out

    def test_report_warns_on_unknown_schema_lines(self, tmp_path, capsys):
        ledger = self.trend_ledger(tmp_path, [1.0])
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "future", "schema": 99}\n')
            handle.write("corrupt\n")
        assert main(["obs", "report", "--ledger", str(ledger.path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 2 ledger line(s)" in captured.err
        assert "run ledger" in captured.out


# -- the repro.api facade -----------------------------------------------------


class TestApiFacade:
    def test_every_exported_name_resolves(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_facade_covers_the_documented_surface(self):
        import repro.api as api

        for name in (
            "RunRequest", "ExperimentEngine", "run_workload", "run_all",
            "Tracer", "set_tracer", "get_tracer", "render_span_tree",
            "MementoConfig", "MachineParams", "Stats", "EventRing",
            "RunResult", "WorkloadResult", "get_workload", "all_workloads",
            "CycleProfile", "install_profile", "render_profile",
            "export_timeline", "validate_trace_events", "check_trend",
        ):
            assert name in api.__all__, name

    def test_traced_run_through_the_facade(self, tmp_path):
        from repro import api

        tracer = api.Tracer()
        api.set_tracer(tracer)
        try:
            engine = api.ExperimentEngine(
                cache_dir=tmp_path, use_disk_cache=True
            )
            result = api.run_workload(small_spec(), engine=engine)
        finally:
            api.set_tracer(None)
        assert result.speedup > 1.0
        assert tracer.roots
        rendered = api.render_span_tree(tracer.to_dict())
        assert "engine.run_many" in rendered
