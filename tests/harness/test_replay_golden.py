"""Golden-fixture equivalence for the optimized replay hot path.

The fixtures in ``golden/replay_golden.json`` were captured from the
pre-optimization replay loop. Every hot-path change (interned counters,
closure-bound cache accesses, columnar replay, allocator fast paths)
must keep ``RunResult.to_dict()`` bit-identical to these payloads.

Regenerate (only after an *intentional* behavioral change) with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/harness/test_replay_golden.py
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.harness.system import SimulatedSystem
from repro.workloads.registry import get_workload
from repro.workloads.synth import generate_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "replay_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _replay(name: str, stack: str) -> dict:
    spec = dataclasses.replace(get_workload(name).resolved(), num_allocs=4000)
    trace = generate_trace(spec)
    result = SimulatedSystem(spec, memento=(stack == "memento")).run(trace)
    return result.to_dict()


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_replay_matches_golden_fixture(key):
    name, stack = key.split("/")
    assert _replay(name, stack) == GOLDEN[key]


def test_update_golden_fixtures():
    """Opt-in fixture refresh; a no-op unless REPRO_UPDATE_GOLDEN=1."""
    if os.environ.get("REPRO_UPDATE_GOLDEN") != "1":
        pytest.skip("set REPRO_UPDATE_GOLDEN=1 to rewrite the fixtures")
    payload = {key: _replay(*key.split("/")) for key in sorted(GOLDEN)}
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
