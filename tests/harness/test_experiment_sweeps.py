"""Tests for the experiment runner and the sensitivity sweeps."""

from dataclasses import replace

import pytest

from repro.harness.experiment import (
    geometric_mean,
    run_workload,
)
from repro.harness.sweeps import (
    ablation_study,
    iso_storage_study,
    mallacc_study,
    multiprocess_study,
    populate_study,
    tuning_study,
)
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def html_result():
    spec = replace(get_workload("html"), num_allocs=4_000)
    return run_workload(spec)


def test_speedup_above_one(html_result):
    assert html_result.speedup > 1.0


def test_breakdown_sums_to_one(html_result):
    breakdown = html_result.breakdown()
    assert set(breakdown) == {"obj-alloc", "obj-free", "page-mgmt", "bypass"}
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in breakdown.values())


def test_user_kernel_split_sums_to_one(html_result):
    split = html_result.user_kernel_split()
    assert split["user"] + split["kernel"] == pytest.approx(1.0)


def test_bandwidth_reduction_bounded(html_result):
    assert -1.0 < html_result.bandwidth_reduction < 1.0


def test_memory_ratios_positive(html_result):
    ratios = html_result.memory_usage_ratios()
    assert all(v > 0 for v in ratios.values())


def test_mm_fraction_sane(html_result):
    assert 0.05 < html_result.mm_fraction_of_runtime < 0.8


def test_run_workload_is_memoized():
    spec = replace(get_workload("aes"), num_allocs=1_000)
    first = run_workload(spec)
    second = run_workload(spec)
    assert first.baseline is second.baseline  # same cached object


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geometric_mean([])


# ------------------------------------------------------------------- sweeps


def test_iso_storage_sram_beats_nothing_but_loses_to_memento():
    result = iso_storage_study("html")
    assert result["iso_storage_speedup"] < 1.05
    assert result["memento_speedup"] > result["iso_storage_speedup"] + 0.05


def test_populate_go_blows_up_footprint():
    result = populate_study()
    go = next(v for v in result.values() if v["language"] == "go")
    assert go["footprint_ratio"] > 2.0
    python = next(v for v in result.values() if v["language"] == "python")
    assert python["footprint_ratio"] < go["footprint_ratio"]


def test_multiprocess_flush_overhead_negligible():
    result = multiprocess_study(trials=2)
    assert result["mean_flush_fraction"] < 0.01
    assert result["mean_context_switches"] >= 4


def test_tuning_larger_arenas_small_effect():
    result = tuning_study()
    speedups = [v["speedup"] for v in result.values()]
    assert max(speedups) - min(speedups) < 0.02  # <1% paper
    mmaps = [v["mmap_calls"] for v in result.values()]
    assert mmaps[0] >= mmaps[-1]  # bigger arenas, fewer mmaps


def test_mallacc_half_of_memento():
    result = mallacc_study()
    avg = result["avg"]
    assert 1.0 < avg["mallacc_speedup"] < avg["memento_speedup"]


def test_ablation_full_wins():
    result = ablation_study("aes")
    assert result["full"] >= result["no_bypass"] - 0.01
    assert result["full"] >= result["no_eager_refill"] - 0.001
    assert result["full"] > 1.0
