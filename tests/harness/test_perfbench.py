"""Tests for the replay microbenchmark harness and `repro bench` CLI."""

import json

from repro.cli import main
from repro.harness import perfbench


def test_run_bench_smoke_payload_shape():
    payload = perfbench.run_bench(
        smoke=True, repeats=1, num_allocs=200, workloads=("html",)
    )
    assert payload["schema"] == perfbench.SCHEMA_VERSION
    assert payload["smoke"] is True
    keys = set(payload["replay"])
    assert keys == {"html/baseline", "html/memento"}
    for row in payload["replay"].values():
        assert row["events"] > 0
        assert row["seconds"] > 0
        assert row["events_per_sec"] > 0
        assert row["num_allocs"] == 200
    assert "engine_cache" not in payload  # smoke skips the engine timing


def test_compare_reports_speedups():
    current = {"a/x": {"events_per_sec": 300.0}, "a/y": {"events_per_sec": 1.0}}
    reference = {"a/x": {"events_per_sec": 100.0}}
    comparison = perfbench.compare(current, reference)
    assert comparison == {"a/x": 3.0}  # keys absent from the reference skip


def test_default_output_path_names(tmp_path):
    full = perfbench.default_output_path(tmp_path, smoke=False)
    smoke = perfbench.default_output_path(tmp_path, smoke=True)
    assert full.name.startswith("BENCH_") and full.suffix == ".json"
    assert smoke.name.endswith(".smoke.json")


def test_cli_bench_smoke_writes_json(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main(
        [
            "bench",
            "--smoke",
            "--num-allocs",
            "200",
            "--workloads",
            "html",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert "html/baseline" in payload["replay"]
    assert str(out) in capsys.readouterr().out


def test_bench_profile_overhead_shape():
    row = perfbench.bench_profile_overhead(num_allocs=600, repeats=1)
    assert row["disabled_seconds"] > 0
    assert row["enabled_seconds"] > 0
    assert row["overhead_ratio"] == (
        row["enabled_seconds"] / row["disabled_seconds"]
    )
    # The A/B must leave no profile installed behind.
    from repro.obs.profile import get_profile

    assert get_profile() is None
