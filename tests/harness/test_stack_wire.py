"""Wire round-trips and cache-key compatibility for the ``stack`` field.

The stack registry replaced the ``memento`` boolean, but the wire and
the on-disk result cache both predate it: legacy payloads carrying only
``memento`` must still decode, and baseline/memento requests must hash
to exactly their pre-registry content keys (pinned here by re-deriving
the legacy body shape by hand) so ``.repro-cache/`` stays warm.
"""

import dataclasses as dc

import pytest

from repro import codec
from repro.harness.engine import (
    RunRequest,
    SCHEMA_VERSION,
    cost_model_fingerprint,
    source_fingerprint,
)
from repro.core.config import MementoConfig
from repro.resolve import UsageError
from repro.stacks import stack_names
from repro.workloads.registry import get_workload

ALL_STACKS = list(stack_names())

#: The frozen pre-registry canonical field list: the legacy ``memento``
#: boolean, no ``stack`` key. This is the exact body shape requests
#: hashed to before the stack registry existed.
LEGACY_FIELDS = (
    "spec",
    "memento",
    "config",
    "machine_params",
    "cold_start",
    "mmap_populate",
    "allocator",
    "allocator_kwargs",
    "kernel",
)


def spec():
    return get_workload("html")


def legacy_key(request: RunRequest) -> str:
    """Re-derive the pre-registry content key by hand."""
    normalized = dc.replace(
        request,
        spec=request.spec.resolved(),
        kernel=None,
        config=MementoConfig(),
    )
    body = {"__type__": "RunRequest"}
    for name in LEGACY_FIELDS:
        body[name] = codec.canonical(getattr(normalized, name))
    return codec.content_key(
        body,
        schema=SCHEMA_VERSION,
        fingerprints={
            "source": source_fingerprint(),
            "cost_model": cost_model_fingerprint(),
        },
    )


# ---------------------------------------------------------- construction


def test_both_spellings_build_the_same_request():
    assert RunRequest(spec(), memento=True) == RunRequest(
        spec(), stack="memento"
    )
    assert RunRequest(spec(), memento=False) == RunRequest(
        spec(), stack="baseline"
    )


@pytest.mark.parametrize("name", ALL_STACKS)
def test_stack_field_normalizes(name):
    request = RunRequest(spec(), stack=name)
    assert request.stack == name
    from repro.stacks import get_stack

    assert request.memento is get_stack(name).hardware


def test_unknown_stack_rejected_at_construction():
    with pytest.raises(UsageError, match="unknown stack"):
        RunRequest(spec(), stack="bogus")


def test_allocator_knob_rejected_for_undeclaring_stack():
    with pytest.raises(
        ValueError, match="not supported by the 'memento'"
    ):
        RunRequest(spec(), stack="memento", allocator="jemalloc")


# ------------------------------------------------------------ wire forms


@pytest.mark.parametrize("name", ALL_STACKS)
def test_wire_round_trip(name):
    request = RunRequest(spec(), stack=name, cold_start=True)
    payload = request.to_dict()
    assert payload["stack"] == name  # first-class spelling on the wire
    assert "memento" in payload  # legacy spelling rides along
    decoded = RunRequest.from_dict(payload)
    assert decoded == request
    assert decoded.content_key() == request.content_key()


@pytest.mark.parametrize("memento", [True, False])
def test_legacy_boolean_payload_decodes(memento):
    request = RunRequest(spec(), memento=memento)
    payload = request.to_dict()
    del payload["stack"]  # what a pre-registry writer produced
    decoded = RunRequest.from_dict(payload)
    assert decoded == request
    assert decoded.stack == ("memento" if memento else "baseline")
    assert decoded.content_key() == request.content_key()


def test_inconsistent_payload_rejected():
    payload = RunRequest(spec(), stack="memento").to_dict()
    payload["memento"] = False
    with pytest.raises(ValueError, match="inconsistent"):
        RunRequest.from_dict(payload)


def test_payload_without_any_stack_rejected():
    payload = RunRequest(spec()).to_dict()
    del payload["stack"]
    del payload["memento"]
    with pytest.raises(ValueError, match="needs spec and a stack"):
        RunRequest.from_dict(payload)


def test_unknown_stack_on_the_wire_rejected():
    payload = RunRequest(spec()).to_dict()
    payload["stack"] = "bogus"
    del payload["memento"]
    with pytest.raises(ValueError, match="unknown stack"):
        RunRequest.from_dict(payload)


# ---------------------------------------------------------- content keys


@pytest.mark.parametrize("memento", [True, False])
def test_legacy_stacks_keep_pre_registry_content_keys(memento):
    # The pin: by-hand re-derivation of the pre-registry body shape
    # must equal what content_key() produces today, for both the
    # boolean and the stack-name spelling of the same request.
    request = RunRequest(spec(), memento=memento)
    assert request.content_key() == legacy_key(request)
    named = RunRequest(
        spec(), stack="memento" if memento else "baseline"
    )
    assert named.content_key() == legacy_key(request)


@pytest.mark.parametrize("name", ["snapshot", "reclaim"])
def test_new_stacks_hash_the_stack_field(name):
    # New stacks never had pre-registry keys; their ``stack`` field is
    # in the hash, so they cannot collide with a legacy key...
    request = RunRequest(spec(), stack=name)
    assert request.content_key() != legacy_key(
        RunRequest(spec(), memento=False)
    )
    # ...or with each other.
    keys = {RunRequest(spec(), stack=n).content_key() for n in ALL_STACKS}
    assert len(keys) == len(ALL_STACKS)
