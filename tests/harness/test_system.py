"""Integration tests: full replays on baseline and Memento stacks."""

from dataclasses import replace

import pytest

from repro.core.config import MementoConfig
from repro.harness.system import SimulatedSystem
from repro.workloads.registry import get_workload
from repro.workloads.synth import WorkloadSpec, generate_trace


def small(name="html", **kwargs):
    spec = replace(get_workload(name), num_allocs=2_000)
    return replace(spec, **kwargs) if kwargs else spec


@pytest.fixture(scope="module")
def html_pair():
    base = SimulatedSystem(small(), memento=False).run()
    mem = SimulatedSystem(small(), memento=True).run()
    return base, mem


def test_replay_is_deterministic():
    a = SimulatedSystem(small(), memento=False).run()
    b = SimulatedSystem(small(), memento=False).run()
    assert a.total_cycles == b.total_cycles
    assert a.dram_bytes == b.dram_bytes


def test_memento_is_faster(html_pair):
    base, mem = html_pair
    assert mem.total_cycles < base.total_cycles


def test_app_cycles_identical_across_stacks(html_pair):
    base, mem = html_pair
    assert base.cycles["app"] == mem.cycles["app"]


def test_mm_cycles_shrink(html_pair):
    base, mem = html_pair
    assert mem.mm_cycles < base.mm_cycles


def test_baseline_uses_software_categories(html_pair):
    base, _ = html_pair
    assert base.cycles.get("user_alloc", 0) > 0
    assert base.cycles.get("kernel_page", 0) > 0
    assert "hw_alloc" not in base.cycles


def test_memento_uses_hardware_categories(html_pair):
    _, mem = html_pair
    assert mem.cycles.get("hw_alloc", 0) > 0
    assert mem.cycles.get("hw_page", 0) > 0


def test_alloc_free_counts_match_trace(html_pair):
    base, mem = html_pair
    trace = generate_trace(small().resolved())
    assert base.allocs == trace.alloc_count == mem.allocs
    assert base.frees == trace.free_count == mem.frees


def test_hot_rates_populated_only_for_memento(html_pair):
    base, mem = html_pair
    assert base.hot_alloc_hit_rate is None
    assert 0.9 < mem.hot_alloc_hit_rate <= 1.0
    assert 0 <= mem.hot_free_hit_rate <= 1.0


def test_function_exit_releases_memory():
    system = SimulatedSystem(small(), memento=True)
    system.run()
    assert system.machine.frames.live("user") == 0
    assert system.process.exited


def test_dataproc_does_not_exit():
    spec = replace(get_workload("Redis"), num_allocs=2_000)
    system = SimulatedSystem(spec, memento=False)
    system.run()
    assert not system.process.exited


def test_cold_start_adds_setup_work():
    cold = SimulatedSystem(small(), memento=False, cold_start=True).run()
    warm = SimulatedSystem(small(), memento=False).run()
    assert cold.total_cycles > warm.total_cycles
    assert cold.stats["kernel.fault.faults"] > warm.stats[
        "kernel.fault.faults"
    ]


def test_populate_rejected_on_memento():
    with pytest.raises(ValueError):
        SimulatedSystem(small(), memento=True, mmap_populate=True)


def test_populate_increases_footprint():
    lazy = SimulatedSystem(small("html-go"), memento=False).run()
    eager = SimulatedSystem(
        small("html-go"), memento=False, mmap_populate=True
    ).run()
    assert eager.peak_pages > lazy.peak_pages


def test_warm_heap_suppresses_faults():
    cpp = replace(get_workload("US"), num_allocs=2_000)
    warm = SimulatedSystem(cpp, memento=False).run()
    cold = SimulatedSystem(
        replace(cpp, warm_heap=False), memento=False
    ).run()
    assert warm.stats.get("kernel.fault.faults", 0) < cold.stats[
        "kernel.fault.faults"
    ]


def test_bypass_disabled_increases_dram_reads():
    on = SimulatedSystem(small(), memento=True).run()
    off = SimulatedSystem(
        small(), memento=True, memento_config=MementoConfig(
            bypass_enabled=False
        )
    ).run()
    assert off.stats["dram.read_bytes"] >= on.stats["dram.read_bytes"]


def test_shared_machine_multi_process():
    from repro.core.page_allocator import HardwarePageAllocator
    from repro.kernel.kernel import Kernel
    from repro.sim.machine import Machine

    machine = Machine()
    kernel = Kernel(machine)
    config = MementoConfig()
    pa = HardwarePageAllocator(kernel, config)
    a = SimulatedSystem(
        small("aes"), memento=True, memento_config=config,
        machine=machine, kernel=kernel, page_allocator=pa,
    )
    b = SimulatedSystem(
        small("jl"), memento=True, memento_config=config,
        machine=machine, kernel=kernel, page_allocator=pa,
    )
    a.run()
    b.run()
    assert a.process.pid != b.process.pid
    assert machine.stats["kernel.processes_exited"] == 2


def test_memory_aggregates_positive(html_pair):
    base, mem = html_pair
    assert base.user_pages_aggregate > 0
    assert base.kernel_pages_aggregate > 0
    assert mem.user_pages_aggregate > 0
    assert mem.kernel_pages_aggregate > 0
