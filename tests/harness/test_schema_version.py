"""Schema versioning: explicit fields, tolerant readers, loud rejection.

Every serialized artifact (RunRequest/RunResult payloads, cache
envelopes, ledger lines) carries an explicit ``schema_version``.
Readers upgrade version-0 payloads (written before the field existed)
for free and reject anything newer than they understand.
"""

import json
from dataclasses import replace

import pytest

from repro.harness.engine import (
    ExperimentEngine,
    REQUEST_SCHEMA_VERSION,
    RunRequest,
    SCHEMA_VERSION,
)
from repro.harness.system import RESULT_SCHEMA_VERSION, RunResult
from repro.obs.ledger import RunLedger, manifest
from repro.workloads.registry import get_workload


def small(num_allocs: int = 1_200):
    return replace(get_workload("aes"), num_allocs=num_allocs)


@pytest.fixture(scope="module")
def result() -> RunResult:
    return ExperimentEngine(use_disk_cache=False).run(
        RunRequest(small(), memento=True)
    )


class TestRunResultVersioning:
    def test_to_dict_stamps_version(self, result):
        assert result.to_dict()["schema_version"] == RESULT_SCHEMA_VERSION

    def test_round_trip(self, result):
        assert RunResult.from_dict(result.to_dict()) == result

    def test_version_zero_payload_upgrades(self, result):
        payload = result.to_dict()
        del payload["schema_version"]
        assert RunResult.from_dict(payload) == result

    def test_newer_version_rejected(self, result):
        payload = result.to_dict()
        payload["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            RunResult.from_dict(payload)


class TestRunRequestVersioning:
    def test_to_dict_stamps_version(self):
        request = RunRequest(small(), memento=True)
        assert request.to_dict()["schema_version"] == (
            REQUEST_SCHEMA_VERSION
        )

    def test_version_zero_payload_upgrades(self):
        request = RunRequest(small(), memento=True)
        payload = request.to_dict()
        del payload["schema_version"]
        assert RunRequest.from_dict(payload) == request

    def test_newer_version_rejected(self):
        payload = RunRequest(small(), memento=True).to_dict()
        payload["schema_version"] = REQUEST_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            RunRequest.from_dict(payload)


class TestCacheEnvelopeVersioning:
    def test_cache_payload_carries_both_spellings(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        request = RunRequest(small(), memento=True)
        engine.run(request)
        key = request.content_key(engine.cost_model)
        payload = engine.disk.get(key)
        assert payload["schema_version"] == SCHEMA_VERSION
        # The legacy spelling stays so version-0 readers skip (not
        # misread) entries written by this version.
        assert payload["schema"] == SCHEMA_VERSION

    def test_legacy_envelope_still_read(self, tmp_path):
        """A version-0 entry (``schema`` only) is a valid disk hit."""
        engine = ExperimentEngine(cache_dir=tmp_path)
        request = RunRequest(small(), memento=True)
        engine.run(request)
        key = request.content_key(engine.cost_model)
        payload = engine.disk.get(key)
        del payload["schema_version"]
        engine.disk.put(key, payload)

        warm = ExperimentEngine(cache_dir=tmp_path)
        warm.run(request)
        assert warm.stats.snapshot().get("engine.disk.hits", 0) == 1

    def test_foreign_envelope_evicted_and_rerun(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path)
        request = RunRequest(small(), memento=True)
        first = engine.run(request)
        key = request.content_key(engine.cost_model)
        engine.disk.put(key, {"schema_version": 999, "result": {}})

        warm = ExperimentEngine(cache_dir=tmp_path)
        rerun = warm.run(request)
        assert rerun == first
        assert warm.stats.snapshot().get("engine.disk.hits", 0) == 0
        # The stale entry was replaced by the re-simulated result.
        assert engine.disk.get(key)["schema_version"] == SCHEMA_VERSION


class TestLedgerVersioning:
    def test_manifest_carries_both_spellings(self):
        entry = manifest("k", "aes", "memento", "live", 0.1, {})
        assert entry["schema_version"] == 1
        assert entry["schema"] == 1

    def test_reader_tolerates_history_and_rejects_future(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        lines = [
            {"key": "k1", "schema_version": 1, "schema": 1},  # current
            {"key": "k2", "schema": 1},                       # version-0
            {"key": "k3"},                                    # pre-field
            {"key": "k4", "schema_version": 99},              # future
            {"no_key": True},                                 # pre-manifest
        ]
        with ledger.path.open("w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
            handle.write("{corrupt\n")
        entries, skipped = ledger.read_classified()
        assert [entry["key"] for entry in entries] == ["k1", "k2", "k3"]
        assert skipped == 3
