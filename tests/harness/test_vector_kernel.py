"""Vectorized replay kernel: selection, segmentation, and the lockstep
equivalence suite.

The contract under test is absolute: the vectorized kernel is an
*encoding* of the scalar replay, not a model of it, so
``RunResult.to_dict()`` — counters, digests, cycle totals, profile
attribution — must be bit-identical between kernels on every workload
and both stacks. Anything less is a correctness bug, not a tolerance.
"""

import dataclasses
import json
import random

import pytest

from repro.core.config import MementoConfig
from repro.harness import vector_kernel
from repro.harness.engine import RunRequest
from repro.harness.system import SimulatedSystem
from repro.obs.profile import CycleProfile, install_profile
from repro.workloads.registry import all_workloads, get_workload
from repro.workloads.synth import generate_trace
from repro.workloads.trace import (
    Alloc,
    Compute,
    Free,
    KIND_ALLOC,
    KIND_FREE,
    KIND_TOUCH,
    OP_ALLOC,
    OP_FREE,
    OP_TOUCH_MULTI,
    OP_TOUCH_SINGLE,
    SegmentIndex,
    Touch,
    Trace,
    _segment_python,
)

HAVE_NUMPY = vector_kernel.numpy_available()

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized kernel needs numpy ([fast] extra)"
)

ALL_SPECS = [spec.resolved() for spec in all_workloads()]
IDS = [spec.name for spec in ALL_SPECS]


def run_result(spec, memento, kernel, trace=None, num_allocs=400):
    spec = dataclasses.replace(spec, num_allocs=num_allocs)
    if trace is None:
        trace = generate_trace(spec)
    system = SimulatedSystem(spec, memento=memento, replay_kernel=kernel)
    return system.run(trace).to_dict()


# -- kernel selection --------------------------------------------------------


def test_resolve_choice_rejects_unknown():
    with pytest.raises(ValueError, match="unknown replay kernel"):
        vector_kernel.resolve_choice("simd")


def test_resolve_choice_defaults_to_env(monkeypatch):
    monkeypatch.setenv(vector_kernel.ENV_VAR, "scalar")
    assert vector_kernel.resolve_choice(None) == "scalar"
    monkeypatch.delenv(vector_kernel.ENV_VAR)
    assert vector_kernel.resolve_choice(None) == "auto"


def test_explicit_choice_beats_env(monkeypatch):
    monkeypatch.setenv(vector_kernel.ENV_VAR, "scalar")
    assert vector_kernel.resolve_choice("auto") == "auto"


def test_auto_without_numpy_resolves_scalar(monkeypatch):
    monkeypatch.setattr(vector_kernel, "_HAVE_NUMPY", False)
    assert vector_kernel.resolve_kernel("auto") == "scalar"
    assert vector_kernel.resolve_kernel("scalar") == "scalar"


def test_explicit_vectorized_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(vector_kernel, "_HAVE_NUMPY", False)
    with pytest.raises(ValueError, match=r"\[fast\]"):
        vector_kernel.resolve_kernel("vectorized")


@needs_numpy
def test_auto_with_numpy_resolves_vectorized():
    assert vector_kernel.resolve_kernel("auto") == "vectorized"


def test_system_honors_env(monkeypatch):
    monkeypatch.setenv(vector_kernel.ENV_VAR, "scalar")
    spec = dataclasses.replace(
        get_workload("html").resolved(), num_allocs=50
    )
    system = SimulatedSystem(spec, memento=True)
    assert system.replay_kernel == "scalar"


# -- engine integration ------------------------------------------------------


def test_content_key_excludes_kernel():
    spec = get_workload("html").resolved()
    keys = {
        RunRequest(spec=spec, memento=True, kernel=kernel).content_key()
        for kernel in (None, "scalar", "vectorized", "auto")
    }
    assert len(keys) == 1


def test_request_rejects_unknown_kernel():
    spec = get_workload("html").resolved()
    with pytest.raises(ValueError, match="unknown replay kernel"):
        RunRequest(spec=spec, memento=True, kernel="simd")


def test_request_round_trips_kernel():
    spec = get_workload("html").resolved()
    request = RunRequest(spec=spec, memento=False, kernel="scalar")
    clone = RunRequest.from_dict(request.to_dict())
    assert clone == request
    assert clone.kernel == "scalar"
    # Payloads that predate the field deserialize as unspecified.
    legacy = request.to_dict()
    del legacy["kernel"]
    assert RunRequest.from_dict(legacy).kernel is None


def test_build_system_threads_kernel():
    spec = get_workload("html").resolved()
    request = RunRequest(spec=spec, memento=True, kernel="scalar")
    assert request.build_system().replay_kernel == "scalar"


# -- segmentation ------------------------------------------------------------


def make_trace(events, category="function"):
    return Trace(
        name="synthetic",
        category=category,
        language="python",
        events=list(events),
    )


def test_segments_extract_compute_and_split_touches():
    trace = make_trace([
        Alloc(obj=0, size=4096),
        Compute(cycles=10, dram_bytes=96),
        Touch(obj=0, lines=1, line_offset=3, write=True),
        Compute(cycles=5, dram_bytes=0),
        Touch(obj=0, lines=4, line_offset=2, write=False),
        Free(obj=0),
    ])
    segments = trace.columnar().segments()
    assert segments.compute_cycles == 15
    assert segments.compute_bytes == 96
    assert segments.events == 6
    assert segments.ops == [
        OP_ALLOC, OP_TOUCH_SINGLE, OP_TOUCH_MULTI, OP_FREE
    ]
    # Single-line byte offset premultiplied; multi-line keeps line units.
    assert segments.f2 == [0, 3 * 64, 2, 0]
    assert segments.writes == [False, True, False, False]
    assert all(isinstance(w, bool) for w in segments.writes)
    assert segments.runs() == [
        (OP_ALLOC, 1), (OP_TOUCH_SINGLE, 1),
        (OP_TOUCH_MULTI, 1), (OP_FREE, 1),
    ]


def test_segments_memoized_and_empty_trace():
    trace = make_trace([])
    columnar = trace.columnar()
    segments = columnar.segments()
    assert segments is columnar.segments()
    assert len(segments) == 0 and segments.runs() == []
    assert segments.compute_cycles == 0


@needs_numpy
@pytest.mark.parametrize("name", ["html", "Redis", "deploy"])
def test_numpy_and_python_builders_agree(name):
    spec = dataclasses.replace(
        get_workload(name).resolved(), num_allocs=300
    )
    columnar = generate_trace(spec).columnar()
    via_numpy = SegmentIndex.build(columnar)
    fields = _segment_python(columnar)
    assert via_numpy.ops == fields[0]
    assert via_numpy.f0 == fields[1]
    assert via_numpy.f1 == fields[2]
    assert via_numpy.f2 == fields[3]
    assert via_numpy.writes == fields[4]
    assert via_numpy.compute_cycles == fields[5]
    assert via_numpy.compute_bytes == fields[6]
    assert all(isinstance(v, int) for v in via_numpy.ops)
    assert all(isinstance(w, bool) for w in via_numpy.writes)


# -- lockstep equivalence ----------------------------------------------------


@needs_numpy
@pytest.mark.parametrize(
    "memento", [True, False], ids=["memento", "baseline"]
)
@pytest.mark.parametrize("spec", ALL_SPECS, ids=IDS)
def test_kernels_bit_identical_every_workload(spec, memento):
    sized = dataclasses.replace(spec, num_allocs=400)
    trace = generate_trace(sized)
    scalar = run_result(spec, memento, "scalar", trace)
    vectorized = run_result(spec, memento, "vectorized", trace)
    assert json.dumps(scalar, sort_keys=True) == json.dumps(
        vectorized, sort_keys=True
    )


@needs_numpy
@pytest.mark.parametrize("seed", [1, 7, 1234])
def test_kernels_bit_identical_randomized_short_traces(seed):
    rng = random.Random(seed)
    spec = get_workload(rng.choice(["html", "Redis", "deploy"])).resolved()
    spec = dataclasses.replace(
        spec,
        num_allocs=rng.randrange(20, 200),
        seed=rng.randrange(1 << 30),
    )
    trace = generate_trace(spec)
    for memento in (True, False):
        scalar = run_result(
            spec, memento, "scalar", trace, num_allocs=spec.num_allocs
        )
        vectorized = run_result(
            spec, memento, "vectorized", trace, num_allocs=spec.num_allocs
        )
        assert scalar == vectorized


@needs_numpy
def test_kernels_identical_profile_attribution():
    spec = dataclasses.replace(
        get_workload("html").resolved(), num_allocs=400
    )
    trace = generate_trace(spec)
    payloads = {}
    for kernel in ("scalar", "vectorized"):
        profile = CycleProfile()
        previous = install_profile(profile)
        try:
            SimulatedSystem(
                spec, memento=True, replay_kernel=kernel
            ).run(trace)
        finally:
            install_profile(previous)
        payloads[kernel] = profile.to_dict()
    assert payloads["scalar"] == payloads["vectorized"]


@needs_numpy
def test_kernels_identical_nondefault_config():
    spec = dataclasses.replace(
        get_workload("Redis").resolved(), num_allocs=300
    )
    trace = generate_trace(spec)
    config = MementoConfig(bypass_enabled=False)
    results = {}
    for kernel in ("scalar", "vectorized"):
        system = SimulatedSystem(
            spec,
            memento=True,
            memento_config=config,
            replay_kernel=kernel,
        )
        results[kernel] = system.run(trace).to_dict()
    assert results["scalar"] == results["vectorized"]


# -- @audit tier: the full sweep under the vectorized kernel -----------------


@needs_numpy
@pytest.mark.audit
@pytest.mark.parametrize(
    "memento", [True, False], ids=["memento", "baseline"]
)
@pytest.mark.parametrize("spec", ALL_SPECS, ids=IDS)
def test_audit_sweep_vectorized_bit_identical(spec, memento):
    sized = dataclasses.replace(spec, num_allocs=800)
    trace = generate_trace(sized)
    scalar = run_result(
        spec, memento, "scalar", trace, num_allocs=800
    )
    vectorized = run_result(
        spec, memento, "vectorized", trace, num_allocs=800
    )
    assert json.dumps(scalar, sort_keys=True) == json.dumps(
        vectorized, sort_keys=True
    )
