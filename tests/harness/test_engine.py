"""Tests for the parallel experiment engine and its persistent cache."""

import json
import time
from dataclasses import replace

import pytest

from repro.core.config import MementoConfig
from repro.harness.engine import (
    DiskCache,
    ExperimentEngine,
    RunRequest,
    cost_model_fingerprint,
)
from repro.harness.experiment import run_workload, workload_requests
from repro.harness.system import RunResult
from repro.sim.cycles import CostModel
from repro.sim.params import MachineParams
from repro.workloads.registry import get_workload


def small(name: str = "aes", num_allocs: int = 1_500):
    return replace(get_workload(name), num_allocs=num_allocs)


def make_engine(tmp_path, **kwargs) -> ExperimentEngine:
    return ExperimentEngine(cache_dir=tmp_path / "cache", **kwargs)


# ----------------------------------------------------------- content keys


def test_content_key_stable_and_resolution_invariant():
    spec = small()
    request = RunRequest(spec, memento=True)
    assert request.content_key() == request.content_key()
    resolved = RunRequest(spec.resolved(), memento=True)
    assert resolved.content_key() == request.content_key()


def test_content_key_changes_with_config_and_machine():
    spec = small()
    base = RunRequest(spec, memento=True)
    other_config = RunRequest(
        spec, memento=True, config=MementoConfig(eager_refill=False)
    )
    other_machine = RunRequest(
        spec,
        memento=True,
        machine_params=MachineParams().with_iso_storage_l1d(),
    )
    keys = {
        base.content_key(),
        other_config.content_key(),
        other_machine.content_key(),
    }
    assert len(keys) == 3


def test_content_key_changes_with_cost_model():
    request = RunRequest(small(), memento=False)
    recalibrated = CostModel(page_fault=9_999)
    assert cost_model_fingerprint() != cost_model_fingerprint(recalibrated)
    assert request.content_key() != request.content_key(recalibrated)


def test_unknown_allocator_rejected():
    with pytest.raises(ValueError):
        RunRequest(small(), memento=False, allocator="bogus")
    with pytest.raises(ValueError):
        RunRequest(small(), memento=True, allocator="pymalloc")


# ------------------------------------------------------- RunResult round-trip


def test_runresult_round_trip(tmp_path):
    engine = make_engine(tmp_path)
    result = engine.run(RunRequest(small(), memento=True))
    clone = RunResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert clone.to_dict() == result.to_dict()
    assert clone.total_cycles == result.total_cycles
    assert clone.mm_cycles == result.mm_cycles


def test_runresult_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError):
        RunResult.from_dict({"name": "x", "memento": True, "bogus": 1})


# ------------------------------------------------------------- determinism


def test_parallel_results_identical_to_serial(tmp_path):
    specs = [small("aes"), small("html"), small("bfs-go"), small("US")]
    requests = [
        RunRequest(spec, memento=memento)
        for spec in specs
        for memento in (False, True)
    ]
    serial = make_engine(tmp_path / "serial").run_many(requests, jobs=1)
    parallel = make_engine(tmp_path / "parallel").run_many(
        requests, jobs=4
    )
    for left, right in zip(serial, parallel):
        assert left.to_dict() == right.to_dict()


# ------------------------------------------------------------------ caching


def test_memo_returns_same_object(tmp_path):
    engine = make_engine(tmp_path)
    spec = small()
    first = run_workload(spec, engine=engine)
    second = run_workload(spec, engine=engine)
    assert first.baseline is second.baseline


def test_disk_cache_round_trip_across_engines(tmp_path):
    request = RunRequest(small(), memento=True)
    first = make_engine(tmp_path).run(request)
    warm_engine = make_engine(tmp_path)
    second = warm_engine.run(request)
    assert warm_engine.stats["engine.disk.hits"] == 1
    assert warm_engine.stats["engine.misses"] == 0
    assert second.to_dict() == first.to_dict()


def test_config_change_misses_cache(tmp_path):
    spec = small()
    engine = make_engine(tmp_path)
    engine.run(RunRequest(spec, memento=True))
    assert engine.stats["engine.misses"] == 1
    engine.run(
        RunRequest(spec, memento=True, config=MementoConfig(
            objects_per_arena=64
        ))
    )
    assert engine.stats["engine.misses"] == 2
    engine.run(
        RunRequest(spec, memento=True,
                   machine_params=MachineParams().with_iso_storage_l1d())
    )
    assert engine.stats["engine.misses"] == 3
    # Same requests again: everything answered without a simulation.
    engine.run(RunRequest(spec, memento=True))
    assert engine.stats["engine.misses"] == 3


def test_corrupted_cache_entry_falls_back_to_rerun(tmp_path):
    request = RunRequest(small(), memento=False)
    engine = make_engine(tmp_path)
    reference = engine.run(request)
    path = engine.disk.path(request.content_key())
    assert path.is_file()

    for garbage in ("{not json", '{"schema": 999}', '{"schema": 1, "result": {"bogus": 1}}'):
        path.write_text(garbage)
        fresh = make_engine(tmp_path)
        recovered = fresh.run(request)
        assert recovered.to_dict() == reference.to_dict()
        assert fresh.stats["engine.misses"] == 1
        # The re-run repaired the entry on disk.
        assert json.loads(path.read_text())["result"] == reference.to_dict()


def test_warm_cache_at_least_5x_faster(tmp_path):
    requests = []
    for name in ("aes", "html"):
        requests += workload_requests(small(name, num_allocs=4_000))

    cold_engine = make_engine(tmp_path)
    started = time.perf_counter()
    cold = cold_engine.run_many(requests)
    cold_seconds = time.perf_counter() - started
    assert cold_engine.stats["engine.misses"] == len(requests)

    warm_engine = make_engine(tmp_path)  # fresh memo, same disk cache
    started = time.perf_counter()
    warm = warm_engine.run_many(requests)
    warm_seconds = time.perf_counter() - started
    assert warm_engine.stats["engine.misses"] == 0
    for left, right in zip(cold, warm):
        assert left.to_dict() == right.to_dict()
    assert warm_seconds * 5 <= cold_seconds, (cold_seconds, warm_seconds)


def test_disk_cache_info_and_clear(tmp_path):
    engine = make_engine(tmp_path)
    engine.run(RunRequest(small(), memento=False))
    cache = DiskCache(engine.disk.root)
    info = cache.info()
    assert info["entries"] == 1 and info["bytes"] > 0
    assert cache.clear() == 1
    assert cache.info()["entries"] == 0


def test_cache_can_be_disabled(tmp_path):
    engine = make_engine(tmp_path, use_disk_cache=False)
    engine.run(RunRequest(small(), memento=False))
    assert engine.disk is None
    assert not (tmp_path / "cache").exists()


# ------------------------------------------------------------ API surface


def test_positional_config_arguments_removed(tmp_path):
    """The PR 1 deprecation completed: positional flags raise a
    TypeError that names the keyword-only signature."""
    from repro.harness.experiment import run_all

    engine = make_engine(tmp_path)
    spec = small(num_allocs=1_000)
    with pytest.raises(TypeError, match=r"run_workload\(.*cold_start"):
        run_workload(spec, True, engine=engine)
    with pytest.raises(TypeError, match=r"run_all\(.*cold_start"):
        run_all([spec], True, engine=engine)
    modern = run_workload(spec, cold_start=True, engine=engine)
    assert modern.baseline.total_cycles > 0


def test_keyword_config_changes_results(tmp_path):
    engine = make_engine(tmp_path)
    spec = small()
    default = run_workload(spec, engine=engine)
    tiny_arenas = run_workload(
        spec, config=MementoConfig(objects_per_arena=16), engine=engine
    )
    # The non-default config went through the same cached path but
    # produced its own entry (different arena geometry, different runs).
    assert default.memento.total_cycles != tiny_arenas.memento.total_cycles
    assert default.baseline.to_dict() == tiny_arenas.baseline.to_dict()


def test_progress_callback_sees_every_run(tmp_path):
    events = []
    engine = ExperimentEngine(
        cache_dir=tmp_path / "cache",
        progress=lambda *event: events.append(event),
    )
    spec = small(num_allocs=1_000)
    run_workload(spec, engine=engine)
    assert len(events) == 3
    assert all(event[3] == "live" for event in events)
    run_workload(spec, engine=engine)
    assert len(events) == 6
    assert all(event[3] == "memo" for event in events[3:])


def test_cost_model_fingerprint_is_memoized_per_object():
    model = CostModel()
    digest = cost_model_fingerprint(model)
    assert cost_model_fingerprint(model) == digest
    assert len(digest) == 16


def test_cost_model_fingerprint_tracks_content():
    base = CostModel()
    tweaked = replace(base, page_fault=base.page_fault + 1)
    assert cost_model_fingerprint(tweaked) != cost_model_fingerprint(base)
    # A distinct but equal-content instance digests identically, so the
    # identity-keyed memo never changes what the cache keys contain.
    clone = CostModel()
    assert cost_model_fingerprint(clone) == cost_model_fingerprint(base)


# ----------------------------------------------------------- jobs validation


class TestResolveJobs:
    def test_valid_counts_pass_through(self):
        from repro.harness.engine import resolve_jobs

        assert resolve_jobs(1) == 1
        assert resolve_jobs("4") == 4

    def test_none_means_unspecified(self, monkeypatch):
        # The shared resolver (PR 8) treats None as "unspecified":
        # $REPRO_JOBS wins, then the default of 1.
        from repro.harness.engine import resolve_jobs

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    @pytest.mark.parametrize("bad", [0, -1, "-3", "two", 1.5])
    def test_invalid_counts_raise_value_error(self, bad):
        from repro.harness.engine import resolve_jobs

        with pytest.raises(ValueError, match="positive integer"):
            resolve_jobs(bad)

    def test_engine_rejects_bad_jobs_at_construction(self, tmp_path):
        with pytest.raises(ValueError, match="positive integer"):
            make_engine(tmp_path, jobs=0)

    def test_run_many_rejects_bad_jobs_override(self, tmp_path):
        engine = make_engine(tmp_path, use_disk_cache=False)
        with pytest.raises(ValueError, match="positive integer"):
            engine.run_many(
                [RunRequest(small(), memento=False)], jobs=-2
            )

    def test_cli_reports_bad_jobs_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "run", "--workload", "aes", "--jobs", "0",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        # Bad runtime options are usage errors (PR 8): same one-line
        # ``repro: error:`` report, exit code 2.
        assert code == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "positive integer" in err
        assert "Traceback" not in err
