"""Instrumentation rebinding and replay-path parity regressions.

The replay hot paths are closure factories that bind observability and
audit hooks at construction time. Two properties must hold:

* after installing and uninstalling every hook, a fresh system replays
  bit-identically to one that was never instrumented (no residue);
* the packed columnar path and the event path leave identical simulator
  state — including cache metadata invariants like boolean dirty bits
  (audit rule: cache-writeback-ledger).
"""

import dataclasses

import pytest

from repro.audit import AuditContext, Auditor, install_audit
from repro.audit.invariants import CacheWritebackLedger
from repro.harness.system import SimulatedSystem
from repro.obs.events import EventRing, install_ring
from repro.obs.profile import CycleProfile, install_profile
from repro.obs.tracing import Tracer, set_tracer
from repro.workloads.registry import get_workload
from repro.workloads.synth import generate_trace


def small_spec(num_allocs=250):
    return dataclasses.replace(
        get_workload("html").resolved(), num_allocs=num_allocs
    )


def run_once(spec, memento):
    return SimulatedSystem(spec, memento).run().to_dict()


@pytest.mark.parametrize("memento", [True, False], ids=["memento", "baseline"])
def test_rebinding_after_uninstall_is_bit_identical(memento):
    spec = small_spec()
    before = run_once(spec, memento)
    previous_tracer = set_tracer(Tracer())
    previous_ring = install_ring(EventRing())
    previous_profile = install_profile(CycleProfile())
    previous_audit = install_audit(Auditor(epoch="event"))
    try:
        instrumented = run_once(spec, memento)
    finally:
        set_tracer(previous_tracer)
        install_ring(previous_ring)
        install_profile(previous_profile)
        install_audit(previous_audit)
    after = run_once(spec, memento)
    assert after == before
    # The instrumented run simulates the same numbers too — hooks
    # observe, never perturb.
    instrumented.pop("audit", None)
    assert instrumented == before


@pytest.mark.parametrize("memento", [True, False], ids=["memento", "baseline"])
def test_columnar_replay_keeps_boolean_dirty_bits(memento):
    """Audit rule: cache-writeback-ledger.

    The packed write column is an int64 array; pre-fix the columnar path
    installed those ints as cache dirty bits where the event path
    installs booleans, so the two paths left observably different
    metadata.
    """
    spec = small_spec()
    columnar = generate_trace(spec).columnar()
    system = SimulatedSystem(spec, memento)
    system._replay_columnar(columnar)
    assert CacheWritebackLedger().check(AuditContext.from_system(system)) == []
    caches = system.core.caches
    for cache in (caches.l1d, caches.l2, caches.llc):
        for cache_set in cache._sets:
            for dirty in cache_set.values():
                assert isinstance(dirty, bool)
