"""The shared wire codec both request hierarchies are built on."""

from dataclasses import dataclass

import pytest

from repro import codec


@dataclass(frozen=True)
class Point:
    x: int = 1
    y: int = 2


@dataclass(frozen=True)
class Vector:
    x: int = 1
    y: int = 2


class TestCanonical:
    def test_dataclasses_are_type_tagged(self):
        # Equal fields, different types: must not collide.
        assert codec.canonical(Point()) != codec.canonical(Vector())
        assert codec.digest(Point()) != codec.digest(Vector())

    def test_dict_keys_sorted(self):
        assert codec.canonical({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_tuples_normalize_to_lists(self):
        assert codec.canonical((1, 2)) == [1, 2]

    def test_unhashable_types_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            codec.canonical(object())


class TestContentKey:
    def test_key_is_stable(self):
        key = codec.content_key(
            Point(), schema=1, fingerprints={"source": "abc"}
        )
        assert key == codec.content_key(
            Point(), schema=1, fingerprints={"source": "abc"}
        )

    def test_schema_and_fingerprints_fold_in(self):
        base = codec.content_key(
            Point(), schema=1, fingerprints={"source": "abc"}
        )
        assert base != codec.content_key(
            Point(), schema=2, fingerprints={"source": "abc"}
        )
        assert base != codec.content_key(
            Point(), schema=1, fingerprints={"source": "xyz"}
        )


class TestVersionedCodec:
    CODEC = codec.VersionedCodec("Point", 3)

    def test_stamp_then_open_round_trips(self):
        wire = self.CODEC.stamp({"x": 1})
        assert wire["schema_version"] == 3
        assert self.CODEC.open(wire) == {"x": 1}

    def test_version_0_payload_tolerated(self):
        assert self.CODEC.open({"x": 1}) == {"x": 1}

    def test_older_versions_tolerated(self):
        assert self.CODEC.open({"schema_version": 2, "x": 1}) == {"x": 1}

    def test_newer_version_rejected_with_label(self):
        with pytest.raises(ValueError, match="Point schema_version 4"):
            self.CODEC.open({"schema_version": 4})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            self.CODEC.open([1, 2])

    def test_open_into_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown Point"):
            self.CODEC.open_into(Point, {"x": 1, "z": 3})

    def test_open_into_accepts_known_fields(self):
        assert self.CODEC.open_into(Point, {"x": 5}) == {"x": 5}


class TestSharedDerivation:
    def test_run_request_key_still_matches_codec_derivation(self):
        # The refactor moved RunRequest's key derivation into the codec;
        # re-deriving it by hand must agree (cache compatibility).
        import dataclasses as dc

        from repro.core.config import MementoConfig
        from repro.harness.engine import (
            RunRequest,
            SCHEMA_VERSION,
            cost_model_fingerprint,
            source_fingerprint,
        )
        from repro.workloads.registry import get_workload

        request = RunRequest(get_workload("html"), memento=False)
        normalized = dc.replace(
            request,
            spec=request.spec.resolved(),
            kernel=None,
            config=MementoConfig(),
        )
        # The hashed body is the pre-stack-registry field list: the
        # legacy ``memento`` boolean, no ``stack`` key. This is what
        # keeps .repro-cache/ content keys stable across the registry's
        # introduction (see RunRequest.content_key).
        body = {"__type__": "RunRequest"}
        for name in (
            "spec",
            "memento",
            "config",
            "machine_params",
            "cold_start",
            "mmap_populate",
            "allocator",
            "allocator_kwargs",
            "kernel",
        ):
            body[name] = codec.canonical(getattr(normalized, name))
        by_hand = codec.content_key(
            body,
            schema=SCHEMA_VERSION,
            fingerprints={
                "source": source_fingerprint(),
                "cost_model": cost_model_fingerprint(),
            },
        )
        assert request.content_key() == by_hand
