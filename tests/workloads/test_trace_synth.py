"""Tests for trace events, validation, and the synthetic generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.profiles import LifetimeProfile
from repro.workloads.synth import WorkloadSpec, generate_trace
from repro.workloads.trace import Alloc, Compute, Free, Touch, Trace


def small_spec(**kwargs):
    defaults = dict(
        name="t", language="python", seed=7, num_allocs=2_000
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


# ---------------------------------------------------------------- trace


def test_trace_validate_accepts_wellformed():
    trace = Trace("x", "python", "function",
                  [Alloc(0, 16), Touch(0), Free(0)])
    trace.validate()


def test_validate_rejects_double_alloc():
    trace = Trace("x", "python", "function", [Alloc(0, 16), Alloc(0, 16)])
    with pytest.raises(ValueError):
        trace.validate()


def test_validate_rejects_free_of_unknown():
    trace = Trace("x", "python", "function", [Free(9)])
    with pytest.raises(ValueError):
        trace.validate()


def test_validate_rejects_touch_after_free():
    trace = Trace("x", "python", "function",
                  [Alloc(0, 16), Free(0), Touch(0)])
    with pytest.raises(ValueError):
        trace.validate()


def test_validate_rejects_nonpositive_size():
    trace = Trace("x", "python", "function", [Alloc(0, 0)])
    with pytest.raises(ValueError):
        trace.validate()


def test_trace_summary_properties():
    trace = Trace("x", "python", "function",
                  [Alloc(0, 16), Alloc(1, 32), Free(0), Compute(100)])
    assert trace.alloc_count == 2
    assert trace.free_count == 1
    assert trace.total_alloc_bytes == 48
    assert len(list(trace.allocs())) == 2


# ---------------------------------------------------------------- synth


def test_generation_is_deterministic():
    a = generate_trace(small_spec())
    b = generate_trace(small_spec())
    assert a.events == b.events


def test_different_seeds_differ():
    a = generate_trace(small_spec(seed=1))
    b = generate_trace(small_spec(seed=2))
    assert a.events != b.events


def test_generated_trace_is_valid():
    generate_trace(small_spec()).validate()


def test_alloc_count_matches_spec():
    trace = generate_trace(small_spec(num_allocs=1234))
    assert trace.alloc_count == 1234


def test_small_fraction_approximates_spec():
    trace = generate_trace(
        small_spec(num_allocs=5000, small_fraction=0.93, large_every=None)
    )
    small = sum(1 for a in trace.allocs() if a.size <= 512)
    assert small / trace.alloc_count == pytest.approx(0.93, abs=0.02)


def test_large_every_injects_large_allocs():
    trace = generate_trace(
        small_spec(num_allocs=1000, small_fraction=1.0, large_every=100)
    )
    large = [a for a in trace.allocs() if a.size > 512]
    assert len(large) == 10


def test_all_small_when_disabled():
    trace = generate_trace(
        small_spec(num_allocs=500, small_fraction=1.0, large_every=None)
    )
    assert all(a.size <= 512 for a in trace.allocs())


def test_short_lifetimes_free_quickly():
    spec = small_spec(
        num_allocs=4000,
        lifetime=LifetimeProfile(short=1.0, medium=0.0),
        small_fraction=1.0,
        large_every=None,
        phases=1,
    )
    trace = generate_trace(spec)
    # Everything short-lived: nearly every alloc frees within the trace.
    assert trace.free_count / trace.alloc_count > 0.98


def test_never_freed_objects_stay_live():
    spec = small_spec(
        num_allocs=2000,
        lifetime=LifetimeProfile(short=0.0, medium=0.0),
        small_fraction=1.0,
        large_every=None,
        phases=1,
    )
    trace = generate_trace(spec)
    assert trace.free_count == 0


def test_phase_boundaries_batch_free():
    spec = small_spec(
        num_allocs=4000,
        phases=4,
        phase_local=1.0,
        small_fraction=1.0,
        large_every=None,
        lifetime=LifetimeProfile(short=0.0, medium=0.0),
    )
    trace = generate_trace(spec)
    # All phase-local: frees arrive in 4 batches of ~1000.
    assert trace.free_count == trace.alloc_count
    # Find positions of frees; they should cluster at 4 points.
    free_runs = 0
    prev_was_free = False
    for event in trace:
        is_free = isinstance(event, Free)
        if is_free and not prev_was_free:
            free_runs += 1
        prev_was_free = is_free
    assert free_runs == 4


def test_touch_follows_each_alloc():
    trace = generate_trace(small_spec(num_allocs=300))
    live_touched = set()
    for event in trace:
        if isinstance(event, Touch):
            live_touched.add(event.obj)
    for alloc in trace.allocs():
        assert alloc.obj in live_touched


def test_compute_events_carry_cycles_and_dram():
    trace = generate_trace(small_spec(num_allocs=100, compute_per_alloc=500))
    computes = [e for e in trace if isinstance(e, Compute)]
    assert len(computes) == 100
    mean = sum(c.cycles for c in computes) / len(computes)
    assert 350 < mean < 650  # jittered around 500
    assert all(c.dram_bytes >= 0 for c in computes)


def test_resolved_fills_language_defaults():
    spec = WorkloadSpec(name="x", language="cpp").resolved()
    assert spec.small_fraction == 0.95
    assert spec.lifetime is not None
    assert spec.size_modes is not None


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=99),
    phases=st.integers(min_value=1, max_value=6),
    short=st.floats(min_value=0.0, max_value=1.0),
)
def test_any_spec_generates_valid_trace_property(seed, phases, short):
    spec = WorkloadSpec(
        name="p",
        language="go",
        seed=seed,
        num_allocs=600,
        phases=phases,
        phase_local=0.3 if phases > 1 else 0.0,
        lifetime=LifetimeProfile(short=short, medium=min(0.2, 1 - short)),
    )
    generate_trace(spec).validate()


# ---------------------------------------------------------------- columnar


def test_columnar_round_trips_canonical_events():
    trace = generate_trace(small_spec())
    packed = trace.columnar()
    assert packed is not None
    assert len(packed) == len(trace)
    assert packed.to_events() == trace.events


def test_columnar_is_memoized_and_refreshed_on_growth():
    trace = generate_trace(small_spec())
    first = trace.columnar()
    assert trace.columnar() is first
    trace.events.append(Touch(0))
    second = trace.columnar()
    assert second is not first
    assert len(second) == len(trace)


def test_columnar_rejects_noncanonical_events():
    class Odd:
        pass

    trace = Trace("x", "python", "function", [Alloc(0, 16), Odd()])
    assert trace.columnar() is None


def test_summary_properties_match_events_and_refresh():
    trace = generate_trace(small_spec())
    allocs = [e for e in trace.events if isinstance(e, Alloc)]
    frees = [e for e in trace.events if isinstance(e, Free)]
    assert trace.alloc_count == len(allocs)
    assert trace.free_count == len(frees)
    assert trace.total_alloc_bytes == sum(e.size for e in allocs)
    trace.events.append(Alloc(1 << 40, 24))
    assert trace.alloc_count == len(allocs) + 1
    assert trace.total_alloc_bytes == sum(e.size for e in allocs) + 24


def test_columnar_replay_matches_event_replay():
    from repro.harness.system import SimulatedSystem

    spec = small_spec(num_allocs=800)
    trace = generate_trace(spec)
    fast = SimulatedSystem(spec, memento=False).run(trace)
    slow_trace = generate_trace(spec)
    slow_trace.columnar = lambda: None  # force the per-event fallback
    slow = SimulatedSystem(spec, memento=False).run(slow_trace)
    assert fast.to_dict() == slow.to_dict()
