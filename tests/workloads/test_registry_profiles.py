"""Tests for the workload registry and the statistical profiles."""

import random

import pytest

from repro.workloads.profiles import (
    DATAPROC_LIFETIME,
    KV_SIZE_MODES,
    LIFETIMES_BY_LANGUAGE,
    PLATFORM_LIFETIME,
    PROFILES,
    LifetimeProfile,
    large_sampler,
    mode_sampler,
)
from repro.workloads.registry import (
    DATAPROC_WORKLOADS,
    FUNCTION_WORKLOADS,
    PLATFORM_WORKLOADS,
    all_workloads,
    get_workload,
)


def test_registry_has_all_23_workloads():
    assert len(FUNCTION_WORKLOADS) == 16
    assert len(DATAPROC_WORKLOADS) == 4
    assert len(PLATFORM_WORKLOADS) == 3
    assert len(all_workloads()) == 23


def test_paper_workload_names_present():
    for name in ["html", "ir", "bfs", "dna", "aes", "fr", "jl", "jd", "mk",
                 "US", "UM", "CM", "MI", "html-go", "bfs-go", "aes-go",
                 "Redis", "Memcached", "Silo", "SQLite3",
                 "up", "deploy", "invoke"]:
        assert get_workload(name).name == name


def test_unknown_workload_raises_with_names():
    with pytest.raises(KeyError, match="available"):
        get_workload("nope")


def test_names_unique():
    names = [spec.name for spec in all_workloads()]
    assert len(names) == len(set(names))


def test_language_split_matches_paper():
    languages = {s.name: s.language for s in FUNCTION_WORKLOADS}
    assert languages["html"] == "python"
    assert languages["US"] == "cpp"
    assert languages["html-go"] == "go"
    assert all(s.language == "cpp" for s in DATAPROC_WORKLOADS)
    assert all(s.language == "go" for s in PLATFORM_WORKLOADS)


def test_categories():
    assert all(s.category == "function" for s in FUNCTION_WORKLOADS)
    assert all(s.category == "dataproc" for s in DATAPROC_WORKLOADS)
    assert all(s.category == "platform" for s in PLATFORM_WORKLOADS)


def test_seeds_unique_for_determinism():
    seeds = [s.seed for s in all_workloads()]
    assert len(seeds) == len(set(seeds))


# ---------------------------------------------------------------- profiles


def test_mode_sampler_respects_threshold():
    rng = random.Random(0)
    sample = mode_sampler(KV_SIZE_MODES, jitter=0.3)
    assert all(8 <= sample(rng) <= 512 for _ in range(2000))


def test_mode_sampler_without_jitter_hits_modes():
    rng = random.Random(0)
    sample = mode_sampler(((16, 0.5), (64, 0.5)))
    assert set(sample(rng) for _ in range(200)) == {16, 64}


def test_large_sampler_exceeds_threshold():
    rng = random.Random(0)
    assert all(large_sampler(rng) > 512 for _ in range(500))


def test_lifetime_fractions_sum_sane():
    for profile in list(LIFETIMES_BY_LANGUAGE.values()) + [
        DATAPROC_LIFETIME, PLATFORM_LIFETIME
    ]:
        assert 0 <= profile.never <= 1
        assert profile.short + profile.medium <= 1.0 + 1e-9


def test_lifetime_sample_ranges():
    rng = random.Random(1)
    profile = LifetimeProfile(short=0.5, medium=0.5)
    for _ in range(500):
        distance = profile.sample(rng)
        assert distance is not None
        assert 1 <= distance <= profile.medium_max


def test_short_only_profile_within_16():
    rng = random.Random(2)
    profile = LifetimeProfile(short=1.0, medium=0.0)
    assert all(1 <= profile.sample(rng) <= 16 for _ in range(500))


def test_never_only_profile():
    rng = random.Random(3)
    profile = LifetimeProfile(short=0.0, medium=0.0)
    assert all(profile.sample(rng) is None for _ in range(100))


def test_language_profiles_cover_three_runtimes():
    assert set(PROFILES) == {"python", "cpp", "go"}
    for profile in PROFILES.values():
        assert 0.9 <= profile.small_fraction <= 1.0


def test_go_profile_is_long_lived():
    # Fig. 3: Golang allocations are long-lived (GC not invoked).
    assert PROFILES["go"].lifetime.never > 0.8


def test_cpp_profile_is_short_lived():
    assert PROFILES["cpp"].lifetime.short >= 0.85
