"""The stack registry contract: every registered stack satisfies the
identity/knob/hook surface, coercion covers the legacy boolean, and the
knob guards fail loudly naming the offending stack."""

import dataclasses

import pytest

from repro import stacks
from repro.harness.system import SimulatedSystem
from repro.resolve import UsageError, resolve_stack, resolve_stack_list
from repro.workloads.registry import get_workload

ALL_STACKS = list(stacks.stack_names())


def small_spec(**overrides):
    spec = dataclasses.replace(
        get_workload("html").resolved(), num_allocs=150
    )
    return dataclasses.replace(spec, **overrides) if overrides else spec


# ------------------------------------------------------------- contract


def test_builtin_registration_order():
    # Wire payloads, reports, and CLI help all lean on this order.
    assert ALL_STACKS == ["baseline", "memento", "snapshot", "reclaim"]


@pytest.mark.parametrize("name", ALL_STACKS)
def test_contract_surface(name):
    stack = stacks.get_stack(name)
    assert stack.name == name
    assert stack.description
    assert isinstance(stack.hardware, bool)
    assert isinstance(stack.knobs, frozenset)
    assert 0.0 <= stack.resident_fraction <= 1.0
    assert stack.legacy_memento in (None, True, False)
    # resident_bytes scales the footprint by the declared fraction.
    assert stack.resident_bytes(1000.0) == pytest.approx(
        1000.0 * stack.resident_fraction
    )


def test_legacy_spellings_map_to_paper_stacks():
    assert stacks.get_stack("baseline").legacy_memento is False
    assert stacks.get_stack("memento").legacy_memento is True
    assert stacks.get_stack("snapshot").legacy_memento is None
    assert stacks.get_stack("reclaim").legacy_memento is None
    assert stacks.get_stack("memento").hardware is True
    assert stacks.get_stack("snapshot").hardware is False


def test_coerce_accepts_bool_name_and_stack():
    memento = stacks.get_stack("memento")
    assert stacks.coerce(True) is memento
    assert stacks.coerce(False) is stacks.get_stack("baseline")
    assert stacks.coerce("snapshot") is stacks.get_stack("snapshot")
    assert stacks.coerce(memento) is memento
    with pytest.raises(ValueError, match="cannot resolve a stack"):
        stacks.coerce(3.5)


def test_unknown_stack_names_every_choice():
    with pytest.raises(ValueError, match="unknown stack 'bogus'"):
        stacks.get_stack("bogus")
    with pytest.raises(UsageError, match="unknown stack"):
        resolve_stack("bogus")


def test_register_rejects_incomplete_stacks():
    class NoName(stacks.Stack):
        pass

    with pytest.raises(ValueError, match="non-empty name"):
        stacks.register(NoName())

    class ListKnobs(stacks.Stack):
        name = "listknobs"
        knobs = ["allocator"]  # type: ignore[assignment]

    with pytest.raises(ValueError, match="frozenset"):
        stacks.register(ListKnobs())

    class Duplicate(stacks.Stack):
        name = "baseline"
        knobs = frozenset()

    with pytest.raises(ValueError, match="already registered"):
        stacks.register(Duplicate())


# ------------------------------------------------------------- resolver


def test_resolve_stack_centralizes_boolean_derivation():
    assert resolve_stack(True) == "memento"
    assert resolve_stack(False) == "baseline"
    assert resolve_stack("reclaim") == "reclaim"


def test_resolve_stack_list_aliases_and_dedup():
    assert resolve_stack_list(None) == tuple(ALL_STACKS)
    assert resolve_stack_list("both") == ("baseline", "memento")
    assert resolve_stack_list("all") == tuple(ALL_STACKS)
    assert resolve_stack_list("snapshot, snapshot ,baseline") == (
        "snapshot",
        "baseline",
    )
    with pytest.raises(UsageError, match="no stacks selected"):
        resolve_stack_list(",")
    with pytest.raises(UsageError, match="unknown stack"):
        resolve_stack_list("baseline,bogus")


# ------------------------------------------------------------- behavior


@pytest.mark.parametrize("name", ALL_STACKS)
def test_every_stack_replays_a_workload(name):
    result = SimulatedSystem(small_spec(), name).run()
    assert result.total_cycles > 0
    assert result.memento is stacks.get_stack(name).hardware


@pytest.mark.parametrize("name", ALL_STACKS)
def test_every_stack_is_deterministic(name):
    first = SimulatedSystem(small_spec(), name).run()
    second = SimulatedSystem(small_spec(), name).run()
    assert first.to_dict() == second.to_dict()


def test_snapshot_charges_restore_on_warm_runs_only():
    warm = SimulatedSystem(small_spec(), "snapshot").run()
    assert warm.cycles.get("restore", 0) > 0
    cold = SimulatedSystem(
        small_spec(), "snapshot", cold_start=True
    ).run()
    assert cold.cycles.get("restore", 0) == 0


def test_reclaim_charges_release_on_function_exit():
    result = SimulatedSystem(small_spec(), "reclaim").run()
    assert result.cycles.get("reclaim_release", 0) > 0


def test_paper_stacks_carry_no_rival_cost_categories():
    # Bit-identity guard: baseline/memento totals must not move.
    for name in ("baseline", "memento"):
        result = SimulatedSystem(small_spec(), name).run()
        assert result.cycles.get("restore", 0) == 0
        assert result.cycles.get("reclaim_release", 0) == 0


# ------------------------------------------------------------ knob guards


@pytest.mark.parametrize(
    "name", [n for n in ALL_STACKS if "mmap_populate" not in
             stacks.get_stack(n).knobs]
)
def test_mmap_populate_guard_names_the_stack(name):
    with pytest.raises(ValueError, match=f"not supported by the {name!r}"):
        SimulatedSystem(small_spec(), name, mmap_populate=True)


def test_allocator_override_guard_names_the_stack():
    with pytest.raises(ValueError, match="'memento'"):
        SimulatedSystem(
            small_spec(), "memento", allocator_cls=object
        )
