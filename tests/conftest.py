"""Repo-wide pytest plumbing.

The ``@pytest.mark.audit`` tier replays every registered workload on both
stacks under a per-run invariant audit plus the differential oracle —
minutes of work, far beyond the tier-1 budget. It is opt-in: pass
``--run-audit`` or set ``REPRO_AUDIT=1`` (the nightly audit workflow
does); otherwise the marked tests are skipped, not silently absent.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-audit",
        action="store_true",
        default=False,
        help="run the @audit tier (full workload x stack audit sweep)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-audit") or os.environ.get("REPRO_AUDIT"):
        return
    skip = pytest.mark.skip(
        reason="audit tier skipped (use --run-audit or REPRO_AUDIT=1)"
    )
    for item in items:
        if item.get_closest_marker("audit") is not None:
            item.add_marker(skip)
