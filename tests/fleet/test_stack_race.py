"""The four-stack fleet race, and the empty-percentile markers the
per-stack cold-start report depends on."""

from dataclasses import replace

import pytest

from repro.fleet import (
    FleetRequest,
    render_fleet_report,
    simulate_fleet,
)
from repro.fleet.metrics import (
    FleetResult,
    StackMetrics,
    percentile,
    percentile_summary,
)
from repro.harness.engine import ExperimentEngine
from repro.stacks import stack_names

ALL_STACKS = tuple(stack_names())


def race_fleet(**overrides) -> FleetRequest:
    defaults = dict(
        workloads=("html", "aes"),
        invocations=600,
        duration_s=600.0,
        seed=42,
        profile_seeds=1,
        invocation_allocs=300,
        keep_alive_s=60.0,
        stacks=ALL_STACKS,
    )
    defaults.update(overrides)
    return FleetRequest(**defaults)


def engine() -> ExperimentEngine:
    return ExperimentEngine(cache_dir=None)


# ----------------------------------------------------------- the race


class TestFourStackRace:
    def test_seeded_race_is_bit_identical(self):
        request = race_fleet()
        first = simulate_fleet(request, engine=engine())
        second = simulate_fleet(request, engine=engine())
        assert first.to_dict() == second.to_dict()

    def test_every_stack_reports_cold_p95_and_stranding(self):
        result = simulate_fleet(race_fleet(), engine=engine())
        assert set(result.stacks) == set(ALL_STACKS)
        for name in ALL_STACKS:
            metrics = result.stacks[name]
            assert metrics.invocations == 600
            assert metrics.cold_starts > 0
            assert metrics.cold_start_ms["p95"] > 0
            assert metrics.stranded_byte_seconds > 0

    def test_rival_stacks_strand_less_than_baseline(self):
        # The idle-residency model: snapshot (5% resident) and reclaim
        # (25% resident) strand fewer byte-seconds than baseline's
        # full-footprint keep-alive. (Snapshot vs reclaim ordering is
        # workload-dependent — prefaulted arenas inflate snapshot's
        # peak footprint — so only the baseline bound is invariant.)
        result = simulate_fleet(race_fleet(), engine=engine())
        stranded = {
            name: m.stranded_byte_seconds
            for name, m in result.stacks.items()
        }
        assert stranded["snapshot"] < stranded["baseline"]
        assert stranded["reclaim"] < stranded["baseline"]

    def test_report_renders_all_stacks(self):
        result = simulate_fleet(race_fleet(), engine=engine())
        report = render_fleet_report(result)
        for name in ALL_STACKS:
            assert name in report


# -------------------------------------------------- empty percentiles


class TestEmptyPercentiles:
    def test_percentile_raises_on_empty(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 95)

    def test_percentile_summary_empty_marker(self):
        assert percentile_summary([]) == {}
        summary = percentile_summary([3.0, 1.0, 2.0])
        assert summary == {"p50": 2.0, "p95": 3.0, "p99": 3.0}

    def test_report_renders_dash_for_stacks_that_never_went_cold(self):
        result = FleetResult(
            invocations=10,
            duration_s=60.0,
            epochs=1,
            stacks={
                "baseline": StackMetrics(
                    stack="baseline",
                    invocations=10,
                    warm_starts=10,
                    latency_ms={},
                    cold_start_ms={},
                )
            },
        )
        report = render_fleet_report(result)
        line = next(
            l for l in report.splitlines() if l.startswith("baseline")
        )
        assert "-/" in line.replace(" ", "")
        assert "0.00" not in line

    def test_never_cold_fleet_reduces_cleanly(self):
        # keep_alive covering the whole window after the first touches:
        # warm stacks report no cold percentiles rather than 0.0 ones.
        result = simulate_fleet(
            race_fleet(
                stacks=("baseline",),
                invocations=200,
                keep_alive_s=100000.0,
            ),
            engine=engine(),
        )
        metrics = result.stacks["baseline"]
        assert metrics.cold_starts > 0  # first arrivals are always cold
        assert "p95" in metrics.cold_start_ms
