"""Fleet telemetry: the install-gated recorder and the ledger canary.

The acceptance criteria from the telemetry plane live here: a fleet run
with the recorder installed produces a bit-identical ``FleetResult`` to
one without (the rebinding-style off-path test), epoch records reconcile
exactly with the reduced ``StackMetrics`` counters, instance lifetime
spans export to a valid Perfetto timeline, and two seeded runs write
ledger lines with identical ``metrics_digest`` values.
"""

from dataclasses import replace

import pytest

from repro.fleet import (
    FleetRecorder,
    FleetRequest,
    get_fleet_recorder,
    install_fleet_recorder,
    simulate_fleet,
)
from repro.harness.engine import ExperimentEngine
from repro.obs.ledger import split_fleet_entries
from repro.obs.timeline import (
    export_timeline,
    fleet_trace_events,
    validate_trace_events,
)
from repro.obs.trend import check_fleet_trend


def small_fleet(**overrides) -> FleetRequest:
    defaults = dict(
        workloads=("html", "aes"),
        invocations=600,
        duration_s=600.0,
        seed=11,
        profile_seeds=1,
        invocation_allocs=300,
        keep_alive_s=60.0,
    )
    defaults.update(overrides)
    return FleetRequest(**defaults)


def engine() -> ExperimentEngine:
    return ExperimentEngine(cache_dir=None)


@pytest.fixture(autouse=True)
def no_leaked_recorder():
    """Tests must never leave a recorder installed for the rest of the
    suite (the disabled path is the default everywhere else)."""
    yield
    install_fleet_recorder(None)


def recorded_run(request: FleetRequest, recorder: FleetRecorder):
    previous = install_fleet_recorder(recorder)
    try:
        return simulate_fleet(request, engine=engine())
    finally:
        install_fleet_recorder(previous)


class TestGating:
    def test_recorder_is_off_by_default(self):
        assert get_fleet_recorder() is None

    def test_install_returns_previous(self):
        first = FleetRecorder()
        assert install_fleet_recorder(first) is None
        second = FleetRecorder()
        assert install_fleet_recorder(second) is first
        assert install_fleet_recorder(None) is second

    def test_result_bit_identical_with_recorder_installed(self):
        """The recorder only observes: before / observed / after runs of
        the same request agree bit for bit."""
        request = small_fleet()
        before = simulate_fleet(request, engine=engine())
        observed = recorded_run(request, FleetRecorder())
        after = simulate_fleet(request, engine=engine())
        assert before.to_dict() == observed.to_dict()
        assert observed.to_dict() == after.to_dict()


class TestRecords:
    def test_epoch_records_reconcile_with_stack_metrics(self):
        request = small_fleet()
        recorder = FleetRecorder()
        result = recorded_run(request, recorder)
        epochs = recorder.epochs
        assert len(epochs) == result.epochs * len(result.stacks)
        for stack, metrics in result.stacks.items():
            mine = [r for r in epochs if r["stack"] == stack]
            assert [r["epoch"] for r in mine] == list(range(result.epochs))
            assert sum(r["cold_starts"] for r in mine) == metrics.cold_starts
            assert sum(r["warm_starts"] for r in mine) == metrics.warm_starts
            assert sum(r["evictions"] for r in mine) == metrics.evictions
            assert (
                sum(r["invocations"] for r in mine) == metrics.invocations
            )
            # Stranding is backfilled per epoch once the pool pass ends.
            assert [r["stranded_byte_s"] for r in mine] == list(
                metrics.stranding_timeline
            )

    def test_instance_spans_cover_busy_and_idle_lifetimes(self):
        recorder = FleetRecorder()
        recorded_run(small_fleet(), recorder)
        states = {r["state"] for r in recorder.instances}
        assert states == {"busy", "idle"}
        for record in recorder.instances:
            assert record["end_s"] >= record["start_s"]
            if record["state"] == "busy":
                assert record["cold"] in (True, False)
            else:
                assert record["outcome"] in (
                    "reused", "expired", "evicted", "horizon"
                )

    def test_lru_cap_produces_evicted_outcomes(self):
        recorder = FleetRecorder()
        result = recorded_run(
            small_fleet(policy="lru", max_warm=1), recorder
        )
        assert any(
            m.evictions > 0 for m in result.stacks.values()
        )
        evicted = [
            r for r in recorder.instances
            if r.get("outcome") == "evicted"
        ]
        assert evicted

    def test_capacity_bounds_instance_spans(self):
        recorder = FleetRecorder(capacity=16)
        recorded_run(small_fleet(), recorder)
        assert len(recorder.instances) == 16
        assert recorder.dropped > 0


class TestTimeline:
    def test_fleet_records_export_to_valid_perfetto_trace(self, tmp_path):
        recorder = FleetRecorder()
        recorded_run(small_fleet(policy="lru", max_warm=1), recorder)
        events = fleet_trace_events(recorder.records())
        assert validate_trace_events(events) == len(events)
        # Instance tracks, counter series, and eviction markers all land.
        phases = {event["ph"] for event in events}
        assert {"X", "C", "M", "i"} <= phases
        out = export_timeline(tmp_path / "fleet.json", recorder.records())
        assert out.exists()


class TestLedgerCanary:
    def test_metrics_digest_identical_across_seeded_runs(self, tmp_path):
        """Two runs of one seeded fleet request write ledger lines whose
        full-payload digests agree — the fleet determinism canary."""
        request = small_fleet()
        eng = ExperimentEngine(
            cache_dir=tmp_path, backend="memory", use_ledger=True
        )
        simulate_fleet(request, engine=eng)
        simulate_fleet(request, engine=eng)
        entries, skipped = eng.ledger.read_classified()
        assert skipped == 0
        _, fleets = split_fleet_entries(entries)
        assert len(fleets) == 2
        first, second = fleets
        assert first["key"] == second["key"] == request.content_key()
        assert first["scenario"] == second["scenario"]
        assert first["metrics_digest"] == second["metrics_digest"]
        assert set(first["stacks"]) == {"baseline", "memento"}
        # Two agreeing samples: the trend gate sees no digest drift (and
        # abstains on the headline metrics — below MIN_SAMPLES).
        report = check_fleet_trend(eng.ledger)
        assert report["ok"] is True
        assert report["entries"] == 2

    def test_digest_drift_flags_the_gate(self, tmp_path):
        request = small_fleet()
        eng = ExperimentEngine(
            cache_dir=tmp_path, backend="memory", use_ledger=True
        )
        simulate_fleet(request, engine=eng)
        entries, _ = eng.ledger.read_classified()
        _, (entry,) = split_fleet_entries(entries)
        forged = dict(entry)
        forged["metrics_digest"] = "0" * 16
        eng.ledger.append(forged)
        report = check_fleet_trend(eng.ledger)
        assert report["ok"] is False
        assert any(row["digest_drift"] for row in report["rows"])
