"""Arrival-process properties: determinism, exactness, mix shape."""

import pytest

from repro.fleet.arrival import (
    assign_functions,
    epoch_arrivals,
    epoch_counts,
    epoch_edges,
    epoch_seed,
    intensity,
    mix_weights,
)


class TestEpochSeeds:
    def test_deterministic_and_distinct(self):
        assert epoch_seed(42, 3) == epoch_seed(42, 3)
        assert epoch_seed(42, 3) != epoch_seed(42, 4)
        assert epoch_seed(42, 3) != epoch_seed(43, 3)
        assert epoch_seed(42, 3) != epoch_seed(42, 3, salt="mix")


class TestMixWeights:
    def test_uniform_is_flat(self):
        weights = mix_weights(["a", "b", "c", "d"], "uniform", seed=1)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_azure_is_skewed_and_normalized(self):
        weights = mix_weights([f"f{i}" for i in range(16)], "azure", seed=1)
        assert sum(weights) == pytest.approx(1.0)
        # Zipf over 16 functions: the most popular takes 1/H(16) ≈ 0.30.
        assert max(weights) > 4 * min(weights)

    def test_azure_ranking_tracks_seed(self):
        names = [f"f{i}" for i in range(8)]
        assert mix_weights(names, "azure", 1) == mix_weights(
            names, "azure", 1
        )
        assert mix_weights(names, "azure", 1) != mix_weights(
            names, "azure", 2
        )

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            mix_weights(["a"], "bursty", seed=1)


class TestEpochCounts:
    @pytest.mark.parametrize("pattern", ["poisson", "diurnal"])
    @pytest.mark.parametrize("total", [1, 7, 1000, 99_991])
    def test_counts_sum_exactly(self, pattern, total):
        counts = epoch_counts(total, 3600.0, 7, pattern, seed=42)
        assert sum(counts) == total
        assert all(c >= 0 for c in counts)

    def test_poisson_counts_are_even(self):
        counts = epoch_counts(8000, 3600.0, 8, "poisson", seed=1)
        assert counts == [1000] * 8

    def test_diurnal_counts_vary(self):
        # A day-long window sweeps the full sinusoid: epoch loads differ.
        counts = epoch_counts(100_000, 86_400.0, 8, "diurnal", seed=1)
        assert max(counts) > min(counts)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            epoch_counts(10, 60.0, 2, "weekly", seed=1)


class TestEpochArrivals:
    @pytest.mark.parametrize("pattern", ["poisson", "diurnal"])
    def test_sorted_within_bounds_and_deterministic(self, pattern):
        times = epoch_arrivals(2, 500, 100.0, 200.0, pattern, seed=42)
        assert times == sorted(times)
        assert len(times) == 500
        assert all(100.0 <= t < 200.0 for t in times)
        again = epoch_arrivals(2, 500, 100.0, 200.0, pattern, seed=42)
        assert times == again

    def test_epochs_are_independent(self):
        # Epoch 5's arrivals don't change when epoch 4 is never drawn.
        direct = epoch_arrivals(5, 50, 500.0, 600.0, "poisson", seed=9)
        for epoch in range(5):
            epoch_arrivals(epoch, 50, 0.0, 100.0, "poisson", seed=9)
        assert epoch_arrivals(
            5, 50, 500.0, 600.0, "poisson", seed=9
        ) == direct


class TestAssignFunctions:
    def test_deterministic_and_in_range(self):
        weights = mix_weights(["a", "b", "c"], "azure", seed=3)
        picks = assign_functions(1, 1000, weights, seed=3)
        assert assign_functions(1, 1000, weights, seed=3) == picks
        assert set(picks) <= {0, 1, 2}

    def test_weights_shape_the_draw(self):
        picks = assign_functions(0, 5000, [0.9, 0.1], seed=7)
        heavy = picks.count(0)
        assert heavy > 4000


def test_epoch_edges_cover_the_window():
    edges = epoch_edges(3600.0, 6)
    assert edges[0] == 0.0 and edges[-1] == 3600.0
    assert len(edges) == 7


def test_intensity_mean_is_one_for_poisson():
    assert intensity(123.0, "poisson", seed=1) == 1.0
