"""FleetRequest wire round-trip and content-key semantics.

The acceptance criteria for the request-API unification live here:
``FleetRequest`` speaks the same versioned wire conventions as
``RunRequest`` (stamp on write, tolerate version-0 payloads, reject
newer versions and unknown fields) because both delegate to the one
codec in :mod:`repro.codec`.
"""

import dataclasses

import pytest

from repro.core.config import MementoConfig
from repro.fleet.request import (
    FLEET_SCHEMA_VERSION,
    FleetRequest,
)


class TestRoundTrip:
    def test_to_dict_stamps_schema_version(self):
        payload = FleetRequest(workloads=("html",)).to_dict()
        assert payload["schema_version"] == FLEET_SCHEMA_VERSION

    def test_round_trip_is_identity(self):
        request = FleetRequest(
            workloads=("html", "aes"),
            invocations=5_000,
            duration_s=1800.0,
            pattern="diurnal",
            mix="uniform",
            seed=7,
            keep_alive_s=120.0,
            policy="lru",
            max_warm=8,
            config=MementoConfig(bypass_enabled=False),
        )
        back = FleetRequest.from_dict(request.to_dict())
        assert back == request
        assert back.content_key() == request.content_key()

    def test_version_0_payload_tolerated(self):
        request = FleetRequest(workloads=("html",), seed=3)
        legacy = request.to_dict()
        del legacy["schema_version"]
        assert FleetRequest.from_dict(legacy) == request

    def test_newer_schema_rejected(self):
        payload = FleetRequest().to_dict()
        payload["schema_version"] = FLEET_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            FleetRequest.from_dict(payload)

    def test_unknown_fields_rejected(self):
        payload = FleetRequest().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown FleetRequest"):
            FleetRequest.from_dict(payload)


class TestContentKey:
    def test_resolved_request_hashes_identically(self):
        request = FleetRequest(invocations=1000, seed=5)
        assert request.resolved().content_key() == request.content_key()

    def test_kernel_choice_excluded_from_key(self):
        base = FleetRequest(workloads=("html",), seed=5)
        scalar = dataclasses.replace(base, kernel="scalar")
        assert scalar.content_key() == base.content_key()

    def test_platform_knobs_change_the_key(self):
        base = FleetRequest(workloads=("html",), seed=5)
        assert (
            dataclasses.replace(base, keep_alive_s=1.0).content_key()
            != base.content_key()
        )
        assert (
            dataclasses.replace(base, seed=6).content_key()
            != base.content_key()
        )

    def test_wire_round_trip_preserves_key(self):
        # The HTTP-vs-direct half of the criterion: a request that rode
        # the wire hashes to the same fleet key as the original.
        request = FleetRequest(
            workloads=("html", "ir"), invocations=777, pattern="diurnal"
        )
        assert (
            FleetRequest.from_dict(request.to_dict()).content_key()
            == request.content_key()
        )


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            FleetRequest(workloads=("nope",))

    @pytest.mark.parametrize(
        "field, value, match",
        [
            ("invocations", 0, "invocations"),
            ("duration_s", 0.0, "duration_s"),
            ("pattern", "weekly", "pattern"),
            ("mix", "heavy", "mix"),
            ("policy", "fifo", "policy"),
            ("keep_alive_s", -1.0, "keep_alive_s"),
            ("profile_seeds", 0, "profile_seeds"),
            ("stacks", (), "stacks"),
            ("stacks", ("gc",), "stack"),
        ],
    )
    def test_bad_fields_rejected(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            FleetRequest(**{field: value})

    def test_resolved_fills_workloads_and_epochs(self):
        resolved = FleetRequest(invocations=1_000_000).resolved()
        assert len(resolved.workloads) == 16
        assert resolved.epochs > 0
