"""Seeded fleet determinism and platform-metric shape."""

from dataclasses import replace

import pytest

from repro.fleet import (
    FleetRequest,
    FleetResult,
    render_fleet_report,
    simulate_fleet,
)
from repro.fleet.simulate import fleet_run_requests
from repro.harness.engine import ExperimentEngine


def small_fleet(**overrides) -> FleetRequest:
    defaults = dict(
        workloads=("html", "aes"),
        invocations=800,
        duration_s=600.0,
        seed=11,
        profile_seeds=1,
        invocation_allocs=300,
        keep_alive_s=60.0,
    )
    defaults.update(overrides)
    return FleetRequest(**defaults)


def engine() -> ExperimentEngine:
    return ExperimentEngine(cache_dir=None)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        request = small_fleet()
        first = simulate_fleet(request, engine=engine())
        second = simulate_fleet(request, engine=engine())
        assert first.to_dict() == second.to_dict()

    def test_different_seed_differs(self):
        first = simulate_fleet(small_fleet(seed=1), engine=engine())
        second = simulate_fleet(small_fleet(seed=2), engine=engine())
        assert (
            first.stacks["baseline"].stranding_timeline
            != second.stacks["baseline"].stranding_timeline
        )


class TestShards:
    def test_fan_out_size(self):
        request = small_fleet(profile_seeds=2)
        shards = fleet_run_requests(request)
        # 2 workloads x 2 stacks x {warm, cold} x 2 profile seeds.
        assert len(shards) == 16

    def test_shards_are_cache_friendly(self):
        # Re-deriving the shards yields identical content keys, so a
        # second fleet run answers from the engine cache.
        request = small_fleet()
        first = {
            key: req.content_key()
            for key, req in fleet_run_requests(request).items()
        }
        second = {
            key: req.content_key()
            for key, req in fleet_run_requests(request).items()
        }
        assert first == second


class TestMetrics:
    def test_platform_metrics_present_for_both_stacks(self):
        result = simulate_fleet(small_fleet(), engine=engine())
        for stack in ("baseline", "memento"):
            metrics = result.stacks[stack]
            assert metrics.invocations == 800
            assert set(metrics.cold_start_ms) == {"p50", "p95", "p99"}
            assert set(metrics.latency_ms) == {"p50", "p95", "p99"}
            assert metrics.dram_bytes > 0
            assert len(metrics.stranding_timeline) == result.epochs
        assert result.comparison["dram_ratio"] > 0

    def test_result_wire_round_trip(self):
        result = simulate_fleet(small_fleet(), engine=engine())
        back = FleetResult.from_dict(result.to_dict())
        assert back.to_dict() == result.to_dict()

    def test_report_renders_the_headline_metrics(self):
        result = simulate_fleet(small_fleet(), engine=engine())
        report = render_fleet_report(result)
        assert "cold p50/p95/p99" in report
        assert "stranding timeline" in report
        assert "memento / baseline" in report

    def test_single_stack_fleet_has_no_comparison(self):
        result = simulate_fleet(
            small_fleet(stacks=("baseline",)), engine=engine()
        )
        assert list(result.stacks) == ["baseline"]
        assert result.comparison == {}

    def test_zero_keep_alive_is_all_cold(self):
        result = simulate_fleet(
            small_fleet(keep_alive_s=0.0), engine=engine()
        )
        metrics = result.stacks["baseline"]
        assert metrics.cold_starts == metrics.invocations
        assert metrics.stranded_byte_seconds == 0.0

    def test_cold_start_adds_latency(self):
        result = simulate_fleet(small_fleet(), engine=engine())
        metrics = result.stacks["baseline"]
        assert metrics.cold_start_ms["p50"] >= metrics.latency_ms["p50"]
