"""Instance-pool mechanics: reuse, keep-alive, eviction, stranding."""

import pytest

from repro.fleet.pool import FleetPool


def test_first_arrival_is_cold_then_warm():
    pool = FleetPool(keep_alive_s=100.0)
    cold, latency = pool.invoke("f", 0.0, warm_s=1.0, cold_extra_s=4.0,
                                resident_bytes=1000.0)
    assert cold and latency == 5.0
    cold, latency = pool.invoke("f", 10.0, warm_s=1.0, cold_extra_s=4.0,
                                resident_bytes=1000.0)
    assert not cold and latency == 1.0


def test_zero_keep_alive_is_always_cold_with_zero_stranding():
    pool = FleetPool(keep_alive_s=0.0)
    for t in range(10):
        cold, _ = pool.invoke("f", float(t), warm_s=0.01,
                              cold_extra_s=0.05, resident_bytes=4096.0)
        assert cold
    stats = pool.finish(10.0)
    assert stats.cold_starts == 10 and stats.warm_starts == 0
    assert stats.stranded_byte_seconds == 0.0


def test_all_warm_pool_never_cold_after_first():
    # Keep-alive far longer than the gaps and invocations shorter than
    # the inter-arrival time: one cold start, everything else reuses.
    pool = FleetPool(keep_alive_s=1e9)
    for t in range(100):
        pool.invoke("f", float(t), warm_s=0.1, cold_extra_s=0.2,
                    resident_bytes=100.0)
    stats = pool.finish(100.0)
    assert stats.cold_starts == 1
    assert stats.warm_starts == 99


def test_expiry_after_keep_alive():
    pool = FleetPool(keep_alive_s=5.0)
    pool.invoke("f", 0.0, warm_s=1.0, cold_extra_s=0.0,
                resident_bytes=10.0)
    # Instance idles from t=1; its keep-alive lapses at t=6, so the
    # arrival at t=10 is cold again.
    cold, _ = pool.invoke("f", 10.0, warm_s=1.0, cold_extra_s=0.0,
                          resident_bytes=10.0)
    assert cold
    stats = pool.finish(20.0)
    assert stats.expirations >= 1
    # First idle span: t=1 to t=6 at 10 bytes = 50 byte-seconds; the
    # second instance idles t=11..16 for another 50.
    assert stats.stranded_byte_seconds == pytest.approx(100.0)


def test_stranding_is_resident_bytes_times_idle_time():
    pool = FleetPool(keep_alive_s=100.0)
    pool.invoke("f", 0.0, warm_s=2.0, cold_extra_s=0.0,
                resident_bytes=1000.0)
    # Warm reuse at t=10: idle span was t=2..10 = 8s at 1000 B.
    pool.invoke("f", 10.0, warm_s=2.0, cold_extra_s=0.0,
                resident_bytes=1000.0)
    assert pool.stats.stranded_byte_seconds == pytest.approx(8000.0)


def test_stranding_timeline_splits_across_epochs():
    edges = [0.0, 10.0, 20.0]
    pool = FleetPool(keep_alive_s=100.0, epoch_edges=edges)
    pool.invoke("f", 0.0, warm_s=1.0, cold_extra_s=0.0,
                resident_bytes=100.0)
    # Idle from t=1; reused at t=15: 9s in epoch 0, 5s in epoch 1.
    pool.invoke("f", 15.0, warm_s=1.0, cold_extra_s=0.0,
                resident_bytes=100.0)
    timeline = pool.stats.stranding_timeline
    assert timeline[0] == pytest.approx(900.0)
    assert timeline[1] == pytest.approx(500.0)


def test_lru_cap_evicts_oldest_idle():
    pool = FleetPool(keep_alive_s=1000.0, policy="lru", max_warm=2)
    for i, name in enumerate(["a", "b", "c"]):
        pool.invoke(name, float(i), warm_s=0.5, cold_extra_s=0.0,
                    resident_bytes=10.0)
    stats = pool.finish(10.0)
    # Parking "c" exceeded the cap; "a" (oldest idle) was evicted.
    assert stats.evictions == 1
    assert stats.peak_warm <= 3


def test_lru_pool_keeps_hot_function_warm():
    pool = FleetPool(keep_alive_s=1000.0, policy="lru", max_warm=1)
    pool.invoke("hot", 0.0, warm_s=0.1, cold_extra_s=1.0,
                resident_bytes=10.0)
    pool.invoke("cold-fn", 1.0, warm_s=0.1, cold_extra_s=1.0,
                resident_bytes=10.0)  # evicts "hot"
    cold, _ = pool.invoke("hot", 2.0, warm_s=0.1, cold_extra_s=1.0,
                          resident_bytes=10.0)
    assert cold  # "hot" was the LRU victim


def test_busy_instance_is_not_reused():
    # The first invocation finishes at t=5; an arrival at t=2 cannot
    # reuse the still-running instance.
    pool = FleetPool(keep_alive_s=100.0)
    pool.invoke("f", 0.0, warm_s=5.0, cold_extra_s=0.0,
                resident_bytes=10.0)
    cold, _ = pool.invoke("f", 2.0, warm_s=5.0, cold_extra_s=0.0,
                          resident_bytes=10.0)
    assert cold
    assert pool.stats.cold_starts == 2


def test_bad_policy_and_negative_keep_alive_rejected():
    with pytest.raises(ValueError, match="unknown policy"):
        FleetPool(keep_alive_s=1.0, policy="fifo")
    with pytest.raises(ValueError, match="keep_alive_s"):
        FleetPool(keep_alive_s=-1.0)
