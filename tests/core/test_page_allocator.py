"""Tests for the hardware page allocator, AAC, pool, and Memento tables."""

import pytest

from repro.core.arena import arena_span_bytes
from repro.core.config import MementoConfig
from repro.core.errors import RegionExhaustedError
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.region import MementoRegion
from repro.sim.params import PAGE_SIZE


CONFIG = MementoConfig()


@pytest.fixture
def attached(system):
    machine, kernel, process = system
    allocator = HardwarePageAllocator(kernel, CONFIG)
    region = MementoRegion.reserve(0x4000_0000_0000, CONFIG)
    allocator.attach(process, region)
    return machine, kernel, process, allocator, region


def test_attach_twice_rejected(attached):
    machine, kernel, process, allocator, region = attached
    with pytest.raises(ValueError):
        allocator.attach(process, region)


def test_alloc_arena_backs_header_page_only(attached):
    machine, kernel, process, allocator, region = attached
    va, header_pfn = allocator.alloc_arena(machine.core, process, 63)
    state = allocator.state_of(process)
    assert state.page_table.walk(va >> 12) == header_pfn
    # Body pages beyond the first are unbacked until first access.
    assert state.page_table.walk((va >> 12) + 1) is None


def test_alloc_arena_bumps_by_span(attached):
    machine, kernel, process, allocator, region = attached
    va1, _ = allocator.alloc_arena(machine.core, process, 5)
    va2, _ = allocator.alloc_arena(machine.core, process, 5)
    assert va2 - va1 == arena_span_bytes(5, CONFIG)
    assert va1 == region.class_base(5)


def test_different_classes_use_disjoint_subregions(attached):
    machine, kernel, process, allocator, region = attached
    va_a, _ = allocator.alloc_arena(machine.core, process, 0)
    va_b, _ = allocator.alloc_arena(machine.core, process, 63)
    assert region.size_class_of(va_a) == 0
    assert region.size_class_of(va_b) == 63


def test_pool_replenished_from_os(attached):
    machine, kernel, process, allocator, region = attached
    allocator.alloc_arena(machine.core, process, 0)
    assert machine.stats["memento.page.replenishments"] == 1
    assert machine.frames.live("memento") > 0
    assert len(allocator.pool) > 0


def test_walk_fills_lazily(attached):
    machine, kernel, process, allocator, region = attached
    va, _ = allocator.alloc_arena(machine.core, process, 63)
    body_page = va + PAGE_SIZE
    pfn = allocator.handle_walk(machine.core, process, body_page)
    assert pfn is not None
    assert machine.stats["memento.page.walks_filled"] == 1
    # A second walk finds the mapping without filling.
    assert allocator.handle_walk(machine.core, process, body_page) == pfn
    assert machine.stats["memento.page.walks_mapped"] == 1


def test_walk_records_walker_core(attached):
    machine, kernel, process, allocator, region = attached
    va, _ = allocator.alloc_arena(machine.core, process, 10)
    allocator.handle_walk(machine.core, process, va)
    assert machine.core.core_id in allocator.state_of(process).walker_cores


def test_walk_charges_no_kernel_cycles(attached):
    machine, kernel, process, allocator, region = attached
    va, _ = allocator.alloc_arena(machine.core, process, 63)
    before = machine.core.cycles_in("kernel_page")
    allocator.handle_walk(machine.core, process, va + PAGE_SIZE)
    # The lazy fill is pure hardware: no kernel cycles on this path
    # (replenishment already happened during alloc_arena).
    assert machine.core.cycles_in("kernel_page") == before
    assert machine.core.cycles_in("hw_page") > 0


def test_free_arena_returns_pages_to_pool(attached):
    machine, kernel, process, allocator, region = attached
    va, _ = allocator.alloc_arena(machine.core, process, 63)
    for page in range(1, 4):
        allocator.handle_walk(machine.core, process, va + page * PAGE_SIZE)
    pool_before = len(allocator.pool)
    freed = allocator.free_arena(machine.core, process, va, 63)
    assert freed == 4  # header + 3 touched body pages
    # The 4 leaves return to the pool, plus any page-table nodes emptied
    # by the teardown.
    assert len(allocator.pool) >= pool_before + 4
    assert allocator.state_of(process).page_table.walk(va >> 12) is None


def test_free_arena_shoots_down_tlb(attached):
    machine, kernel, process, allocator, region = attached
    va, _ = allocator.alloc_arena(machine.core, process, 0)
    pfn = allocator.handle_walk(machine.core, process, va)
    machine.core.tlb.insert(va >> 12, pfn)
    allocator.free_arena(machine.core, process, va, 0)
    assert machine.core.tlb.lookup(va >> 12) is None


def test_freed_span_is_recycled(attached):
    machine, kernel, process, allocator, region = attached
    va, _ = allocator.alloc_arena(machine.core, process, 2)
    allocator.free_arena(machine.core, process, va, 2)
    va2, _ = allocator.alloc_arena(machine.core, process, 2)
    assert va2 == va


def test_region_exhaustion_raises(system):
    machine, kernel, process = system
    tiny = MementoConfig(region_bytes=64 * PAGE_SIZE * 64)
    allocator = HardwarePageAllocator(kernel, tiny)
    region = MementoRegion.reserve(0x4000_0000_0000, tiny)
    allocator.attach(process, region)
    with pytest.raises(RegionExhaustedError):
        for _ in range(10_000):
            allocator.alloc_arena(machine.core, process, 63)


def test_release_process_reclaims_everything(attached):
    machine, kernel, process, allocator, region = attached
    for size_class in (0, 5, 20):
        va, _ = allocator.alloc_arena(machine.core, process, size_class)
        allocator.handle_walk(machine.core, process, va + PAGE_SIZE)
    released = allocator.release_process(machine.core, process)
    assert released >= 3
    assert machine.frames.live("user") == 0
    # Table pages all returned to the pool.
    assert machine.stats["memento.page.table_pages_live"] == 0
    # Releasing again is a no-op.
    assert allocator.release_process(machine.core, process) == 0


def test_return_pool_to_os(attached):
    machine, kernel, process, allocator, region = attached
    allocator.alloc_arena(machine.core, process, 0)
    free_before = kernel.buddy.free_frames
    returned = allocator.return_pool_to_os(machine.core)
    assert returned > 0
    assert kernel.buddy.free_frames == free_before + returned
    assert machine.frames.live("memento") == 0
    assert len(allocator.pool) == 0


def test_aac_hits_after_first_access(attached):
    machine, kernel, process, allocator, region = attached
    allocator.alloc_arena(machine.core, process, 3)
    allocator.alloc_arena(machine.core, process, 3)
    assert machine.stats["memento.aac.hits"] == 1
    assert machine.stats["memento.aac.misses"] == 1
    assert allocator.aac.hit_rate() == pytest.approx(0.5)


def test_aac_evicts_lru_class(attached):
    machine, kernel, process, allocator, region = attached
    capacity = CONFIG.aac_classes_per_core
    for size_class in range(capacity + 1):  # one more than fits
        allocator.alloc_arena(machine.core, process, size_class)
    allocator.alloc_arena(machine.core, process, 0)  # evicted -> miss
    assert machine.stats["memento.aac.misses"] == capacity + 2


def test_aac_uniformly_high_hit_rate_for_few_classes(attached):
    machine, kernel, process, allocator, region = attached
    # "a small number of size classes per workload is sufficient" (§3.2):
    # hammer 3 classes; the AAC should approach a 100% hit rate.
    for i in range(60):
        allocator.alloc_arena(machine.core, process, i % 3)
    assert allocator.aac.hit_rate() > 0.9
