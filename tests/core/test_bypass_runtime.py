"""Tests for the main-memory bypass engine and the Memento runtime."""

import pytest

from repro.core.bypass import COUNTER_MAX
from repro.core.config import MementoConfig
from repro.core.errors import MementoDoubleFreeError, NotAMementoAddressError
from repro.sim.cache import MemLevel

from tests.core.conftest import make_runtime


# ---------------------------------------------------------------- bypass


def test_first_touch_bypasses_dram(memento):
    machine, *_, runtime = memento
    addr = runtime.malloc(64)
    result = runtime.access_object(addr)
    assert result.level == MemLevel.LLC  # instantiated, not fetched
    assert machine.stats["memento.bypass.bypassed_lines"] == 1
    assert machine.stats["dram.read_bytes"] == 0


def test_second_touch_is_a_cache_hit(memento):
    machine, *_, runtime = memento
    addr = runtime.malloc(64)
    runtime.access_object(addr)
    result = runtime.access_object(addr)
    assert result.level == MemLevel.L1


def test_counter_advances_with_touches(memento):
    *_, runtime = memento
    a = runtime.malloc(512)
    runtime.access_object(a)
    header = runtime.context.object_allocator.header_of(a)
    assert header.bypass_counter == header.body_line_index(a) + 1


def test_lines_below_counter_do_not_bypass(memento):
    machine, *_, runtime = memento
    a = runtime.malloc(64)
    b = runtime.malloc(64)
    runtime.access_object(b)  # advances counter past a's line... no:
    # b's line > a's line, so touching b first covers a's index region.
    runtime.access_object(a)
    assert machine.stats["memento.bypass.regular_lines"] >= 1


def test_counter_decrement_on_free_allows_rebypass(memento):
    machine, *_, runtime = memento
    a = runtime.malloc(512)  # one object = 8 lines in class 63
    runtime.access_object(a)
    runtime.access_object(a + 448)  # touch the object's last line too
    runtime.free(a)
    b = runtime.malloc(512)
    assert b == a  # slot reuse
    runtime.access_object(b)
    assert machine.stats["memento.bypass.counter_decrements"] == 1


def test_bypass_disabled_fetches_from_dram(system):
    machine, kernel, process = system
    runtime = make_runtime(system, config=MementoConfig(bypass_enabled=False))
    addr = runtime.malloc(64)
    result = runtime.access_object(addr)
    assert result.level == MemLevel.DRAM
    assert machine.stats["memento.bypass.bypassed_lines"] == 0


def test_counter_saturates_at_11_bits(memento):
    *_, runtime = memento
    addr = runtime.malloc(8)
    header = runtime.context.object_allocator.header_of(addr)
    header.bypass_counter = COUNTER_MAX
    runtime.access_object(addr)
    assert header.bypass_counter == COUNTER_MAX


def test_access_outside_region_is_regular(memento):
    machine, *_, runtime = memento
    big = runtime.malloc(4096)  # large path, outside the region
    result = runtime.access_object(big)
    assert result.level == MemLevel.DRAM


# ---------------------------------------------------------------- runtime


def test_malloc_routes_by_size(memento):
    machine, *_, runtime = memento
    small = runtime.malloc(512)
    large = runtime.malloc(513)
    assert runtime.context.region.contains(small)
    assert not runtime.context.region.contains(large)
    assert machine.stats["memento.runtime.large_allocs"] == 1


def test_free_routes_by_region_membership(memento):
    machine, *_, runtime = memento
    small = runtime.malloc(100)
    large = runtime.malloc(10_000)
    runtime.free(small)
    runtime.free(large)
    assert machine.stats["memento.runtime.large_frees"] == 1
    assert machine.stats["memento.obj.frees"] == 1


def test_free_of_unknown_address_raises(memento):
    *_, runtime = memento
    with pytest.raises(NotAMementoAddressError):
        runtime.free(0xDEADBEEF)


def test_wrapper_cost_charged(memento):
    machine, *_, runtime = memento
    runtime.malloc(24)
    assert machine.core.cycles_in("hw_alloc") >= runtime.costs.wrapper


def test_go_frees_deferred_until_collect(system):
    machine, kernel, process = system
    runtime = make_runtime(system, language="go")
    addr = runtime.malloc(64)
    runtime.free(addr)
    assert machine.stats["memento.obj.frees"] == 0  # deferred
    flushed = runtime.collect()
    assert flushed == 1
    assert machine.stats["memento.obj.frees"] == 1


def test_go_gc_triggers_on_heap_growth(system):
    machine, kernel, process = system
    runtime = make_runtime(system, language="go")
    runtime._gc.min_heap_bytes = 8 * 1024
    runtime._gc._goal = 8 * 1024
    for _ in range(40):
        runtime.free(runtime.malloc(512))
    assert machine.stats["memento.runtime.gc_flushed_frees"] > 0


def test_go_double_free_detected_at_collect(system):
    machine, kernel, process = system
    runtime = make_runtime(system, language="go")
    addr = runtime.malloc(64)
    runtime.free(addr)
    runtime.free(addr)  # both deferred
    with pytest.raises(MementoDoubleFreeError):
        runtime.collect()


def test_teardown_then_kernel_exit_releases_all(memento):
    machine, kernel, process, runtime = memento
    for _ in range(100):
        runtime.access_object(runtime.malloc(128))
    runtime.teardown()
    kernel.exit_process(machine.core, process)
    assert machine.frames.live("user") == 0
    assert runtime.context.released


def test_context_switch_flushes_hot_and_reloads(memento):
    machine, kernel, process, runtime = memento
    runtime.malloc(24)
    other = kernel.create_process()
    kernel._running = process
    kernel.context_switch(machine.core, other)
    allocator = runtime.context.object_allocator
    assert allocator.hot.valid_entries == 0
    # Next allocation reloads the parked arena from the available list.
    runtime.malloc(24)
    assert machine.stats["memento.page.arenas_allocated"] == 1


def test_live_small_objects_counter(memento):
    *_, runtime = memento
    a = runtime.malloc(16)
    runtime.malloc(16)
    assert runtime.live_small_objects == 2
    runtime.free(a)
    assert runtime.live_small_objects == 1
