"""Shared fixtures for Memento core tests."""

import pytest

from repro.core.config import MementoConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine


@pytest.fixture
def system():
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    return machine, kernel, process


@pytest.fixture
def memento(system):
    machine, kernel, process = system
    config = MementoConfig()
    page_allocator = HardwarePageAllocator(kernel, config)
    runtime = MementoRuntime(
        kernel, process, machine.core, "python", page_allocator, config
    )
    return machine, kernel, process, runtime


def make_runtime(system, language="python", config=None):
    machine, kernel, process = system
    config = config or MementoConfig()
    page_allocator = HardwarePageAllocator(kernel, config)
    return MementoRuntime(
        kernel, process, machine.core, language, page_allocator, config
    )
