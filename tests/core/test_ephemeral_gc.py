"""Tests for the §4 ephemeral-aware GC extension."""

import pytest

from repro.core.config import MementoConfig
from repro.core.ephemeral_gc import EphemeralAwareGc, EphemeralGcConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine


def make_gc(**cfg):
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    config = MementoConfig()
    runtime = MementoRuntime(
        kernel, process, machine.core, "cpp",
        HardwarePageAllocator(kernel, config), config,
    )
    gc = EphemeralAwareGc(runtime, EphemeralGcConfig(**cfg))
    return machine, runtime, gc


def test_unknown_death_rejected():
    machine, runtime, gc = make_gc()
    with pytest.raises(ValueError):
        gc.on_dead(0x1234)


def test_classes_start_optimistically_ephemeral():
    machine, runtime, gc = make_gc()
    assert gc.is_ephemeral(3)


def test_ephemeral_class_learned_from_death_ratio():
    machine, runtime, gc = make_gc(
        warmup_allocs=10, proactive_threshold=1_000_000
    )
    # Class 1 (16 B): everything dies.
    for _ in range(50):
        gc.on_dead(gc.malloc(16))
    # Class 7 (64 B): nothing dies.
    for _ in range(50):
        gc.malloc(64)
    assert gc.is_ephemeral(1)
    assert not gc.is_ephemeral(7)
    assert gc.ephemeral_classes() == [1]


def test_proactive_collection_triggers_at_threshold():
    machine, runtime, gc = make_gc(proactive_threshold=8)
    for _ in range(8):
        gc.on_dead(gc.malloc(32))
    assert machine.stats["memento.egc.proactive_collections"] == 1
    assert machine.stats["memento.egc.proactive_frees"] == 8
    assert gc.pending_dead == 0
    assert runtime.live_small_objects == 0


def test_non_ephemeral_garbage_waits_for_deferred_pacing():
    machine, runtime, gc = make_gc(
        warmup_allocs=10,
        proactive_threshold=4,
        deferred_threshold_bytes=1 << 30,
    )
    # Teach the collector class 7 is long-lived.
    keep = [gc.malloc(64) for _ in range(50)]
    # A few late deaths in that class stay pending (no proactive free).
    gc.on_dead(keep[0])
    gc.on_dead(keep[1])
    assert gc.pending_dead == 2
    assert machine.stats["memento.egc.proactive_frees"] == 0
    assert gc.collect_deferred() == 2


def test_deferred_collection_triggers_on_bytes():
    machine, runtime, gc = make_gc(
        warmup_allocs=10,
        proactive_threshold=10_000,
        ephemeral_death_ratio=2.0,  # nothing classifies as ephemeral
        deferred_threshold_bytes=512,
    )
    for _ in range(20):
        gc.on_dead(gc.malloc(64))
    assert machine.stats["memento.egc.deferred_collections"] >= 1


def test_collect_all_drains_everything():
    machine, runtime, gc = make_gc(
        proactive_threshold=1_000, deferred_threshold_bytes=1 << 30
    )
    for _ in range(30):
        gc.on_dead(gc.malloc(24))
    assert gc.pending_dead == 30
    assert gc.collect_all() == 30
    assert gc.pending_dead == 0


def test_live_tracked_accounting():
    machine, runtime, gc = make_gc(proactive_threshold=1_000)
    addrs = [gc.malloc(40) for _ in range(10)]
    assert gc.live_tracked == 10
    for addr in addrs[:4]:
        gc.on_dead(addr)
    assert gc.live_tracked == 6


def test_proactive_frees_hit_the_hot():
    """The point of the extension: proactive frees land while arenas are
    HOT-resident, so they hit; the same deaths deferred until much later
    (after the class has cycled arenas) miss more."""
    machine, runtime, gc = make_gc(proactive_threshold=16)
    for _ in range(512):
        gc.on_dead(gc.malloc(16))
    allocator = runtime.context.object_allocator
    assert allocator.hot.free_hit_rate() > 0.95
