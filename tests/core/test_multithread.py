"""Tests for multi-threaded Memento (§3.4)."""

import pytest

from repro.core.config import MementoConfig
from repro.core.errors import (
    MementoDoubleFreeError,
    NotAMementoAddressError,
    RegionExhaustedError,
)
from repro.core.multithread import MultiThreadMementoRuntime
from repro.core.page_allocator import HardwarePageAllocator
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import MachineParams


def make_runtime(threads=2, mode="hardware", cores=2, batch=8):
    machine = Machine(MachineParams(num_cores=cores))
    kernel = Kernel(machine)
    process = kernel.create_process()
    config = MementoConfig()
    runtime = MultiThreadMementoRuntime(
        kernel,
        process,
        HardwarePageAllocator(kernel, config),
        num_threads=threads,
        config=config,
        cross_thread_mode=mode,
        software_batch_size=batch,
    )
    return machine, runtime


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        make_runtime(mode="magic")


def test_threads_allocate_from_disjoint_windows():
    machine, runtime = make_runtime(threads=4)
    addrs = {
        tid: [runtime.malloc(tid, 48) for _ in range(50)]
        for tid in range(4)
    }
    page_state = runtime.page_allocator.state_of(runtime.process)
    for tid, batch in addrs.items():
        for addr in batch:
            size_class, base = runtime.region.arena_base_of(addr)
            assert page_state.owner_thread(size_class, base) == tid
    # No overlap anywhere.
    flat = [a for batch in addrs.values() for a in batch]
    assert len(set(flat)) == len(flat)


def test_local_free_is_ordinary():
    machine, runtime = make_runtime()
    addr = runtime.malloc(0, 32)
    runtime.free(0, addr)
    assert machine.stats["memento.mt.local_frees"] == 1
    assert machine.stats["memento.mt.cross_thread_frees"] == 0
    # Slot reusable by the owner.
    assert runtime.malloc(0, 32) == addr


def test_cross_thread_free_detected_by_address():
    machine, runtime = make_runtime()
    addr = runtime.malloc(0, 64)
    runtime.free(1, addr)
    assert machine.stats["memento.mt.cross_thread_frees"] == 1


def test_hardware_remote_free_clears_slot():
    machine, runtime = make_runtime(mode="hardware")
    addr = runtime.malloc(0, 64)
    runtime.free(1, addr)
    assert machine.stats["memento.mt.hardware_remote_frees"] == 1
    assert runtime.live_objects == 0
    # The owner can allocate the slot again.
    assert runtime.malloc(0, 64) == addr


def test_hardware_remote_free_invalidates_owner_hot():
    machine, runtime = make_runtime(mode="hardware")
    addr = runtime.malloc(0, 64)
    owner_alloc = runtime.threads[0].allocator
    assert owner_alloc.hot.lookup(7).valid
    runtime.free(1, addr)
    assert not owner_alloc.hot.lookup(7).valid
    assert machine.stats["memento.mt.hot_invalidations"] == 1
    # The parked arena is reachable through the available list.
    assert len(owner_alloc.available[7]) == 1


def test_hardware_remote_double_free_raises():
    machine, runtime = make_runtime(mode="hardware")
    addr = runtime.malloc(0, 64)
    runtime.free(1, addr)
    with pytest.raises(MementoDoubleFreeError):
        runtime.free(1, addr)


def test_software_mode_batches_until_full():
    machine, runtime = make_runtime(mode="software", batch=4)
    addrs = [runtime.malloc(0, 32) for _ in range(6)]
    for addr in addrs[:3]:
        runtime.free(1, addr)
    assert runtime.pending_nonlocal() == 3
    assert runtime.live_objects == 6  # nothing reclaimed yet
    runtime.free(1, addrs[3])  # 4th fills the batch
    assert runtime.pending_nonlocal() == 0
    assert machine.stats["memento.mt.software_batch_flushes"] == 1
    assert machine.stats["memento.mt.software_batched_frees"] == 4
    assert runtime.live_objects == 2


def test_flush_all_drains_buffers():
    machine, runtime = make_runtime(mode="software", batch=100)
    addrs = [runtime.malloc(0, 32) for _ in range(5)]
    for addr in addrs:
        runtime.free(1, addr)
    assert runtime.pending_nonlocal() == 5
    assert runtime.flush_all() == 5
    assert runtime.live_objects == 0


def test_free_outside_region_rejected():
    machine, runtime = make_runtime()
    with pytest.raises(NotAMementoAddressError):
        runtime.free(0, 0x1234)


def test_large_request_rejected():
    machine, runtime = make_runtime()
    with pytest.raises(ValueError):
        runtime.malloc(0, 4096)


def test_too_many_threads_for_largest_class():
    # Class 63 (33-page arenas) fits only a few arenas per 1 MB window;
    # asking for more threads than arenas must fail loudly at use.
    machine, runtime = make_runtime(threads=16)
    with pytest.raises(RegionExhaustedError):
        runtime.malloc(15, 512)


def test_threads_pin_round_robin_to_cores():
    machine, runtime = make_runtime(threads=4, cores=2)
    assert runtime.threads[0].allocator.core.core_id == 0
    assert runtime.threads[1].allocator.core.core_id == 1
    assert runtime.threads[2].allocator.core.core_id == 0


def test_concurrent_churn_consistency():
    """Interleaved allocs and remote frees leave exact accounting."""
    import random

    machine, runtime = make_runtime(threads=3, cores=3, mode="hardware")
    rng = random.Random(5)
    live = []
    for step in range(600):
        if live and rng.random() < 0.5:
            owner, addr = live.pop(rng.randrange(len(live)))
            freer = rng.randrange(3)
            runtime.free(freer, addr)
        else:
            tid = rng.randrange(3)
            live.append((tid, runtime.malloc(tid, rng.choice([16, 40, 64]))))
    assert runtime.live_objects == len(live)


def test_software_vs_hardware_cost_shape():
    """Batched software frees amortize the handler; hardware pays a
    coherence round-trip per free. Both stay far below a software-lock
    per-free path."""
    def cross_free_cycles(mode):
        machine, runtime = make_runtime(mode=mode, batch=32)
        addrs = [runtime.malloc(0, 64) for _ in range(64)]
        core1 = runtime.threads[1].allocator.core
        before = core1.cycles_in("hw_free")
        for addr in addrs:
            runtime.free(1, addr)
        runtime.flush_all()
        return core1.cycles_in("hw_free") - before

    software = cross_free_cycles("software")
    hardware = cross_free_cycles("hardware")
    assert software > 0 and hardware > 0
    # Per-object, both are tens-to-low-hundreds of cycles.
    assert software / 64 < 600
    assert hardware / 64 < 600
