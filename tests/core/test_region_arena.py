"""Tests for the Memento region carve and arena header machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import ArenaHeader, HEADER_BYTES, arena_span_bytes
from repro.core.config import MementoConfig
from repro.core.region import MementoRegion
from repro.sim.params import PAGE_SIZE

CONFIG = MementoConfig()
REGION = MementoRegion.reserve(0x4000_0000_0000, CONFIG)


# ---------------------------------------------------------------- region


def test_region_carved_evenly_into_64_classes():
    assert CONFIG.per_class_region_bytes * 64 == CONFIG.region_bytes
    assert REGION.class_base(0) == REGION.mrs
    assert (
        REGION.class_base(63)
        == REGION.mrs + 63 * CONFIG.per_class_region_bytes
    )


def test_region_base_must_be_page_aligned():
    with pytest.raises(ValueError):
        MementoRegion.reserve(0x1001, CONFIG)


def test_contains_boundaries():
    assert REGION.contains(REGION.mrs)
    assert REGION.contains(REGION.mre - 1)
    assert not REGION.contains(REGION.mre)
    assert not REGION.contains(REGION.mrs - 1)


def test_size_class_of_recovers_class():
    for size_class in (0, 5, 63):
        base = REGION.class_base(size_class)
        assert REGION.size_class_of(base) == size_class
        assert REGION.size_class_of(base + 100) == size_class


def test_size_class_of_rejects_outside():
    with pytest.raises(ValueError):
        REGION.size_class_of(0x1000)


def test_class_base_rejects_bad_class():
    with pytest.raises(ValueError):
        REGION.class_base(64)


def test_arena_base_of_rounds_down_to_span():
    size_class = 2  # 24 B objects
    span = arena_span_bytes(size_class, CONFIG)
    class_base = REGION.class_base(size_class)
    addr = class_base + 3 * span + 1000
    recovered_class, base = REGION.arena_base_of(addr)
    assert recovered_class == size_class
    assert base == class_base + 3 * span


def test_arenas_per_class_positive():
    # Even the largest class (33-page arenas in a 1 MB sub-region) fits
    # several arenas; VA recycling makes that ample (§3.2 + DESIGN.md).
    for size_class in (0, 31, 63):
        assert REGION.arenas_per_class(size_class) >= 4


# ---------------------------------------------------------------- arena span


def test_span_is_page_multiple():
    for size_class in range(64):
        assert arena_span_bytes(size_class, CONFIG) % PAGE_SIZE == 0


def test_smallest_class_fits_one_page():
    # 256 x 8 B + header = 2112 B -> a single page (§3.2).
    assert arena_span_bytes(0, CONFIG) == PAGE_SIZE


def test_largest_class_span():
    # 256 x 512 B + 64 B header -> 33 pages.
    assert arena_span_bytes(63, CONFIG) == 33 * PAGE_SIZE


# ---------------------------------------------------------------- header


def make_header(size_class=2, objects=256):
    return ArenaHeader(
        va=REGION.class_base(size_class),
        size_class=size_class,
        pa=0x1000,
        objects=objects,
    )


def test_find_free_slot_scans_lowest_first():
    header = make_header()
    assert header.find_free_slot() == 0
    header.set_slot(0)
    assert header.find_free_slot() == 1
    header.set_slot(1)
    header.clear_slot(0)
    assert header.find_free_slot() == 0


def test_set_slot_twice_raises():
    header = make_header()
    header.set_slot(3)
    with pytest.raises(ValueError):
        header.set_slot(3)


def test_clear_unset_slot_returns_false():
    header = make_header()
    assert header.clear_slot(5) is False


def test_full_and_empty_flags():
    header = make_header(objects=4)
    assert header.is_empty and not header.is_full
    for index in range(4):
        header.set_slot(index)
    assert header.is_full and not header.is_empty
    assert header.find_free_slot() is None
    assert header.live_objects == 4


def test_slot_index_bounds_checked():
    header = make_header(objects=8)
    with pytest.raises(ValueError):
        header.set_slot(8)
    with pytest.raises(ValueError):
        header.set_slot(-1)


def test_object_addr_index_roundtrip():
    header = make_header(size_class=5)  # 48 B objects
    for index in (0, 1, 100, 255):
        addr = header.object_addr(index, CONFIG)
        assert header.object_index(addr, CONFIG) == index
    assert header.object_addr(0, CONFIG) == header.va + HEADER_BYTES


def test_object_index_rejects_misaligned():
    header = make_header(size_class=5)
    addr = header.object_addr(1, CONFIG)
    with pytest.raises(ValueError):
        header.object_index(addr + 3, CONFIG)
    with pytest.raises(ValueError):
        header.object_index(header.va, CONFIG)  # header line


def test_region_math_agrees_with_object_layout():
    """Any object address maps back to its arena via pure region math."""
    size_class = 7
    span = arena_span_bytes(size_class, CONFIG)
    arena_base = REGION.class_base(size_class) + 11 * span
    header = ArenaHeader(va=arena_base, size_class=size_class, pa=0)
    addr = header.object_addr(200, CONFIG)
    assert REGION.arena_base_of(addr) == (size_class, arena_base)


@settings(max_examples=80, deadline=None)
@given(
    size_class=st.integers(min_value=0, max_value=63),
    arena_index=st.integers(min_value=0, max_value=50),
    object_index=st.integers(min_value=0, max_value=255),
)
def test_address_recovery_property(size_class, arena_index, object_index):
    """Recovering (class, arena, index) from the address is exact for the
    whole geometry — the §3.2 bit-math invariant."""
    span = arena_span_bytes(size_class, CONFIG)
    arena_index %= REGION.arenas_per_class(size_class)
    base = REGION.class_base(size_class) + arena_index * span
    header = ArenaHeader(va=base, size_class=size_class, pa=0)
    addr = header.object_addr(object_index, CONFIG)
    assert REGION.arena_base_of(addr) == (size_class, base)
    assert header.object_index(addr, CONFIG) == object_index


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(st.integers(min_value=0, max_value=255), max_size=100)
)
def test_bitmap_population_count_property(ops):
    """live_objects always equals the number of distinct set slots."""
    header = make_header()
    expected = set()
    for slot in ops:
        if slot in expected:
            header.clear_slot(slot)
            expected.discard(slot)
        else:
            header.set_slot(slot)
            expected.add(slot)
    assert header.live_objects == len(expected)
    for slot in range(256):
        assert header.slot_is_set(slot) == (slot in expected)
