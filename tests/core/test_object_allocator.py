"""Tests for the hardware object allocator (Fig. 6 state machines)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MementoConfig
from repro.core.errors import MementoDoubleFreeError
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine

from tests.core.conftest import make_runtime


def oa(runtime):
    return runtime.context.object_allocator


def test_alloc_returns_in_region_address(memento):
    machine, kernel, process, runtime = memento
    addr = oa(runtime).obj_alloc(24)
    assert runtime.context.region.contains(addr)


def test_alloc_size_bounds(memento):
    *_, runtime = memento
    with pytest.raises(ValueError):
        oa(runtime).obj_alloc(0)
    with pytest.raises(ValueError):
        oa(runtime).obj_alloc(513)
    assert oa(runtime).obj_alloc(512)  # boundary is fine
    assert oa(runtime).obj_alloc(1)


def test_allocations_are_distinct_and_spaced(memento):
    *_, runtime = memento
    addrs = [oa(runtime).obj_alloc(40) for _ in range(300)]
    assert len(set(addrs)) == 300
    in_arena = sorted(addrs)[:2]
    assert in_arena[1] - in_arena[0] == 40


def test_first_alloc_is_a_hot_miss_then_hits(memento):
    machine, *_, runtime = memento
    oa(runtime).obj_alloc(16)
    assert machine.stats["memento.hot.alloc_misses"] == 1
    oa(runtime).obj_alloc(16)
    assert machine.stats["memento.hot.alloc_hits"] == 1


def test_hot_hit_costs_two_cycles_plus_issue(memento):
    machine, *_, runtime = memento
    oa(runtime).obj_alloc(16)
    before = machine.core.cycles_in("hw_alloc")
    oa(runtime).obj_alloc(16)
    assert machine.core.cycles_in("hw_alloc") - before == (
        machine.costs.isa_issue + machine.costs.hot_hit
    )


def test_arena_exhaustion_requests_new_arena(memento):
    machine, *_, runtime = memento
    for _ in range(257):
        oa(runtime).obj_alloc(8)
    assert machine.stats["memento.page.arenas_allocated"] == 2
    assert oa(runtime).live_arenas == 2
    # The exhausted arena went onto the full list.
    assert len(oa(runtime).full[0]) == 1


def test_free_hit_clears_and_allows_reuse(memento):
    *_, runtime = memento
    addr = oa(runtime).obj_alloc(32)
    oa(runtime).obj_free(addr)
    assert oa(runtime).obj_alloc(32) == addr


def test_double_free_raises(memento):
    *_, runtime = memento
    addr = oa(runtime).obj_alloc(32)
    oa(runtime).obj_free(addr)
    with pytest.raises(MementoDoubleFreeError):
        oa(runtime).obj_free(addr)


def test_free_of_unallocated_arena_raises(memento):
    *_, runtime = memento
    with pytest.raises(MementoDoubleFreeError):
        oa(runtime).obj_free(runtime.context.region.mrs + 64)


def test_free_miss_via_memory_header(memento):
    machine, *_, runtime = memento
    first_batch = [oa(runtime).obj_alloc(8) for _ in range(256)]
    [oa(runtime).obj_alloc(8) for _ in range(10)]  # resident arena is now #2
    oa(runtime).obj_free(first_batch[0])
    assert machine.stats["memento.hot.free_misses"] == 1
    # The full arena moved back to the available list.
    assert len(oa(runtime).available[0]) == 1


def test_free_miss_empty_arena_released(memento):
    machine, *_, runtime = memento
    first_batch = [oa(runtime).obj_alloc(8) for _ in range(256)]
    [oa(runtime).obj_alloc(8) for _ in range(10)]
    for addr in first_batch:
        oa(runtime).obj_free(addr)
    assert machine.stats["memento.obj.arenas_released"] == 1
    assert machine.stats["memento.page.arenas_freed"] == 1
    assert oa(runtime).live_arenas == 1


def test_arena_va_recycled_after_release(memento):
    machine, *_, runtime = memento
    first_batch = [oa(runtime).obj_alloc(8) for _ in range(256)]
    base_of_first = min(first_batch)
    [oa(runtime).obj_alloc(8) for _ in range(10)]
    for addr in first_batch:
        oa(runtime).obj_free(addr)
    # Exhaust arena 2 to force a third arena: the freed VA is reused.
    for _ in range(246):
        oa(runtime).obj_alloc(8)
    new_addr = oa(runtime).obj_alloc(8)
    assert min(new_addr, base_of_first) == base_of_first
    assert machine.stats["memento.page.arenas_allocated"] == 3


def test_eager_refill_hides_switch_cost(system):
    machine, kernel, process = system
    runtime = make_runtime(system, config=MementoConfig(eager_refill=True))
    for _ in range(256):
        oa(runtime).obj_alloc(8)
    before = machine.core.cycles_in("hw_alloc")
    oa(runtime).obj_alloc(8)  # miss, but prefetched
    visible = machine.core.cycles_in("hw_alloc") - before
    assert visible == machine.costs.isa_issue + machine.costs.hot_hit
    assert machine.stats["memento.obj.hidden_miss_cycles"] > 0


def test_no_eager_refill_pays_switch_cost(system):
    machine, kernel, process = system
    runtime = make_runtime(system, config=MementoConfig(eager_refill=False))
    for _ in range(256):
        oa(runtime).obj_alloc(8)
    before = machine.core.cycles_in("hw_alloc")
    oa(runtime).obj_alloc(8)
    visible = machine.core.cycles_in("hw_alloc") - before
    assert visible > machine.costs.isa_issue + machine.costs.hot_hit


def test_flush_for_switch_parks_arenas_on_lists(memento):
    machine, kernel, process, runtime = memento
    oa(runtime).obj_alloc(8)
    oa(runtime).obj_alloc(16)
    flushed = oa(runtime).flush_for_switch(machine.core)
    assert flushed == 2
    assert oa(runtime).hot.valid_entries == 0
    assert len(oa(runtime).available[0]) == 1
    assert len(oa(runtime).available[1]) == 1
    # Allocation after the flush reloads from the available list.
    oa(runtime).obj_alloc(8)
    assert machine.stats["memento.page.arenas_allocated"] == 2


def test_header_of_maps_objects_not_headers(memento):
    *_, runtime = memento
    addr = oa(runtime).obj_alloc(24)
    header = oa(runtime).header_of(addr)
    assert header is not None
    assert oa(runtime).header_of(header.va) is None  # header line
    assert oa(runtime).header_of(0x1000) is None  # outside region


def test_occupancy_fraction(memento):
    *_, runtime = memento
    assert oa(runtime).occupancy_fraction() == 1.0
    addrs = [oa(runtime).obj_alloc(8) for _ in range(128)]
    assert oa(runtime).occupancy_fraction() == pytest.approx(0.5)
    for addr in addrs[:64]:
        oa(runtime).obj_free(addr)
    assert oa(runtime).occupancy_fraction() == pytest.approx(0.25)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_interleaving_consistency_property(seed):
    """Random alloc/free sequences: unique addresses, exact live
    accounting, frees always succeed exactly once."""
    import random

    rng = random.Random(seed)
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    config = MementoConfig()
    runtime = MementoRuntime(
        kernel,
        process,
        machine.core,
        "cpp",
        HardwarePageAllocator(kernel, config),
        config,
    )
    allocator = runtime.context.object_allocator
    live = set()
    for _ in range(400):
        if live and rng.random() < 0.5:
            addr = rng.choice(sorted(live))
            live.discard(addr)
            allocator.obj_free(addr)
        else:
            addr = allocator.obj_alloc(rng.randint(1, 512))
            assert addr not in live
            live.add(addr)
    # `headers` holds every live arena (HOT-resident ones included), so
    # bitmap population must match the harness's live set exactly.
    assert len(live) == sum(
        h.live_objects for h in allocator.headers.values()
    )
