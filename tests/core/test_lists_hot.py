"""Tests for the arena lists and the Hardware Object Table."""

import pytest

from repro.core.arena import ArenaHeader
from repro.core.config import MementoConfig
from repro.core.hot import HardwareObjectTable
from repro.core.lists import ArenaList
from repro.sim.stats import Stats


def header(va):
    return ArenaHeader(va=va, size_class=0, pa=va)


@pytest.fixture
def arena_list():
    stats = Stats()
    return ArenaList("available", stats.scoped("list")), stats


def test_push_pop_lifo(arena_list):
    lst, _ = arena_list
    a, b = header(0x1000), header(0x2000)
    lst.push_head(a)
    lst.push_head(b)
    assert len(lst) == 2
    assert lst.pop_head() is b
    assert lst.pop_head() is a
    assert lst.pop_head() is None


def test_push_sets_list_name(arena_list):
    lst, _ = arena_list
    a = header(0x1000)
    lst.push_head(a)
    assert a.list_name == "available"
    lst.remove(a)
    assert a.list_name is None


def test_remove_middle_relinks(arena_list):
    lst, _ = arena_list
    a, b, c = header(0x1000), header(0x2000), header(0x3000)
    for h in (a, b, c):
        lst.push_head(h)
    lst.remove(b)
    assert list(lst) == [c, a]
    assert c.next is a and a.prev is c


def test_double_push_rejected(arena_list):
    lst, _ = arena_list
    a = header(0x1000)
    lst.push_head(a)
    with pytest.raises(ValueError):
        lst.push_head(a)


def test_remove_not_on_list_rejected(arena_list):
    lst, _ = arena_list
    with pytest.raises(ValueError):
        lst.remove(header(0x9000))


def test_pointer_updates_counted(arena_list):
    lst, stats = arena_list
    a, b = header(0x1000), header(0x2000)
    assert lst.push_head(a) == 1  # just the head pointer
    assert lst.push_head(b) == 2  # head + old head's prev
    assert stats["list.pointer_updates"] == 3
    assert stats["list.pushes"] == 2


def test_contains_and_iter(arena_list):
    lst, _ = arena_list
    a, b = header(0x1000), header(0x2000)
    lst.push_head(a)
    assert a in lst and b not in lst
    assert list(lst) == [a]


# ---------------------------------------------------------------- HOT


@pytest.fixture
def hot():
    stats = Stats()
    return HardwareObjectTable(MementoConfig(), stats.scoped("hot")), stats


def test_hot_has_64_entries(hot):
    table, _ = hot
    assert len(table.entries) == 64
    assert all(not entry.valid for entry in table.entries)


def test_fill_and_lookup_direct_mapped(hot):
    table, _ = hot
    h = header(0x1000)
    assert table.fill(3, h) is None
    assert table.lookup(3).header is h
    assert not table.lookup(4).valid


def test_fill_returns_replaced_header(hot):
    table, _ = hot
    old, new = header(0x1000), header(0x2000)
    table.fill(0, old)
    assert table.fill(0, new) is old
    assert table.lookup(0).header is new


def test_hit_rate_accounting(hot):
    table, _ = hot
    table.record_alloc(True)
    table.record_alloc(True)
    table.record_alloc(False)
    assert table.alloc_hit_rate() == pytest.approx(2 / 3)
    table.record_free(False)
    assert table.free_hit_rate() == 0.0


def test_hit_rate_vacuous_is_one(hot):
    table, _ = hot
    assert table.alloc_hit_rate() == 1.0
    assert table.free_hit_rate() == 1.0


def test_flush_counts_valid_entries(hot):
    table, stats = hot
    table.fill(0, header(0x1000))
    table.fill(5, header(0x2000))
    assert table.flush() == 2
    assert table.valid_entries == 0
    assert stats["hot.flushed_entries"] == 2
    assert table.flush() == 0  # idempotent
