"""Regression tests for bugs surfaced (or guarded) by the audit
subsystem. Each test names the audit rule that flags the pre-fix
behaviour, so a reintroduction fails here *and* in the audit tier."""

import pytest

from repro.audit import AuditContext
from repro.audit.invariants import ArenaListMembership, PoolBalance
from repro.core.arena import HEADER_BYTES, ArenaHeader
from repro.core.bypass import COUNTER_MAX
from repro.core.errors import MementoDoubleFreeError
from repro.core.lists import ArenaList
from repro.core.multithread import MultiThreadMementoRuntime
from repro.core.config import MementoConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import LINE_SIZE


# -- bypass-counter-saturation (11-bit counter, §3.3) ------------------------


def test_saturated_counter_line_takes_regular_path(memento):
    """Audit rule: bypass-counter-saturation / bypass-counter-range.

    Pre-fix, a line at index >= COUNTER_MAX with a saturated counter was
    still bypassed — but a saturated counter can no longer prove the line
    untouched, so bypassing may zero live data.
    """
    machine, *_, runtime = memento
    addr = runtime.malloc(64)
    header = runtime.context.object_allocator.header_of(addr)
    header.bypass_counter = COUNTER_MAX
    engine = runtime.context.bypass
    before = machine.stats["memento.bypass.bypassed_lines"]
    engine.access(
        machine.core,
        header,
        header.va + COUNTER_MAX * LINE_SIZE,
        write=False,
    )
    assert machine.stats["memento.bypass.bypassed_lines"] == before
    assert header.bypass_counter == COUNTER_MAX  # no 11-bit wraparound


def test_counter_saturates_exactly_at_max(memento):
    """Audit rule: bypass-counter-range (counter must stay in 11 bits)."""
    machine, *_, runtime = memento
    addr = runtime.malloc(64)
    header = runtime.context.object_allocator.header_of(addr)
    header.bypass_counter = COUNTER_MAX - 1
    engine = runtime.context.bypass
    engine.access(
        machine.core,
        header,
        header.va + (COUNTER_MAX - 1) * LINE_SIZE,
        write=False,
    )
    assert header.bypass_counter == COUNTER_MAX


# -- bypass-soundness (bitmap-guided counter decrement on free) --------------


def test_free_counter_drop_is_bitmap_guided(memento):
    """Audit rule: bypass-soundness.

    Two 48-byte objects share the cache line at their boundary. Freeing
    the higher one used to drop the counter to its *first* line — the
    shared line — so a later re-allocation would bypass (zero) the
    surviving neighbour's written data. The decrement must stop at the
    line just past the highest still-allocated slot.
    """
    *_, runtime = memento
    a = runtime.malloc(48)
    b = runtime.malloc(48)
    allocator = runtime.context.object_allocator
    header = allocator.header_of(a)
    assert allocator.header_of(b) is header  # same arena, adjacent slots
    obj = header.obj_size
    assert obj == 48
    runtime.access_object(a, write=True)
    runtime.access_object(b + obj - 1, write=True)  # top touched line
    last_line_b = (b - header.va + obj - 1) >> 6
    assert header.bypass_counter == last_line_b + 1
    runtime.free(b)
    # Bitmap-guided floor: just past slot a's last body line.
    expected = (HEADER_BYTES + obj - 1) // LINE_SIZE + 1
    naive = (b - header.va) >> 6  # the pre-fix drop target
    assert expected > naive
    assert header.bypass_counter == expected


# -- arena-list-membership (list surgery bookkeeping) ------------------------


def make_header(va, size_class=5):
    return ArenaHeader(va=va, size_class=size_class, pa=va, objects=4)


def test_remove_rejects_header_on_another_list():
    """Audit rule: arena-list-membership.

    Pre-fix, ``remove`` silently spliced a header out of whichever list
    its prev/next happened to point into, corrupting both lists.
    """
    stats = Machine().stats
    available = ArenaList("available", stats.scoped("t.available"))
    full = ArenaList("full", stats.scoped("t.full"))
    header = make_header(0x1000)
    available.push_head(header)
    with pytest.raises(ValueError):
        full.remove(header)
    with pytest.raises(ValueError):
        full.remove(make_header(0x2000))  # unlisted header
    assert len(available) == 1 and available.head is header


def test_push_head_resets_stale_prev_link():
    """Audit rule: arena-list-membership (head's prev must be None)."""
    stats = Machine().stats
    lst = ArenaList("available", stats.scoped("t.stale"))
    other = make_header(0x1000)
    header = make_header(0x2000)
    header.prev = other  # stale pointer from earlier corrupted surgery
    lst.push_head(header)
    assert header.prev is None
    assert lst.head is header


def mt_runtime(threads=2):
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    config = MementoConfig()
    runtime = MultiThreadMementoRuntime(
        kernel,
        process,
        HardwarePageAllocator(kernel, config),
        num_threads=threads,
        config=config,
        cross_thread_mode="hardware",
    )
    return machine, runtime


def test_remote_free_abort_leaves_lists_consistent():
    """Audit rule: arena-list-membership.

    The hardware remote-free path must clear the bitmap slot *before*
    parking the header on a list: pre-fix, a double-free abort left the
    still-full arena stranded on the available list.
    """
    machine, runtime = mt_runtime()
    addr = runtime.malloc(0, 48)
    runtime.free(1, addr)
    with pytest.raises(MementoDoubleFreeError):
        runtime.free(1, addr)
    ctx = AuditContext(
        machine,
        memento=True,
        config=runtime.config,
        allocators=[state.allocator for state in runtime.threads],
        page_allocator=runtime.page_allocator,
    )
    assert ArenaListMembership().check(ctx) == []


# -- pool-balance (interior nodes reclaimed exactly once) --------------------


def test_release_root_requires_empty_table(memento):
    """Audit rule: pool-balance (root frame freed exactly once)."""
    machine, kernel, process, runtime = memento
    runtime.malloc(64)
    state = runtime.context.page_allocator.state_of(process)
    with pytest.raises(ValueError):
        state.page_table.release_root()


def test_pool_balance_across_populate_sweep(memento):
    """Audit rule: pool-balance.

    Pre-fix, ``clear()`` freed interior page-table nodes with a bulk
    counter adjustment that drifted from the frame source, so a full
    alloc/free/release sweep left ``table_pages`` out of lockstep with
    the pool ledger.
    """
    machine, kernel, process, runtime = memento
    addrs = [runtime.malloc(size) for size in (48, 128, 512) * 40]
    for victim in addrs[::2]:
        runtime.free(victim)
    ctx = AuditContext(
        machine,
        memento=True,
        config=runtime.config,
        allocators=[runtime.context.object_allocator],
        page_allocator=runtime.context.page_allocator,
    )
    assert PoolBalance().check(ctx) == []
    released = runtime.context.page_allocator.release_process(
        machine.core, process
    )
    assert released > 0
    assert PoolBalance().check(ctx) == []
