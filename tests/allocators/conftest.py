"""Shared fixtures for allocator tests."""

import pytest

from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine


@pytest.fixture
def system():
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    return machine, kernel, process
