"""Tests for the pymalloc model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.pymalloc import ARENA_BYTES, POOL_BYTES, PymallocAllocator
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine


def make(system):
    machine, kernel, process = system
    return machine, PymallocAllocator(kernel, process)


def test_first_alloc_maps_an_arena(system):
    machine, alloc = make(system)
    alloc.malloc(machine.core, 16)
    assert machine.stats["alloc.pymalloc.arenas_mapped"] == 1
    assert machine.stats["kernel.syscall.mmap_bytes"] == ARENA_BYTES


def test_same_class_allocs_share_a_pool(system):
    machine, alloc = make(system)
    a = alloc.malloc(machine.core, 16)
    b = alloc.malloc(machine.core, 16)
    assert a // POOL_BYTES == b // POOL_BYTES
    assert b - a == 16


def test_different_classes_use_different_pools(system):
    machine, alloc = make(system)
    a = alloc.malloc(machine.core, 16)
    b = alloc.malloc(machine.core, 48)
    assert a // POOL_BYTES != b // POOL_BYTES


def test_fast_path_hits_after_warmup(system):
    machine, alloc = make(system)
    alloc.malloc(machine.core, 32)
    before = machine.stats["alloc.pymalloc.alloc_fast"]
    slow_before = machine.stats["alloc.pymalloc.alloc_slow"]
    alloc.malloc(machine.core, 32)
    assert machine.stats["alloc.pymalloc.alloc_fast"] == before + 1
    assert machine.stats["alloc.pymalloc.alloc_slow"] == slow_before


def test_free_then_alloc_reuses_slot(system):
    machine, alloc = make(system)
    a = alloc.malloc(machine.core, 40)
    alloc.malloc(machine.core, 40)  # keep pool non-empty
    alloc.free(machine.core, a)
    c = alloc.malloc(machine.core, 40)
    assert c == a


def test_full_pool_spills_to_next(system):
    machine, alloc = make(system)
    capacity = POOL_BYTES // 512
    addrs = [alloc.malloc(machine.core, 512) for _ in range(capacity + 1)]
    pools = {addr // POOL_BYTES for addr in addrs}
    assert len(pools) == 2


def test_empty_arena_is_unmapped(system):
    machine, alloc = make(system)
    addrs = [alloc.malloc(machine.core, 64) for _ in range(10)]
    for addr in addrs:
        alloc.free(machine.core, addr)
    assert machine.stats["alloc.pymalloc.arenas_unmapped"] == 1
    assert len(alloc.arenas) == 0


def test_arena_not_unmapped_while_any_object_lives(system):
    machine, alloc = make(system)
    addrs = [alloc.malloc(machine.core, 64) for _ in range(10)]
    for addr in addrs[:-1]:
        alloc.free(machine.core, addr)
    assert machine.stats["alloc.pymalloc.arenas_unmapped"] == 0
    assert len(alloc.arenas) == 1


def test_arena_exhaustion_maps_another(system):
    machine, alloc = make(system)
    pools_per_arena = ARENA_BYTES // POOL_BYTES
    per_pool = POOL_BYTES // 512
    total = pools_per_arena * per_pool + 1
    for _ in range(total):
        alloc.malloc(machine.core, 512)
    assert machine.stats["alloc.pymalloc.arenas_mapped"] == 2


def test_custom_arena_size(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process, arena_bytes=64 * 1024)
    alloc.malloc(machine.core, 16)
    assert machine.stats["kernel.syscall.mmap_bytes"] == 64 * 1024


def test_utilization_reflects_occupancy(system):
    machine, alloc = make(system)
    assert alloc.utilization() == 1.0  # vacuous before any pools
    alloc.malloc(machine.core, 8)
    util = alloc.utilization()
    assert 0 < util < 1


def test_alloc_charges_user_cycles(system):
    machine, alloc = make(system)
    alloc.malloc(machine.core, 16)
    assert machine.core.cycles_in("user_alloc") > 0
    addr = alloc.malloc(machine.core, 16)
    alloc.free(machine.core, addr)
    assert machine.core.cycles_in("user_free") > 0


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=512), min_size=1, max_size=80
    )
)
def test_no_overlapping_allocations_property(sizes):
    """Live allocations never overlap, for any request sequence."""
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    alloc = PymallocAllocator(kernel, process)
    intervals = []
    for size in sizes:
        addr = alloc.malloc(machine.core, size)
        intervals.append((addr, addr + size))
    intervals.sort()
    for (a_start, a_end), (b_start, _) in zip(intervals, intervals[1:]):
        assert a_end <= b_start


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_alloc_free_interleave_property(seed):
    """Random alloc/free interleavings leave the allocator consistent."""
    import random

    rng = random.Random(seed)
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    alloc = PymallocAllocator(kernel, process)
    live = []
    for _ in range(120):
        if live and rng.random() < 0.45:
            alloc.free(machine.core, live.pop(rng.randrange(len(live))))
        else:
            live.append(alloc.malloc(machine.core, rng.randint(1, 512)))
    for addr in live:
        alloc.free(machine.core, addr)
    assert alloc.live_bytes == 0
    assert len(alloc.arenas) == 0  # everything returned to the OS
