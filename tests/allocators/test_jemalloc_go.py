"""Tests for the jemalloc and Go allocator models."""

import pytest

from repro.allocators.goalloc import (
    GcPolicy,
    GoAllocator,
    HEAP_ARENA_BYTES,
    SPAN_BYTES,
)
from repro.allocators.jemalloc import (
    CHUNK_BYTES,
    JemallocAllocator,
    PREFAULT_PAGES,
)


# ---------------------------------------------------------------- jemalloc


def test_jemalloc_init_prefaults(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    alloc.initialize(machine.core)
    assert process.user_pages_live == PREFAULT_PAGES
    assert machine.stats["kernel.fault.faults"] == PREFAULT_PAGES


def test_jemalloc_init_is_idempotent(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    alloc.initialize(machine.core)
    alloc.initialize(machine.core)
    assert machine.stats["alloc.jemalloc.prefaulted_pages"] == PREFAULT_PAGES


def test_jemalloc_first_malloc_triggers_init(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    alloc.malloc(machine.core, 32)
    assert machine.stats["kernel.syscall.mmap_bytes"] == CHUNK_BYTES


def test_jemalloc_roundtrip_and_reuse(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    a = alloc.malloc(machine.core, 64)
    alloc.malloc(machine.core, 64)
    alloc.free(machine.core, a)
    assert alloc.malloc(machine.core, 64) == a


def test_jemalloc_empty_run_retires_without_munmap(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    a = alloc.malloc(machine.core, 128)
    alloc.free(machine.core, a)
    assert machine.stats["alloc.jemalloc.munmaps"] == 0
    # Retired run base is reused by a different size class.
    b = alloc.malloc(machine.core, 256)
    assert b == a


def test_jemalloc_utilization(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    alloc.malloc(machine.core, 8)
    assert 0 < alloc.utilization() < 0.05  # one object in a 16 KB run


def test_jemalloc_keeps_chunk_mapped(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    addr = alloc.malloc(machine.core, 16)
    alloc.free(machine.core, addr)
    assert alloc.mapped_bytes >= CHUNK_BYTES


# ---------------------------------------------------------------- goalloc


def test_go_maps_large_heap_arena(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)
    alloc.malloc(machine.core, 24)
    assert machine.stats["kernel.syscall.mmap_bytes"] == HEAP_ARENA_BYTES


def test_go_free_defers_to_gc(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)
    addr = alloc.malloc(machine.core, 24)
    alloc.free(machine.core, addr)
    assert alloc.garbage_objects == 1
    assert machine.core.cycles_in("user_free") == 0  # nothing swept yet


def test_go_gc_reclaims_garbage(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)
    addrs = [alloc.malloc(machine.core, 64) for _ in range(10)]
    for addr in addrs[:6]:
        alloc.free(machine.core, addr)
    reclaimed = alloc.collect(machine.core)
    assert reclaimed == 6
    assert alloc.garbage_objects == 0
    assert machine.core.cycles_in("user_free") > 0


def test_go_gc_slot_reuse_after_collect(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)
    a = alloc.malloc(machine.core, 48)
    alloc.malloc(machine.core, 48)
    alloc.free(machine.core, a)
    alloc.collect(machine.core)
    assert alloc.malloc(machine.core, 48) == a


def test_go_gc_triggers_when_heap_doubles(system):
    machine, kernel, process = system
    alloc = GoAllocator(
        kernel, process, gc=GcPolicy(min_heap_bytes=16 * 1024)
    )
    for _ in range(40):
        addr = alloc.malloc(machine.core, 512)
        alloc.free(machine.core, addr)
    assert alloc.gc_runs >= 1
    assert machine.stats["alloc.goalloc.gc_reclaimed"] > 0


def test_go_short_function_never_collects(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)  # default 4 MB floor
    for _ in range(100):
        addr = alloc.malloc(machine.core, 64)
        alloc.free(machine.core, addr)
    assert alloc.gc_runs == 0


def test_go_spans_are_size_segregated(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)
    a = alloc.malloc(machine.core, 16)
    b = alloc.malloc(machine.core, 256)
    assert a // SPAN_BYTES != b // SPAN_BYTES


def test_go_teardown_drops_garbage(system):
    machine, kernel, process = system
    alloc = GoAllocator(kernel, process)
    addr = alloc.malloc(machine.core, 32)
    alloc.free(machine.core, addr)
    alloc.teardown(machine.core)
    assert alloc.garbage_objects == 0


# ---------------------------------------------------------------- large path


def test_huge_allocation_mmaps_directly(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    alloc.initialize(machine.core)
    before = machine.stats["kernel.syscall.mmap_calls"]
    addr = alloc.malloc(machine.core, 256 * 1024)
    assert machine.stats["kernel.syscall.mmap_calls"] == before + 1
    before_unmap = machine.stats["kernel.syscall.munmap_calls"]
    alloc.free(machine.core, addr)
    assert machine.stats["kernel.syscall.munmap_calls"] == before_unmap + 1


def test_midsize_allocation_uses_heap_bins(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)
    a = alloc.malloc(machine.core, 2048)
    alloc.free(machine.core, a)
    b = alloc.malloc(machine.core, 2048)
    assert b == a  # bin reuse
