"""Additional allocator tests: the large path, GC pacing, purging."""

import pytest

from repro.allocators.base import DoubleFreeError
from repro.allocators.glibc_large import (
    HEAP_CHUNK,
    LargeAllocator,
    MMAP_THRESHOLD,
)
from repro.allocators.goalloc import GcPolicy
from repro.allocators.jemalloc import JemallocAllocator
from repro.allocators.mallacc import ACCELERATED_FRACTION, MallaccAllocator


# ---------------------------------------------------------------- large path


def test_midsize_rounding_to_64b(system):
    machine, kernel, process = system
    alloc = LargeAllocator(kernel, process)
    a = alloc.malloc(machine.core, 700)
    b = alloc.malloc(machine.core, 700)
    assert (b - a) % 64 == 0
    assert b - a >= 704


def test_page_rounding_above_page_size(system):
    machine, kernel, process = system
    alloc = LargeAllocator(kernel, process)
    a = alloc.malloc(machine.core, 5000)
    b = alloc.malloc(machine.core, 5000)
    assert b - a == 8192  # two-page granularity


def test_heap_chunk_grows_on_demand(system):
    machine, kernel, process = system
    alloc = LargeAllocator(kernel, process)
    per_chunk = HEAP_CHUNK // 65536
    for _ in range(per_chunk + 1):
        alloc.malloc(machine.core, 65536 - 64)
    assert machine.stats["kernel.syscall.mmap_calls"] == 2


def test_huge_threshold_boundary(system):
    machine, kernel, process = system
    alloc = LargeAllocator(kernel, process)
    below = alloc.malloc(machine.core, MMAP_THRESHOLD - 4096)
    assert below in {a for a in alloc.live}
    mmaps_before = machine.stats["kernel.syscall.mmap_calls"]
    alloc.malloc(machine.core, MMAP_THRESHOLD)
    assert machine.stats["kernel.syscall.mmap_calls"] == mmaps_before + 1


def test_large_double_free_detected(system):
    machine, kernel, process = system
    alloc = LargeAllocator(kernel, process)
    addr = alloc.malloc(machine.core, 4096)
    alloc.free(machine.core, addr)
    with pytest.raises(DoubleFreeError):
        alloc.free(machine.core, addr)


def test_bin_reuse_is_size_segregated(system):
    machine, kernel, process = system
    alloc = LargeAllocator(kernel, process)
    small = alloc.malloc(machine.core, 1024)
    alloc.free(machine.core, small)
    big = alloc.malloc(machine.core, 8192)  # different bin: no reuse
    assert big != small
    again = alloc.malloc(machine.core, 1024)  # same bin: reuse
    assert again == small


# ---------------------------------------------------------------- GC policy


def test_gc_policy_triggers_at_goal():
    policy = GcPolicy(trigger_ratio=2.0, min_heap_bytes=1000)
    assert not policy.on_alloc(999)
    assert policy.on_alloc(1)  # hits the floor


def test_gc_policy_repaces_after_collection():
    policy = GcPolicy(trigger_ratio=2.0, min_heap_bytes=100)
    policy.on_alloc(100)
    policy.after_gc(live_bytes=400)
    # New goal: 800 bytes; current live 400.
    assert not policy.on_alloc(399)
    assert policy.on_alloc(1)


def test_gc_policy_floor_respected():
    policy = GcPolicy(trigger_ratio=2.0, min_heap_bytes=5000)
    policy.after_gc(live_bytes=10)  # goal would be 20 -> floor wins
    assert not policy.on_alloc(4000)
    assert policy.on_alloc(1000)


# ---------------------------------------------------------------- purging


def test_purge_moves_dirty_to_clean_and_refaults(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(
        kernel, process, purge_after=1, run_bytes=4096
    )
    # Fill and drain one run completely to retire it.
    addrs = [alloc.malloc(machine.core, 512) for _ in range(8)]
    for addr in addrs:
        alloc.free(machine.core, addr)
    assert machine.stats["alloc.jemalloc.purges"] >= 1
    assert machine.stats["kernel.syscall.madvise_calls"] >= 1
    faults_before = machine.stats.get("kernel.fault.faults", 0)
    # Reuse carves on the purged base: the next touch refaults.
    new = alloc.malloc(machine.core, 512)
    assert new == addrs[0]


def test_no_purge_without_decay(system):
    machine, kernel, process = system
    alloc = JemallocAllocator(kernel, process)  # purge_after=None
    addrs = [alloc.malloc(machine.core, 512) for _ in range(64)]
    for addr in addrs:
        alloc.free(machine.core, addr)
    assert machine.stats.get("alloc.jemalloc.purges", 0) == 0


# ---------------------------------------------------------------- Mallacc


def test_mallacc_charges_residual_fast_path(system):
    machine, kernel, process = system
    mallacc = MallaccAllocator(kernel, process)
    mallacc.malloc(machine.core, 64)
    accelerated = machine.core.cycles_in("user_alloc")

    machine2 = Machine = None  # avoid confusion; build a fresh system
    from repro.kernel.kernel import Kernel
    from repro.sim.machine import Machine

    machine2 = Machine()
    kernel2 = Kernel(machine2)
    process2 = kernel2.create_process()
    plain = JemallocAllocator(kernel2, process2)
    plain.malloc(machine2.core, 64)
    full = machine2.core.cycles_in("user_alloc")
    # Same slow-path init costs; the fast-path delta is the accelerated
    # fraction.
    assert accelerated < full
    saved = full - accelerated
    fast = kernel.machine.costs.user("cpp").alloc_fast
    assert saved == pytest.approx(fast * ACCELERATED_FRACTION, abs=2)
