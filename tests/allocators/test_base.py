"""Tests for shared allocator machinery (size classes, routing, errors)."""

import pytest

from repro.allocators.base import (
    SMALL_THRESHOLD,
    DoubleFreeError,
    align8,
    size_class_index,
)
from repro.allocators.pymalloc import PymallocAllocator


def test_align8_rounds_up():
    assert align8(1) == 8
    assert align8(8) == 8
    assert align8(9) == 16
    assert align8(511) == 512


def test_align8_rejects_nonpositive():
    with pytest.raises(ValueError):
        align8(0)
    with pytest.raises(ValueError):
        align8(-5)


def test_size_class_index_covers_64_classes():
    assert size_class_index(1) == 0
    assert size_class_index(8) == 0
    assert size_class_index(9) == 1
    assert size_class_index(512) == 63


def test_size_class_index_rejects_large():
    with pytest.raises(ValueError):
        size_class_index(SMALL_THRESHOLD + 1)


def test_large_requests_route_to_large_path(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process)
    addr = alloc.malloc(machine.core, 4096)
    assert alloc.live[addr].size_class == -1
    assert machine.stats["alloc.glibc_large.allocs"] == 1
    assert machine.stats["alloc.pymalloc.allocs"] == 0  # small path untouched
    alloc.free(machine.core, addr)
    assert addr not in alloc.live


def test_double_free_detected(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process)
    addr = alloc.malloc(machine.core, 64)
    alloc.free(machine.core, addr)
    with pytest.raises(DoubleFreeError):
        alloc.free(machine.core, addr)


def test_free_of_never_allocated_detected(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process)
    with pytest.raises(DoubleFreeError):
        alloc.free(machine.core, 0xABCDEF)


def test_zero_size_malloc_rejected(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process)
    with pytest.raises(ValueError):
        alloc.malloc(machine.core, 0)


def test_live_bytes_tracks_outstanding(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process)
    a = alloc.malloc(machine.core, 100)
    b = alloc.malloc(machine.core, 50)
    assert alloc.live_bytes == 150
    alloc.free(machine.core, a)
    assert alloc.live_bytes == 50
    alloc.free(machine.core, b)
    assert alloc.live_bytes == 0


def test_teardown_clears_registry(system):
    machine, kernel, process = system
    alloc = PymallocAllocator(kernel, process)
    alloc.malloc(machine.core, 24)
    alloc.teardown(machine.core)
    assert alloc.live_bytes == 0
