"""Fig. 3 — allocation lifetime (malloc-free distance) distribution.

Paper: bimodal — 71 % of allocations free within 16 same-class
allocations, 27 % are long-lived (OS-reclaimed at exit). C++ is mostly
short-lived, Python short-lived with a long-lived minority, Golang and
the platform long-lived, data processing short-lived.
"""

from repro.analysis.characterize import (
    LIFETIME_BIN_LABELS,
    lifetime_distribution,
)
from repro.analysis.report import render_grouped

from conftest import emit


def test_fig03_lifetimes(benchmark, traces_by_language):
    def compute():
        return {
            group: lifetime_distribution(traces)
            for group, traces in traces_by_language.items()
        }

    distributions = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        render_grouped(
            LIFETIME_BIN_LABELS,
            {
                group: [x * 100 for x in dist]
                for group, dist in distributions.items()
            },
            title="Fig. 3 — Allocation lifetime distribution "
            "(% of allocations; [257-Inf] includes never-freed)",
            value_fmt=".1f",
        )
    )
    # Shape assertions mirroring the paper's per-language reading.
    assert distributions["cpp"][0] > 0.55, "C++ should be short-lived"
    assert distributions["go"][16] > 0.55, "Go should be long-lived (no GC)"
    assert distributions["platform"][16] > 0.5, "platform long-lived"
    assert distributions["dataproc"][0] > 0.5, "data proc short-lived"
    # Python: short-dominated with a visible long-lived mode (bimodal).
    assert distributions["python"][0] > 0.25
    assert distributions["python"][16] > 0.15
    emit(
        "  paper: 71% of allocations free within 16 same-class allocations;"
        " 27% long-lived"
    )
