"""§6.7 — comparison with idealized Mallacc on DeathStarBench.

Paper: an idealized Mallacc (zero-latency, always-hit malloc cache for
userspace fast paths) achieves 5-10 % (8 % average); Memento roughly
doubles it with 12-20 % (16 % average), because it also removes the
kernel path and slow paths, and supports non-C++ runtimes.
"""

from repro.analysis.report import render_table
from repro.harness.sweeps import mallacc_study

from conftest import emit


def test_cmp_mallacc(benchmark):
    result = benchmark.pedantic(mallacc_study, rounds=1, iterations=1)
    emit(
        render_table(
            ["workload", "idealized Mallacc", "Memento"],
            [
                [name, row["mallacc_speedup"], row["memento_speedup"]]
                for name, row in result.items()
            ],
            title="§6.7 — Idealized Mallacc vs Memento (DeathStarBench)",
        )
    )
    emit("  paper: Mallacc 5-10% (avg 8%); Memento 12-20% (avg 16%)")
    avg = result["avg"]
    assert 1.03 < avg["mallacc_speedup"] < 1.13
    assert avg["memento_speedup"] > avg["mallacc_speedup"] + 0.03
    for name, row in result.items():
        assert row["memento_speedup"] > row["mallacc_speedup"], name
