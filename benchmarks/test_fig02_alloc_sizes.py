"""Fig. 2 — allocation size distribution (512 B bins).

Paper: allocations are small — 93 % under 512 B overall; 98 % for data
processing; 99 % for the serverless platform; large allocations are rare.
"""

from repro.analysis.characterize import SIZE_BIN_LABELS, size_distribution
from repro.analysis.report import render_grouped

from conftest import emit

PAPER_SMALL_FRACTION = {
    "python": 0.93,
    "cpp": 0.95,
    "go": 0.94,
    "dataproc": 0.98,
    "platform": 0.99,
}


def test_fig02_allocation_sizes(benchmark, traces_by_language):
    def compute():
        return {
            group: size_distribution(traces)
            for group, traces in traces_by_language.items()
        }

    distributions = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        render_grouped(
            SIZE_BIN_LABELS,
            {
                group: [dist[i] * 100 for i in range(len(SIZE_BIN_LABELS))]
                for group, dist in distributions.items()
            },
            title="Fig. 2 — Allocation size distribution (% of allocations)",
            value_fmt=".1f",
        )
    )
    for group, dist in distributions.items():
        measured = dist[0]
        paper = PAPER_SMALL_FRACTION[group]
        emit(f"  small fraction {group}: paper {paper:.2f}, measured {measured:.2f}")
        # Shape assertion: small allocations dominate everywhere.
        assert measured > 0.85, group
