"""Fig. 10 — normalized memory bandwidth usage reduction.

Paper: Memento reduces DRAM traffic by 30 % on average for functions
(UM 31 %, CM 35 %); the main-memory bypass contributes 5 % on average
and up to 34 %. Platform gains are smaller.
"""

from repro.analysis.report import render_grouped

from conftest import emit


def test_fig10_bandwidth_reduction(benchmark, all_results):
    def compute():
        return {
            r.spec.name: (r.bandwidth_reduction, r.bypass_bandwidth_share)
            for r in all_results
        }

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(rows)
    emit(
        render_grouped(
            labels,
            {
                "total_reduction": [rows[l][0] for l in labels],
                "bypass_share": [rows[l][1] for l in labels],
            },
            title="Fig. 10 — Normalized memory bandwidth usage reduction "
            "(fraction of baseline traffic; bypass share highlighted)",
        )
    )
    emit("  paper: 30% average reduction for functions; bypass 5% avg")

    func = [r for r in all_results if r.spec.category == "function"]
    avg = sum(r.bandwidth_reduction for r in func) / len(func)
    assert 0.2 < avg < 0.45, avg
    # Every function workload sees a real reduction.
    assert all(r.bandwidth_reduction > 0.05 for r in func)
    # Platform gains are smaller than the function average (§6.2).
    pltf = [r for r in all_results if r.spec.category == "platform"]
    pltf_avg = sum(r.bandwidth_reduction for r in pltf) / len(pltf)
    assert pltf_avg < avg
