"""§6.6 sensitivity studies and the §6.1 iso-storage comparison.

* MAP_POPULATE: Go gains ~3 % but inflates footprint 8.6x; Python/C++
  see no meaningful speedup at ~+9.6 % memory. Eager population is not
  cost-efficient under the AWS pricing model.
* Multi-process: four time-sharing instances; the HOT flush on context
  switch is negligible.
* Allocator tuning: enlarging software arenas changes Memento's speedup
  by less than 1 %.
* Fragmentation: ~3.68 % of arena slots inactive, within ±2 % of the
  software allocators.
* Cold start: speedups remain 7-22 %.
* Iso-storage: granting the HOT's SRAM to a 9-way L1D yields ~3 % vs
  Memento's 28 % on dh.
"""

from repro.analysis.report import render_table
from repro.harness.sweeps import (
    coldstart_study,
    fragmentation_study,
    iso_storage_study,
    multiprocess_study,
    populate_study,
    tuning_study,
)
from repro.workloads.registry import get_workload

from conftest import emit


def test_sens_populate(benchmark):
    result = benchmark.pedantic(populate_study, rounds=1, iterations=1)
    emit(
        render_table(
            ["workload", "language", "populate speedup", "footprint ratio"],
            [
                [name, row["language"], row["speedup"],
                 row["footprint_ratio"]]
                for name, row in result.items()
            ],
            title="§6.6 — MAP_POPULATE: speedup and footprint vs lazy "
            "baseline (paper: Go +3% at 8.6x; Py/C++ ~0% at +9.6%)",
        )
    )
    go = next(v for v in result.values() if v["language"] == "go")
    assert go["footprint_ratio"] > 5.0, "Go's huge arena mmaps blow up"
    # Paper sees +3% for Go; our cold-touch model prices the populated
    # pages' first accesses at DRAM latency, so populate lands neutral to
    # negative here — the cost-efficiency conclusion is unchanged.
    assert 0.6 < go["speedup"] < 1.15
    python = next(v for v in result.values() if v["language"] == "python")
    assert 0.8 < python["speedup"] < 1.1


def test_sens_multiprocess(benchmark):
    result = benchmark.pedantic(
        multiprocess_study, kwargs={"trials": 4}, rounds=1, iterations=1
    )
    emit(
        render_table(
            ["metric", "value"],
            [[k, v] for k, v in result.items()],
            title="§6.6 — Multi-process time sharing: HOT flush overhead "
            "(paper: negligible)",
            floatfmt=".5f",
        )
    )
    assert result["mean_flush_fraction"] < 0.005


def test_sens_tuning(benchmark):
    result = benchmark.pedantic(tuning_study, rounds=1, iterations=1)
    emit(
        render_table(
            ["arena bytes", "memento speedup", "baseline mmaps"],
            [
                [size, row["speedup"], row["mmap_calls"]]
                for size, row in result.items()
            ],
            title="§6.6 — Software allocator arena-size tuning "
            "(paper: <1% speedup change, fewer mmaps)",
        )
    )
    speedups = [row["speedup"] for row in result.values()]
    assert max(speedups) - min(speedups) < 0.02


def test_sens_fragmentation(benchmark):
    result = benchmark.pedantic(fragmentation_study, rounds=1, iterations=1)
    emit(
        render_table(
            ["workload", "memento inactive", "software inactive"],
            [
                [name, row["memento_inactive"], row["software_inactive"]]
                for name, row in result.items()
            ],
            title="§6.6 — Fragmentation: inactive slot fraction "
            "(paper: 3.68% avg, within ±2% of software)",
        )
    )
    values = [row["memento_inactive"] for row in result.values()]
    mean_inactive = sum(values) / len(values)
    # Paper: 3.68% inactive, within ±2% of software. At our trace scale
    # the actively-filling arena per class dominates the slot count
    # (~200 live objects per class against 256-slot arenas), inflating
    # the inactive fraction for Memento and for jemalloc's page runs
    # alike; see EXPERIMENTS.md. The invariant preserved: Memento's
    # fragmentation stays in the same regime as the software allocators
    # and well below pathological (arenas are recycled, not leaked).
    assert mean_inactive < 0.75
    softwares = [row["software_inactive"] for row in result.values()]
    assert abs(mean_inactive - sum(softwares) / len(softwares)) < 0.55


def test_sens_coldstart(benchmark, function_results):
    specs = [get_workload(n) for n in ("html", "aes", "US", "html-go")]
    result = benchmark.pedantic(
        coldstart_study, args=(specs,), rounds=1, iterations=1
    )
    warm = {
        r.spec.name: r.speedup
        for r in function_results
        if r.spec.name in result
    }
    emit(
        render_table(
            ["workload", "warm speedup", "cold speedup"],
            [[name, warm[name], cold] for name, cold in result.items()],
            title="§6.6 — Cold start: speedups with container setup "
            "included (paper: 7-22%)",
        )
    )
    for name, cold in result.items():
        assert 1.04 < cold < 1.25, (name, cold)
        assert cold < warm[name], "setup dilutes the speedup"


def test_sens_iso_storage(benchmark):
    result = benchmark.pedantic(iso_storage_study, rounds=1, iterations=1)
    emit(
        render_table(
            ["configuration", "speedup on dh"],
            [
                ["9-way L1D (HOT SRAM to cache)",
                 result["iso_storage_speedup"]],
                ["Memento", result["memento_speedup"]],
            ],
            title="§6.1 — Iso-storage comparison "
            "(paper: ~3% vs 28% on dh)",
        )
    )
    assert result["iso_storage_speedup"] < 1.05
    assert result["memento_speedup"] > 1.2
