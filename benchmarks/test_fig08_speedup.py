"""Fig. 8 — normalized speedup of Memento over the baseline.

Paper: functions 8-28 % (16 % average); data processing 5-11 %;
platform operations 4-7 %.
"""

from repro.analysis.report import render_series
from repro.harness.experiment import geometric_mean

from conftest import emit

PAPER_TARGETS = {
    "html": 1.28, "ir": 1.10, "bfs": 1.15, "dna": 1.12, "aes": 1.20,
    "fr": 1.10, "jl": 1.13, "jd": 1.12, "mk": 1.15,
    "US": 1.15, "UM": 1.17, "CM": 1.18, "MI": 1.14,
    "html-go": 1.18, "bfs-go": 1.14, "aes-go": 1.12,
    "Redis": 1.11, "Memcached": 1.065, "Silo": 1.075, "SQLite3": 1.05,
    "up": 1.05, "deploy": 1.07, "invoke": 1.04,
}


def test_fig08_speedup(benchmark, all_results):
    def compute():
        return {r.spec.name: r.speedup for r in all_results}

    speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(speedups) + ["func-avg", "data-avg", "pltf-avg"]
    func = [r for r in all_results if r.spec.category == "function"]
    data = [r for r in all_results if r.spec.category == "dataproc"]
    pltf = [r for r in all_results if r.spec.category == "platform"]
    func_avg = geometric_mean([r.speedup for r in func])
    data_avg = geometric_mean([r.speedup for r in data])
    pltf_avg = geometric_mean([r.speedup for r in pltf])
    values = list(speedups.values()) + [func_avg, data_avg, pltf_avg]
    emit(render_series(labels, values, title="Fig. 8 — Normalized speedup"))
    emit(f"  paper: functions 8-28% (avg 16%); data 5-11%; platform 4-7%")

    # Every workload within its Fig. 8 neighbourhood.
    for name, target in PAPER_TARGETS.items():
        measured = speedups[name]
        assert abs(measured - target) < 0.05, (name, measured, target)
    assert 1.10 < func_avg < 1.22
    assert 1.04 < data_avg < 1.12
    assert 1.03 < pltf_avg < 1.08
    # Who wins where: html is the function peak, dataproc tops at Redis.
    assert speedups["html"] == max(speedups[n] for n in PAPER_TARGETS
                                   if n not in ("Redis", "Memcached",
                                                "Silo", "SQLite3"))
    assert speedups["Redis"] == max(
        speedups[n] for n in ("Redis", "Memcached", "Silo", "SQLite3")
    )
