"""Shared fixtures for the evaluation benchmarks.

Each benchmark regenerates one table or figure of the paper and prints it
(captured into bench_output.txt by the top-level run). Workload runs all
route through the shared :class:`~repro.harness.engine.ExperimentEngine`:
the full 3-run set per workload executes once per pytest session
regardless of how many figures consume it, persists in the on-disk
result cache across sessions, and — with ``REPRO_JOBS=N`` — fans out
across worker processes on the first (cold) run.
"""

import pytest

from repro.harness.engine import get_default_engine
from repro.harness.experiment import run_all
from repro.resolve import resolve_jobs
from repro.workloads.registry import (
    DATAPROC_WORKLOADS,
    FUNCTION_WORKLOADS,
    PLATFORM_WORKLOADS,
)
from repro.workloads.synth import generate_trace


def _jobs() -> int:
    """Worker processes for the evaluation batch (``REPRO_JOBS``)."""
    return resolve_jobs()


@pytest.fixture(scope="session")
def engine():
    """The session's shared experiment engine (memo + disk cache)."""
    return get_default_engine()


@pytest.fixture(scope="session")
def function_results(engine):
    return run_all(FUNCTION_WORKLOADS, engine=engine, jobs=_jobs())


@pytest.fixture(scope="session")
def dataproc_results(engine):
    return run_all(DATAPROC_WORKLOADS, engine=engine, jobs=_jobs())


@pytest.fixture(scope="session")
def platform_results(engine):
    return run_all(PLATFORM_WORKLOADS, engine=engine, jobs=_jobs())


@pytest.fixture(scope="session")
def all_results(function_results, dataproc_results, platform_results):
    return function_results + dataproc_results + platform_results


@pytest.fixture(scope="session")
def traces_by_language():
    """Traces grouped the way §2.2 groups them."""
    groups = {"python": [], "cpp": [], "go": []}
    for spec in FUNCTION_WORKLOADS:
        groups[spec.language].append(generate_trace(spec))
    groups["dataproc"] = [generate_trace(s) for s in DATAPROC_WORKLOADS]
    groups["platform"] = [generate_trace(s) for s in PLATFORM_WORKLOADS]
    return groups


def emit(text: str) -> None:
    """Print a rendered artifact with spacing that survives -s capture."""
    print("\n" + text + "\n")
