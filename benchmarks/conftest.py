"""Shared fixtures for the evaluation benchmarks.

Each benchmark regenerates one table or figure of the paper and prints it
(captured into bench_output.txt by the top-level run). Workload runs are
memoized inside :mod:`repro.harness.experiment`, so the full 3-run set per
workload executes once per pytest session regardless of how many figures
consume it.
"""

import pytest

from repro.harness.experiment import run_all
from repro.workloads.registry import (
    DATAPROC_WORKLOADS,
    FUNCTION_WORKLOADS,
    PLATFORM_WORKLOADS,
)
from repro.workloads.synth import generate_trace


@pytest.fixture(scope="session")
def function_results():
    return run_all(FUNCTION_WORKLOADS)


@pytest.fixture(scope="session")
def dataproc_results():
    return run_all(DATAPROC_WORKLOADS)


@pytest.fixture(scope="session")
def platform_results():
    return run_all(PLATFORM_WORKLOADS)


@pytest.fixture(scope="session")
def all_results(function_results, dataproc_results, platform_results):
    return function_results + dataproc_results + platform_results


@pytest.fixture(scope="session")
def traces_by_language():
    """Traces grouped the way §2.2 groups them."""
    groups = {"python": [], "cpp": [], "go": []}
    for spec in FUNCTION_WORKLOADS:
        groups[spec.language].append(generate_trace(spec))
    groups["dataproc"] = [generate_trace(s) for s in DATAPROC_WORKLOADS]
    groups["platform"] = [generate_trace(s) for s in PLATFORM_WORKLOADS]
    return groups


def emit(text: str) -> None:
    """Print a rendered artifact with spacing that survives -s capture."""
    print("\n" + text + "\n")
