"""Fig. 13 — arena list operation frequency.

Paper: fewer than 1 % of allocations and 0.6 % of frees perform
available/full list surgery; relative to all memory accesses the list
operations are negligible (<=0.01 %).
"""

from repro.analysis.report import render_grouped

from conftest import emit


def test_fig13_arena_list_ops(benchmark, all_results):
    def compute():
        return {
            r.spec.name: (r.memento.list_ops_alloc, r.memento.list_ops_free)
            for r in all_results
        }

    rates = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(rates)
    emit(
        render_grouped(
            labels,
            {
                "alloc-side %": [rates[l][0] * 100 for l in labels],
                "free-side %": [rates[l][1] * 100 for l in labels],
            },
            title="Fig. 13 — Arena list operations "
            "(% of obj-alloc / obj-free that touch a list)",
            value_fmt=".3f",
        )
    )
    emit("  paper: <1% of allocs, <0.6% of frees")

    assert all(r.memento.list_ops_alloc < 0.01 for r in all_results)
    assert all(r.memento.list_ops_free < 0.015 for r in all_results)
    func = [r for r in all_results if r.spec.category == "function"]
    free_avg = sum(r.memento.list_ops_free for r in func) / len(func)
    assert free_avg < 0.008
