"""Fig. 11 — normalized aggregate memory usage (user / kernel / total).

Paper: functions save 15 % total (userspace −10 %, kernel −28 %);
Memento *increases* userspace usage for Python/Go (no page sharing
between size classes) while cutting kernel metadata (dh > 60 %);
DeathStarBench C++ saves 41 % userspace (jemalloc pool under-utilization).

Known divergence (EXPERIMENTS.md): at our scaled-down heap sizes the
Memento page table is larger than the baseline's compact kernel
metadata, so the kernel bar exceeds 1.0 here; at paper-scale heaps the
baseline's metadata grows with the heap while Memento's stays bounded
by the used size classes.
"""

from repro.analysis.report import render_grouped

from conftest import emit


def test_fig11_memory_usage(benchmark, all_results):
    def compute():
        return {r.spec.name: r.memory_usage_ratios() for r in all_results}

    ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(ratios)
    emit(
        render_grouped(
            labels,
            {
                key: [ratios[label][key] for label in labels]
                for key in ("user", "kernel", "total")
            },
            title="Fig. 11 — Normalized aggregate memory usage "
            "(Memento / baseline)",
        )
    )
    emit("  paper func-avg: user 0.90, kernel 0.72, total 0.85")

    func = [r for r in all_results if r.spec.category == "function"]
    total_avg = sum(r.memory_usage_ratios()["total"] for r in func) / len(func)
    assert total_avg < 1.0, "Memento reduces total aggregate memory"
    # C++ (DeathStarBench): substantial userspace savings vs jemalloc's
    # under-utilized pools.
    cpp = [r for r in func if r.spec.language == "cpp"]
    cpp_user = sum(r.memory_usage_ratios()["user"] for r in cpp) / len(cpp)
    assert cpp_user < 0.95
    # Python/Go userspace stays >= roughly flat (paper: slight increase).
    pygo = [r for r in func if r.spec.language in ("python", "go")]
    pygo_user = sum(r.memory_usage_ratios()["user"] for r in pygo) / len(pygo)
    assert pygo_user > cpp_user
