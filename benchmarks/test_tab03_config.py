"""Table 3 — simulation configuration and Memento hardware cost.

Regenerates the platform table and checks the analytic HOT size against
the paper's 3.4 KB CACTI figure; the published area/power numbers are
carried as data.
"""

from repro.analysis.report import render_table
from repro.sim.hwcost import AAC_COST, HOT_COST, hot_total_bytes
from repro.sim.params import MachineParams

from conftest import emit


def test_tab03_configuration(benchmark):
    params = benchmark.pedantic(MachineParams, rounds=1, iterations=1)
    rows = [
        ["CPU", f"{params.issue_width}-issue OOO, "
                f"{params.freq_hz/1e9:.0f} GHz, {params.rob_entries}-entry "
                f"ROB, {params.lsq_entries}-entry LSQ"],
        ["TLB", f"L1 {params.tlb_l1.entries}-entry {params.tlb_l1.ways}-way;"
                f" L2 {params.tlb_l2.entries}-entry {params.tlb_l2.ways}-way"],
        ["L1d", f"{params.l1d.size_bytes//1024}KB, {params.l1d.ways}-way, "
                f"{params.l1d.latency} cycle"],
        ["L1i", f"{params.l1i.size_bytes//1024}KB, {params.l1i.ways}-way, "
                f"{params.l1i.latency} cycle"],
        ["HOT", f"{HOT_COST.size_bytes/1024:.1f}KB, direct-mapped, "
                f"{HOT_COST.latency_cycles} cycle, {HOT_COST.power_mw}mW, "
                f"{HOT_COST.area_mm2}mm2"],
        ["L2", f"{params.l2.size_bytes//1024}KB, {params.l2.ways}-way, "
               f"{params.l2.latency} cycle"],
        ["LLC", f"{params.llc.size_bytes//1024//1024}MB slice, "
                f"{params.llc.ways}-way, {params.llc.latency} cycle"],
        ["AAC", f"{params.aac_entries}-entry, direct-mapped, "
                f"{AAC_COST.latency_cycles} cycle, {AAC_COST.power_mw}mW, "
                f"{AAC_COST.area_mm2}mm2"],
        ["DRAM", f"{params.dram_gb}GB, DDR4 3200, {params.dram_banks} banks"],
    ]
    emit(render_table(["component", "configuration"], rows,
                      title="Table 3 — Simulation configuration"))
    # The bit-level HOT layout must land on the published 3.4 KB.
    assert abs(hot_total_bytes() - HOT_COST.size_bytes) / HOT_COST.size_bytes < 0.02
    assert params.l1d.size_bytes == 32 * 1024
    assert params.llc.size_bytes == 2 * 1024 * 1024
    assert params.dram_gb == 64
