"""Table 1 — joint distribution of allocation size and lifetime.

Paper (functions): 61 % small+short-lived, 32 % small+long-lived,
6.55 % large+short, 0.45 % large+long.
"""

from repro.analysis.characterize import joint_size_lifetime
from repro.analysis.report import render_table
from repro.workloads.registry import FUNCTION_WORKLOADS
from repro.workloads.synth import generate_trace

from conftest import emit

PAPER = {
    "small_short": 0.61,
    "small_long": 0.32,
    "large_short": 0.0655,
    "large_long": 0.0045,
}


def test_tab01_joint_size_lifetime(benchmark):
    traces = [generate_trace(spec) for spec in FUNCTION_WORKLOADS]
    cells = benchmark.pedantic(
        joint_size_lifetime, args=(traces,), rounds=1, iterations=1
    )
    emit(
        render_table(
            ["cell", "paper", "measured"],
            [
                [key, PAPER[key], cells[key]]
                for key in ("small_short", "small_long",
                            "large_short", "large_long")
            ],
            title="Table 1 — Combined size x lifetime distribution "
            "(fraction of allocations)",
        )
    )
    assert abs(sum(cells.values()) - 1.0) < 1e-9
    # Shape: small+short dominates, small+long is the second mode,
    # large cells are minor.
    assert cells["small_short"] == max(cells.values())
    assert cells["small_long"] > cells["large_short"]
    assert cells["large_long"] < 0.05
    assert cells["small_short"] + cells["small_long"] > 0.85
