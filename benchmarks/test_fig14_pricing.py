"""Fig. 14 — normalized function runtime pricing (AWS model, §6.5).

Paper: Memento cuts runtime pricing 29 % on average; with the fixed
per-invocation fee included, end-to-end savings reach 31 % (11 % on
average).
"""

from repro.analysis.pricing import PricingModel
from repro.analysis.report import render_series

from conftest import emit


def test_fig14_pricing(benchmark, function_results):
    pricing = PricingModel()

    def compute():
        return {
            r.spec.name: (
                pricing.normalized_runtime_pricing(r),
                pricing.normalized_invocation_pricing(r),
            )
            for r in function_results
        }

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(rows)
    runtime = [rows[l][0] for l in labels]
    emit(
        render_series(
            labels,
            runtime,
            title="Fig. 14 — Normalized runtime pricing (Memento/baseline)",
        )
    )
    runtime_avg = sum(runtime) / len(runtime)
    invocation_avg = sum(rows[l][1] for l in labels) / len(labels)
    emit(
        f"  runtime pricing avg: paper 0.71, measured {runtime_avg:.3f}\n"
        f"  end-to-end (with per-invocation fee): paper 0.89, "
        f"measured {invocation_avg:.3f}"
    )
    # Shape: every function is cheaper; savings beat the pure-speedup
    # saving because memory usage also falls.
    assert all(value < 1.0 for value in runtime)
    assert 0.6 < runtime_avg < 0.95
    assert runtime_avg < invocation_avg < 1.0
