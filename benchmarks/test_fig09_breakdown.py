"""Fig. 9 — performance gains breakdown (% of saved cycles).

Paper (function average): obj-alloc 33 %, obj-free 32 %, page-mgmt 33 %,
bypass 2 % (bypass reaching 17 % for bandwidth-sensitive functions).
Data processing splits mostly between allocation and page management;
platform operations are allocation-dominated.
"""

from repro.analysis.report import render_grouped

from conftest import emit

MECHANISMS = ("obj-alloc", "obj-free", "page-mgmt", "bypass")


def average_breakdown(results):
    breakdowns = [r.breakdown() for r in results]
    return {
        key: sum(b[key] for b in breakdowns) / len(breakdowns)
        for key in MECHANISMS
    }


def test_fig09_breakdown(
    benchmark, function_results, dataproc_results, platform_results
):
    def compute():
        rows = {r.spec.name: r.breakdown() for r in function_results}
        rows["func-avg"] = average_breakdown(function_results)
        rows["data-avg"] = average_breakdown(dataproc_results)
        rows["pltf-avg"] = average_breakdown(platform_results)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(rows)
    emit(
        render_grouped(
            labels,
            {
                key: [rows[label][key] * 100 for label in labels]
                for key in MECHANISMS
            },
            title="Fig. 9 — Performance gains breakdown (% of saved cycles)",
            value_fmt=".1f",
        )
    )
    emit("  paper func-avg: obj-alloc 33 / obj-free 32 / page-mgmt 33 / bypass 2")

    func_avg = rows["func-avg"]
    # Shape: the three main mechanisms all contribute substantially;
    # bypass is a small positive remainder.
    assert 0.2 < func_avg["obj-alloc"] < 0.6
    assert 0.1 < func_avg["obj-free"] < 0.45
    assert 0.2 < func_avg["page-mgmt"] < 0.55
    assert 0.0 <= func_avg["bypass"] < 0.1
    # Go workloads get nothing from obj-free (batch-freed, §6.1).
    go = [r for r in function_results if r.spec.language == "go"]
    assert all(r.breakdown()["obj-free"] < 0.05 for r in go)
    # Python workloads: most get a large share from page management
    # (paper: >=40% for 7 of 9; our scaled-down heaps land slightly
    # lower — see EXPERIMENTS.md).
    python = [r for r in function_results if r.spec.language == "python"]
    heavy_page = sum(
        1 for r in python if r.breakdown()["page-mgmt"] >= 0.30
    )
    assert heavy_page >= 5, "most Python functions are page-mgmt heavy"
    # ...except the small-working-set ones (aes, jl), where object
    # management dominates (>=55% combined alloc+free, §6.1).
    for name in ("aes", "jl"):
        b = next(r for r in python if r.spec.name == name).breakdown()
        assert b["obj-alloc"] + b["obj-free"] >= 0.5, name
