"""Ablations of DESIGN.md §5 — quantifying Memento's design choices.

Not a paper figure; regenerates the evidence behind the paper's design
decisions: eager refill hides HOT-miss latency, the bypass counter is a
cheap win, and 256 objects per arena balances metadata against
fragmentation.
"""

from repro.analysis.report import render_table
from repro.harness.sweeps import ablation_study

from conftest import emit


def test_ablation_design_choices(benchmark):
    result = benchmark.pedantic(
        ablation_study, args=("html",), rounds=1, iterations=1
    )
    emit(
        render_table(
            ["configuration", "speedup over baseline"],
            [[name, value] for name, value in result.items()],
            title="Ablation — Memento design choices on dh",
        )
    )
    full = result["full"]
    assert full > 1.2
    # Each simplification costs something (or at least never helps much).
    assert result["no_bypass"] <= full + 0.005
    assert result["no_eager_refill"] <= full + 0.001
    # Arena size: 64-object arenas churn the page allocator harder;
    # 1024-object arenas waste pages. 256 sits in between (paper §3.1).
    assert result["small_arenas_64"] <= full + 0.01
    assert result["large_arenas_1024"] <= full + 0.01
