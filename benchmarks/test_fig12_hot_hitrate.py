"""Fig. 12 — Hardware Object Table hit rate.

Paper: allocations hit at 99.8 % uniformly; frees average 83 %, with
Python noticeably lower (long-lived interpreter objects miss) while
C++ and Golang frees hit nearly always. The AAC also enjoys uniformly
high hit rates (§6.4, not plotted).
"""

from repro.analysis.report import render_grouped

from conftest import emit


def test_fig12_hot_hit_rates(benchmark, all_results):
    def compute():
        return {
            r.spec.name: (
                r.memento.hot_alloc_hit_rate,
                r.memento.hot_free_hit_rate,
                r.memento.aac_hit_rate,
            )
            for r in all_results
        }

    rates = benchmark.pedantic(compute, rounds=1, iterations=1)
    labels = list(rates)
    emit(
        render_grouped(
            labels,
            {
                "obj-alloc": [rates[l][0] * 100 for l in labels],
                "obj-free": [rates[l][1] * 100 for l in labels],
                "aac": [rates[l][2] * 100 for l in labels],
            },
            title="Fig. 12 — HOT hit rate (%)",
            value_fmt=".1f",
        )
    )
    emit("  paper: alloc 99.8% uniform; free 83% avg (Python lower)")

    allocs = [r.memento.hot_alloc_hit_rate for r in all_results]
    assert min(allocs) > 0.98, "allocation hits are uniformly high"
    func = [r for r in all_results if r.spec.category == "function"]
    free_avg = sum(r.memento.hot_free_hit_rate for r in func) / len(func)
    assert 0.7 < free_avg <= 1.0
    # Python frees miss more than C++ frees (long-lived interpreter state).
    python_free = [
        r.memento.hot_free_hit_rate
        for r in func if r.spec.language == "python"
    ]
    cpp_free = [
        r.memento.hot_free_hit_rate
        for r in func if r.spec.language == "cpp"
    ]
    assert sum(python_free) / len(python_free) < sum(cpp_free) / len(cpp_free)
    # AAC: uniformly high whenever arenas are requested at any volume
    # (few size classes per workload); workloads that allocate only a
    # handful of arenas see nothing but compulsory misses.
    for r in all_results:
        arena_allocs = r.memento.stats.get(
            "memento.page.arenas_allocated", 0
        )
        assert r.memento.aac_hit_rate > 0.85 or arena_allocs < 100, (
            r.spec.name,
            r.memento.aac_hit_rate,
        )
