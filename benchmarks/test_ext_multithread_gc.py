"""Extensions: §3.4 multi-threading and the §4 ephemeral-aware GC.

Not paper figures — these regenerate the quantitative claims behind the
paper's Discussion section: cross-thread frees are rare-case-cheap under
both proposed strategies, HOT flushes at switches stay negligible, and
proactively freeing ephemeral garbage keeps reclamation at HOT-hit cost.
"""

import random

from repro.analysis.report import render_table
from repro.core.config import MementoConfig
from repro.core.ephemeral_gc import EphemeralAwareGc, EphemeralGcConfig
from repro.core.multithread import MultiThreadMementoRuntime
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import MachineParams

from conftest import emit


def run_multithread(mode: str, cross_fraction: float = 0.2, n=20_000):
    machine = Machine(MachineParams(num_cores=4))
    kernel = Kernel(machine)
    config = MementoConfig()
    runtime = MultiThreadMementoRuntime(
        kernel, process := kernel.create_process(),
        HardwarePageAllocator(kernel, config),
        num_threads=4, config=config, cross_thread_mode=mode,
    )
    rng = random.Random(3)
    live = []
    for _ in range(n):
        if live and rng.random() < 0.5:
            owner, addr = live.pop(rng.randrange(len(live)))
            freer = (
                rng.randrange(4)
                if rng.random() < cross_fraction
                else owner
            )
            runtime.free(freer, addr)
        else:
            tid = rng.randrange(4)
            live.append((tid, runtime.malloc(tid, rng.choice([16, 48, 96]))))
    runtime.flush_all()
    stats = machine.stats
    cross = stats["memento.mt.cross_thread_frees"]
    total_free_cycles = sum(
        core.cycles_in("hw_free") for core in machine.cores
    )
    frees = stats["memento.mt.local_frees"] + cross
    return {
        "cross_fraction": cross / max(1, frees),
        "cycles_per_free": total_free_cycles / max(1, frees),
        "live_left": runtime.live_objects - len(live),
    }


def test_ext_multithread_cross_free_strategies(benchmark):
    def compute():
        return {
            mode: run_multithread(mode) for mode in ("hardware", "software")
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(render_table(
        ["strategy", "cross-thread fraction", "cycles/free"],
        [
            [mode, row["cross_fraction"], row["cycles_per_free"]]
            for mode, row in result.items()
        ],
        title="§3.4 — Cross-thread deallocation strategies (4 threads)",
    ))
    for mode, row in result.items():
        assert row["live_left"] == 0, f"{mode}: accounting broke"
        # Both strategies keep frees at tens-to-low-hundreds of cycles.
        assert row["cycles_per_free"] < 300, mode


def test_ext_ephemeral_gc(benchmark):
    """Proactive ephemeral collection vs conventional deferred pacing."""

    def run(proactive: bool):
        machine = Machine()
        kernel = Kernel(machine)
        config = MementoConfig()
        runtime = MementoRuntime(
            kernel, kernel.create_process(), machine.core, "cpp",
            HardwarePageAllocator(kernel, config), config,
        )
        gc_config = (
            EphemeralGcConfig(proactive_threshold=64)
            if proactive
            else EphemeralGcConfig(
                proactive_threshold=10**9,  # never proactive
                deferred_threshold_bytes=512 * 1024,
            )
        )
        gc = EphemeralAwareGc(runtime, gc_config)
        rng = random.Random(9)
        live = []
        for _ in range(30_000):
            live.append(gc.malloc(rng.choice([16, 32, 64])))
            if len(live) > 400:
                gc.on_dead(live.pop(0))
        gc.collect_all()
        allocator = runtime.context.object_allocator
        return {
            "free_hit_rate": allocator.hot.free_hit_rate(),
            "free_cycles": machine.core.cycles_in("hw_free"),
            "arenas_allocated": machine.stats[
                "memento.page.arenas_allocated"
            ],
        }

    def compute():
        return {"proactive": run(True), "deferred": run(False)}

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(render_table(
        ["policy", "HOT free hit rate", "free cycles", "arenas"],
        [
            [name, row["free_hit_rate"], f"{row['free_cycles']:,.0f}",
             row["arenas_allocated"]]
            for name, row in result.items()
        ],
        title="§4 extension — Ephemeral-aware GC: proactive vs deferred "
        "reclamation",
    ))
    pro, def_ = result["proactive"], result["deferred"]
    # The mechanism's payoff: proactive frees land while arenas are
    # HOT-resident and recycle slots before new arenas are needed.
    assert pro["free_hit_rate"] >= def_["free_hit_rate"]
    assert pro["free_cycles"] <= def_["free_cycles"]
    assert pro["arenas_allocated"] <= def_["arenas_allocated"]
