"""Table 2 — memory-management cycles: userspace vs kernel split.

Paper: Python 48/52, C++ 96/4, Golang 56/44, FaaS platform 59/41, data
processing 38/62.

Known divergence (see EXPERIMENTS.md): our data-processing kernel share
is underestimated because the behavioral slab model reuses still-backed
runs more than real decay purging allows; the qualitative split (C++
functions user-dominated, Python/Go with a large kernel component) holds.
"""

from repro.analysis.report import render_table

from conftest import emit

PAPER = {
    "python": (0.48, 0.52),
    "cpp": (0.96, 0.04),
    "go": (0.56, 0.44),
    "platform": (0.59, 0.41),
    "dataproc": (0.38, 0.62),
}


def average_split(results):
    splits = [r.user_kernel_split() for r in results]
    user = sum(s["user"] for s in splits) / len(splits)
    return user, 1 - user


def test_tab02_user_kernel_split(
    benchmark, function_results, dataproc_results, platform_results
):
    def compute():
        by_language = {}
        for language in ("python", "cpp", "go"):
            group = [
                r for r in function_results
                if r.spec.language == language
            ]
            by_language[language] = average_split(group)
        by_language["platform"] = average_split(platform_results)
        by_language["dataproc"] = average_split(dataproc_results)
        return by_language

    measured = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for group, (user, kernel) in measured.items():
        paper_user, paper_kernel = PAPER[group]
        rows.append(
            [group, f"{paper_user:.0%}/{paper_kernel:.0%}",
             f"{user:.0%}/{kernel:.0%}"]
        )
    emit(
        render_table(
            ["group", "paper user/kernel", "measured user/kernel"],
            rows,
            title="Table 2 — Memory management cycles breakdown",
        )
    )
    # Shape: C++ functions are by far the most user-dominated; Python and
    # Go carry a large kernel component.
    assert measured["cpp"][0] > 0.75
    assert measured["python"][1] > 0.3
    assert measured["go"][1] > 0.3
    assert measured["cpp"][0] > measured["python"][0]
