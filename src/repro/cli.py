"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the 23 workloads with their language/category/parameters.
* ``run WORKLOAD [...]`` — baseline-vs-Memento for named workloads;
  ``--all`` replays the full 23-workload evaluation, ``--jobs N`` fans
  the runs out over worker processes, and completed runs persist in the
  on-disk result cache (``.repro-cache/``) so re-invocations are warm.
* ``cache info|clear`` — inspect or empty the persistent result cache.
* ``characterize`` — regenerate the §2.2 study (Figs. 2-3, Table 1).
* ``sweep NAME`` — one sensitivity study (populate, multiprocess,
  tuning, fragmentation, coldstart, iso-storage, mallacc, ablation).
* ``energy WORKLOAD`` — the energy comparison for one workload.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.characterize import (
    LIFETIME_BIN_LABELS,
    SIZE_BIN_LABELS,
    joint_size_lifetime,
    lifetime_distribution,
    size_distribution,
)
from repro.analysis.energy import EnergyModel
from repro.analysis.pricing import PricingModel
from repro.analysis.report import render_grouped, render_table
from repro.harness.engine import (
    DEFAULT_CACHE_DIR,
    DiskCache,
    ExperimentEngine,
    RunRequest,
    cost_model_fingerprint,
    source_fingerprint,
)
from repro.harness.experiment import run_all, run_workload
from repro.harness import sweeps
from repro.workloads.registry import all_workloads, get_workload
from repro.workloads.synth import generate_trace

SWEEPS = {
    "populate": sweeps.populate_study,
    "multiprocess": sweeps.multiprocess_study,
    "tuning": sweeps.tuning_study,
    "fragmentation": sweeps.fragmentation_study,
    "coldstart": sweeps.coldstart_study,
    "iso-storage": sweeps.iso_storage_study,
    "mallacc": sweeps.mallacc_study,
    "ablation": sweeps.ablation_study,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memento (MICRO '23) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper's workloads")

    run_parser = sub.add_parser("run", help="run workloads on both stacks")
    run_parser.add_argument("workloads", nargs="*", metavar="WORKLOAD")
    run_parser.add_argument(
        "--all", action="store_true", dest="run_all",
        help="run the full 23-workload evaluation",
    )
    run_parser.add_argument(
        "--cold-start", action="store_true",
        help="include container setup (§6.6)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent runs (default: 1)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_parser.add_argument("action", choices=["info", "clear"])
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )

    sub.add_parser(
        "characterize", help="regenerate the §2.2 allocation study"
    )

    sweep_parser = sub.add_parser("sweep", help="run a sensitivity study")
    sweep_parser.add_argument("name", choices=sorted(SWEEPS))

    energy_parser = sub.add_parser(
        "energy", help="energy comparison for one workload"
    )
    energy_parser.add_argument("workload", metavar="WORKLOAD")

    bench_parser = sub.add_parser(
        "bench", help="replay-throughput microbenchmark (BENCH_<date>.json)"
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny traces, one repeat: crash check for CI, not a timing",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="best-of-N timing per workload/stack (default 7; smoke 1)",
    )
    bench_parser.add_argument(
        "--num-allocs", type=int, default=None, metavar="N",
        help="trace size override (default 8000; smoke 500)",
    )
    bench_parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="WORKLOAD",
        help="workloads to bench (default: html Redis deploy)",
    )
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path (default: ./BENCH_<date>.json)",
    )
    bench_parser.add_argument(
        "--compare", default=None, metavar="JSON",
        help="previous BENCH_*.json to compute per-key speedups against",
    )
    return parser


def cmd_list() -> int:
    rows = [
        [
            spec.name,
            spec.language,
            spec.category,
            spec.num_allocs,
            spec.compute_per_alloc,
        ]
        for spec in all_workloads()
    ]
    print(render_table(
        ["name", "language", "category", "allocs", "compute/alloc"],
        rows,
        title="Workloads (paper §5)",
    ))
    return 0


def _progress_line(
    index: int, total: int, request: RunRequest, source: str, seconds: float
) -> None:
    """One status line per run: workload, stack, wall time, hit or live."""
    status = "live" if source == "live" else "cache hit"
    print(
        f"[{index:3d}/{total}] {request.spec.name:<12} "
        f"{request.stack:<8} {seconds:7.2f}s  {status}",
        file=sys.stderr,
    )


def _make_engine(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        use_disk_cache=False if args.no_cache else None,
        progress=_progress_line,
    )


def cmd_run(args: argparse.Namespace) -> int:
    if args.run_all == bool(args.workloads):
        print("run: name workloads or pass --all (not both)", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    specs = (
        None
        if args.run_all
        else [get_workload(name) for name in args.workloads]
    )
    results = run_all(specs, cold_start=args.cold_start, engine=engine)
    pricing = PricingModel()
    rows = []
    for result in results:
        summary = result.to_dict()
        split = summary["user_kernel_split"]
        rows.append([
            summary["workload"],
            summary["speedup"],
            f"{split['user']:.0%}/{split['kernel']:.0%}",
            summary["bandwidth_reduction"],
            summary["memento"]["hot_alloc_hit_rate"],
            pricing.normalized_runtime_pricing(result),
        ])
    print(render_table(
        ["workload", "speedup", "mm user/kernel", "bw reduction",
         "HOT alloc hit", "pricing"],
        rows,
        title=("Cold-started" if args.cold_start else "Warm") +
        " baseline vs Memento",
    ))
    counters = engine.summary()
    hits = int(
        counters.get("engine.memo.hits", 0)
        + counters.get("engine.disk.hits", 0)
    )
    print(
        f"cache: {hits} hits, {int(counters.get('engine.misses', 0))} live "
        f"runs in {counters.get('engine.live_seconds', 0.0):.2f}s "
        f"(jobs={args.jobs})",
        file=sys.stderr,
    )
    return 0


def cmd_cache(action: str, cache_dir: Optional[str]) -> int:
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    cache = DiskCache(Path(cache_dir))
    if action == "info":
        info = cache.info()
        rows = [[key, info[key]] for key in ("path", "entries", "bytes")]
        rows.append(["source fingerprint", source_fingerprint()])
        rows.append(["cost-model fingerprint", cost_model_fingerprint()])
        print(render_table(["field", "value"], rows, title="result cache"))
    else:
        print(f"removed {cache.clear()} cache entries")
    return 0


def cmd_characterize() -> int:
    traces = [generate_trace(spec) for spec in all_workloads()]
    sizes = size_distribution(traces)
    lifetimes = lifetime_distribution(traces)
    print(render_grouped(
        SIZE_BIN_LABELS,
        {"% of allocations": [s * 100 for s in sizes]},
        title="Fig. 2 — allocation sizes (all workloads)",
        value_fmt=".1f",
    ))
    print()
    print(render_grouped(
        LIFETIME_BIN_LABELS,
        {"% of allocations": [x * 100 for x in lifetimes]},
        title="Fig. 3 — lifetimes (all workloads)",
        value_fmt=".1f",
    ))
    print()
    cells = joint_size_lifetime(traces)
    print(render_table(
        ["cell", "fraction"],
        sorted(cells.items()),
        title="Table 1 — joint size x lifetime",
    ))
    return 0


def cmd_sweep(name: str) -> int:
    result = SWEEPS[name]()
    if isinstance(result, dict) and all(
        isinstance(v, dict) for v in result.values()
    ):
        headers = ["key"] + sorted(
            {k for v in result.values() for k in v}
        )
        rows = [
            [key] + [value.get(col, "") for col in headers[1:]]
            for key, value in result.items()
        ]
        print(render_table(headers, rows, title=f"sweep: {name}"))
    else:
        print(render_table(
            ["metric", "value"], sorted(result.items()),
            title=f"sweep: {name}",
        ))
    return 0


def cmd_energy(name: str) -> int:
    model = EnergyModel()
    report = model.report(run_workload(get_workload(name)))
    print(render_table(
        ["metric", "value"],
        [
            [k, f"{v:.3e}" if k.endswith("_j") else f"{v:.4f}"]
            for k, v in report.items()
        ],
        title=f"Memory-management energy: {name}",
    ))
    return 0


def cmd_bench(args) -> int:
    from repro.harness import perfbench

    payload = perfbench.run_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        num_allocs=args.num_allocs,
        workloads=args.workloads or None,
        compare_path=Path(args.compare) if args.compare else None,
    )
    out = (
        Path(args.out)
        if args.out
        else perfbench.default_output_path(Path.cwd(), smoke=args.smoke)
    )
    perfbench.write_bench(payload, out)
    rows = [
        [
            key,
            row["events"],
            f"{row['seconds'] * 1e3:.1f}",
            f"{row['events_per_sec']:,.0f}",
        ]
        for key, row in sorted(payload["replay"].items())
    ]
    print(render_table(
        ["workload/stack", "events", "best ms", "events/sec"],
        rows,
        title="Replay throughput" + (" (smoke)" if args.smoke else ""),
    ))
    if "engine_cache" in payload:
        cache = payload["engine_cache"]
        print(
            f"engine cache: miss {cache['miss_seconds'] * 1e3:.1f} ms, "
            f"disk hit {cache['disk_hit_seconds'] * 1e3:.1f} ms "
            f"({cache['disk_hit_speedup']:.0f}x), "
            f"memo hit {cache['memo_hit_seconds'] * 1e3:.3f} ms"
        )
    if "comparison" in payload:
        for key, ratio in sorted(payload["comparison"]["speedup"].items()):
            print(f"  {key}: {ratio:.2f}x vs {payload['comparison']['reference']}")
    print(f"wrote {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "cache":
        return cmd_cache(args.action, args.cache_dir)
    if args.command == "characterize":
        return cmd_characterize()
    if args.command == "sweep":
        return cmd_sweep(args.name)
    if args.command == "energy":
        return cmd_energy(args.workload)
    if args.command == "bench":
        return cmd_bench(args)
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
