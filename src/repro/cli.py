"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the 23 workloads with their language/category/parameters.
* ``run WORKLOAD [...]`` — baseline-vs-Memento for named workloads;
  ``--all`` replays the full 23-workload evaluation, ``--jobs N`` fans
  the runs out over worker processes, and completed runs persist in the
  on-disk result cache (``.repro-cache/``) so re-invocations are warm.
  ``--trace`` prints the span tree; ``--metrics out.prom`` exports the
  run's counters as Prometheus text plus a JSONL sidecar; ``--profile``
  attributes every simulated cycle to its architectural component and
  prints the Fig. 9-style breakdown (serial, cache-bypassing runs).
* ``cache info|clear`` — inspect or empty the persistent result cache
  (``--backend json|sqlite|memory`` selects the result backend).
* ``serve`` — run the experiment service: a REST API over an async job
  queue draining into the shared engine (submit/status/results,
  ``/healthz``, ``/metrics``).
* ``fleet run`` — fleet-scale platform simulation: a seeded arrival
  process over the workload registry drives a warm/cold instance pool;
  epoch-sharded profile runs fan out through the engine and reduce into
  cold-start percentiles, a memory-stranding timeline, and fleet DRAM
  traffic for every requested stack (``--stacks
  baseline,memento,snapshot,reclaim`` races all four).
* ``characterize`` — regenerate the §2.2 study (Figs. 2-3, Table 1).
* ``sweep NAME`` — one sensitivity study (populate, multiprocess,
  tuning, fragmentation, coldstart, iso-storage, mallacc, ablation).
* ``energy WORKLOAD`` — the energy comparison for one workload.
* ``bench`` — the replay-throughput microbenchmark.
* ``obs report|diff|check`` — render the run ledger and exported
  metrics, diff two metric/bench files, or gate on a perf regression
  against the committed ``BENCH_*.json`` baseline.
* ``obs profile|timeline|trend`` — render an exported cycle profile,
  export spans + sampled events as Perfetto trace JSON, or analyze the
  full ledger history for wall-time/digest drift.

Conventions (shared by every handler): handlers take the parsed
``argparse.Namespace`` and return the process exit code — 0 on success,
1 on an operational error (reported as ``repro: error: ...`` on stderr
by ``main``'s shared handler), 2 on a usage error.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import Any, List, Optional

from repro.analysis.characterize import (
    LIFETIME_BIN_LABELS,
    SIZE_BIN_LABELS,
    joint_size_lifetime,
    lifetime_distribution,
    size_distribution,
)
from repro.analysis.energy import EnergyModel
from repro.analysis.pricing import PricingModel
from repro.analysis.report import render_grouped, render_table
from repro.audit import Auditor, install_audit
from repro.backends import backend_names, create_backend
from repro.core.errors import MementoError
from repro.fleet import (
    MIXES,
    PATTERNS,
    POLICIES,
    STACKS,
    FleetRequest,
    render_fleet_report,
    simulate_fleet,
)
from repro.harness.engine import (
    DEFAULT_CACHE_DIR,
    ExperimentEngine,
    RunRequest,
    cost_model_fingerprint,
    source_fingerprint,
)
from repro.harness.experiment import run_all, run_workload
from repro.resolve import (
    UsageError,
    resolve_backend,
    resolve_cache_dir,
    resolve_jobs,
    resolve_stack_list,
    resolve_workers,
)
from repro.harness import sweeps
from repro.harness.vector_kernel import KERNEL_CHOICES
from repro.obs import (
    CycleProfile,
    EventRing,
    RunLedger,
    Tracer,
    check_bench,
    check_ledger_determinism,
    check_bench_trend,
    check_fleet_trend,
    check_trend,
    default_ledger_path,
    event_record,
    export_timeline,
    histogram_lines,
    install_profile,
    install_ring,
    profile_record,
    read_jsonl,
    render_histograms,
    render_profile,
    render_prometheus,
    render_span_tree,
    render_top_consumers,
    render_bench_trend,
    render_fleet_trend,
    render_trend,
    run_record,
    set_tracer,
    span_record,
    split_fleet_entries,
    write_jsonl,
)
from repro.workloads.registry import all_workloads, get_workload
from repro.workloads.synth import generate_trace

SWEEPS = {
    "populate": sweeps.populate_study,
    "multiprocess": sweeps.multiprocess_study,
    "tuning": sweeps.tuning_study,
    "fragmentation": sweeps.fragmentation_study,
    "coldstart": sweeps.coldstart_study,
    "iso-storage": sweeps.iso_storage_study,
    "mallacc": sweeps.mallacc_study,
    "ablation": sweeps.ablation_study,
}

#: Exceptions ``main`` converts into the shared ``repro: error:`` report
#: with exit code 1 (anything else is a bug and propagates loudly).
_REPORTED_ERRORS = (KeyError, ValueError, FileNotFoundError, MementoError)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memento (MICRO '23) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list the paper's workloads")
    list_parser.set_defaults(handler=cmd_list)

    run_parser = sub.add_parser("run", help="run workloads on both stacks")
    run_parser.add_argument("workloads", nargs="*", metavar="WORKLOAD")
    run_parser.add_argument(
        "--workload", action="append", dest="named_workloads",
        default=[], metavar="WORKLOAD",
        help="workload to run (repeatable; same as the positional form)",
    )
    run_parser.add_argument(
        "--all", action="store_true", dest="run_all",
        help="run the full 23-workload evaluation",
    )
    run_parser.add_argument(
        "--cold-start", action="store_true",
        help="include container setup (§6.6)",
    )
    run_parser.add_argument(
        "--stack", default=None, metavar="STACK",
        help="run only the named stack(s): a registry name, a comma "
        "list, 'both', or 'all' (default: the baseline-vs-memento "
        "comparison trio with derived metrics)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent runs "
        "(default: $REPRO_JOBS or 1)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache",
    )
    run_parser.add_argument(
        "--kernel", choices=list(KERNEL_CHOICES), default=None,
        help="replay kernel (default: $REPRO_KERNEL or auto; results "
        "are bit-identical either way)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="record spans + sampled hardware events; print the span tree",
    )
    run_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export counters as Prometheus text at PATH and JSON-lines "
        "at PATH.jsonl",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="attribute simulated cycles to architectural components and "
        "print the breakdown (forces serial, cache-bypassing runs)",
    )
    run_parser.add_argument(
        "--audit", action="store_true",
        help="check architectural invariants during the replay (forces "
        "serial, cache-bypassing runs; nonzero exit on violations)",
    )
    run_parser.add_argument(
        "--audit-epoch", choices=["event", "interval", "run"],
        default="run", metavar="EPOCH",
        help="when invariants are checked: event, interval, or run "
        "(default: run)",
    )
    run_parser.add_argument(
        "--audit-every", type=int, default=256, metavar="N",
        help="events between checks for --audit-epoch interval "
        "(default: 256)",
    )
    run_parser.add_argument(
        "--diff", action="store_true",
        help="also run the differential oracle on each workload/stack "
        "(implies --audit; see `repro audit` for the standalone form)",
    )
    run_parser.add_argument(
        "--diff-allocs", type=int, default=800, metavar="N",
        help="trace size for the --diff lockstep legs (default: 800)",
    )
    run_parser.set_defaults(handler=cmd_run)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache"
    )
    cache_parser.add_argument("action", choices=["info", "clear"])
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    cache_parser.add_argument(
        "--backend", default=None, choices=backend_names(),
        help="result backend (default: $REPRO_BACKEND or json)",
    )
    cache_parser.set_defaults(handler=cmd_cache)

    serve_parser = sub.add_parser(
        "serve", help="run the experiment service (REST API + job queue)"
    )
    serve_parser.add_argument(
        "--host", default=None, metavar="HOST",
        help="bind address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="bind port, 0 for ephemeral (default: 8023)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="engine worker processes per request batch "
        "(default: $REPRO_JOBS or 1)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="job-queue worker threads (default: 2)",
    )
    serve_parser.add_argument(
        "--backend", default=None, choices=backend_names(),
        help="result backend (default: $REPRO_BACKEND or json)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without a persistent result store",
    )
    serve_parser.add_argument(
        "--log-requests", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    serve_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="append per-job trace records (JSONL) at PATH",
    )
    serve_parser.set_defaults(handler=cmd_serve)

    fleet_parser = sub.add_parser(
        "fleet", help="fleet-scale serverless platform simulation"
    )
    fleet_sub = fleet_parser.add_subparsers(
        dest="fleet_command", required=True
    )
    fleet_run_parser = fleet_sub.add_parser(
        "run",
        help="simulate an invocation fleet (cold starts, stranding, "
        "DRAM traffic) across the registered memory-management stacks",
    )
    fleet_run_parser.add_argument(
        "--invocations", type=int, default=10_000, metavar="N",
        help="total invocations over the window (default: 10000)",
    )
    fleet_run_parser.add_argument(
        "--duration", type=float, default=3600.0, metavar="SECONDS",
        help="simulated window length (default: 3600)",
    )
    fleet_run_parser.add_argument(
        "--seed", type=int, default=42, metavar="N",
        help="master seed; same seed = bit-identical metrics "
        "(default: 42)",
    )
    fleet_run_parser.add_argument(
        "--pattern", choices=list(PATTERNS), default="poisson",
        help="arrival process (default: poisson)",
    )
    fleet_run_parser.add_argument(
        "--mix", choices=list(MIXES), default="azure",
        help="invocation mix over the workloads (default: azure)",
    )
    fleet_run_parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="WORKLOAD",
        help="functions in the fleet (default: every function-category "
        "workload)",
    )
    fleet_run_parser.add_argument(
        "--keep-alive", type=float, default=600.0, metavar="SECONDS",
        help="idle keep-alive before reclaim; 0 = always cold "
        "(default: 600)",
    )
    fleet_run_parser.add_argument(
        "--policy", choices=list(POLICIES), default="keepalive",
        help="pool eviction policy (default: keepalive)",
    )
    fleet_run_parser.add_argument(
        "--max-warm", type=int, default=0, metavar="N",
        help="idle-instance cap for --policy lru; 0 = unlimited "
        "(default: 0)",
    )
    fleet_run_parser.add_argument(
        "--epochs", type=int, default=0, metavar="N",
        help="epoch shards; 0 derives from the invocation count "
        "(default: 0)",
    )
    fleet_run_parser.add_argument(
        "--profile-seeds", type=int, default=2, metavar="N",
        help="trace-seed variants cycled across epochs (default: 2)",
    )
    fleet_run_parser.add_argument(
        "--allocs", type=int, default=2_000, metavar="N",
        help="allocations per invocation trace (default: 2000)",
    )
    fleet_run_parser.add_argument(
        "--stack", default=None, metavar="STACK",
        help="stacks to simulate: a registry name, a comma list, "
        "'both', or 'all' (default: both)",
    )
    fleet_run_parser.add_argument(
        "--stacks", default=None, metavar="LIST",
        help="comma-separated stacks to race, e.g. "
        "baseline,memento,snapshot,reclaim (same as --stack)",
    )
    fleet_run_parser.add_argument(
        "--kernel", choices=list(KERNEL_CHOICES), default=None,
        help="replay kernel for the profile runs (default: "
        "$REPRO_KERNEL or auto)",
    )
    fleet_run_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the engine fan-out "
        "(default: $REPRO_JOBS or 1)",
    )
    fleet_run_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache",
    )
    fleet_run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    fleet_run_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the platform metrics as JSON at PATH",
    )
    fleet_run_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write fleet telemetry (per-epoch records, instance "
        "lifetimes, sampled events) as JSONL at PATH",
    )
    fleet_run_parser.set_defaults(handler=cmd_fleet_run)

    characterize_parser = sub.add_parser(
        "characterize", help="regenerate the §2.2 allocation study"
    )
    characterize_parser.set_defaults(handler=cmd_characterize)

    sweep_parser = sub.add_parser("sweep", help="run a sensitivity study")
    sweep_parser.add_argument("name", choices=sorted(SWEEPS))
    sweep_parser.set_defaults(handler=cmd_sweep)

    energy_parser = sub.add_parser(
        "energy", help="energy comparison for one workload"
    )
    energy_parser.add_argument("workload", metavar="WORKLOAD")
    energy_parser.set_defaults(handler=cmd_energy)

    bench_parser = sub.add_parser(
        "bench", help="replay-throughput microbenchmark (BENCH_<date>.json)"
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny traces, one repeat: crash check for CI, not a timing",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="best-of-N timing per workload/stack (default 7; smoke 1)",
    )
    bench_parser.add_argument(
        "--num-allocs", type=int, default=None, metavar="N",
        help="trace size override (default 8000; smoke 500)",
    )
    bench_parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="WORKLOAD",
        help="workloads to bench (default: html Redis deploy)",
    )
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output JSON path (default: ./BENCH_<date>.json)",
    )
    bench_parser.add_argument(
        "--compare", default=None, metavar="JSON",
        help="previous BENCH_*.json to compute per-key speedups against",
    )
    bench_parser.add_argument(
        "--kernel", choices=list(KERNEL_CHOICES), default=None,
        help="replay kernel for the headline replay keys (default: "
        "$REPRO_KERNEL or auto); the kernel A/B section always measures "
        "both",
    )
    bench_parser.add_argument(
        "--stacks", default=None, metavar="LIST",
        help="stacks to bench: a comma list, 'both', or 'all' "
        "(default: baseline,memento — keeps BENCH payloads comparable)",
    )
    bench_parser.set_defaults(handler=cmd_bench)

    audit_parser = sub.add_parser(
        "audit", help="invariant checks + differential oracle"
    )
    audit_parser.add_argument("workloads", nargs="*", metavar="WORKLOAD")
    audit_parser.add_argument(
        "--workload", action="append", dest="named_workloads",
        default=[], metavar="WORKLOAD",
        help="workload to audit (repeatable; default: html)",
    )
    audit_parser.add_argument(
        "--all", action="store_true", dest="audit_all",
        help="audit every registered workload",
    )
    audit_parser.add_argument(
        "--stack", default="both", metavar="STACK",
        help="which stack(s) to audit: a registry name, a comma list, "
        "'both', or 'all' (default: both)",
    )
    audit_parser.add_argument(
        "--epoch", choices=["event", "interval", "run"],
        default="interval",
        help="invariant-check epoch for the replay leg (default: interval)",
    )
    audit_parser.add_argument(
        "--every", type=int, default=64, metavar="N",
        help="events between interval-epoch checks (default: 64)",
    )
    audit_parser.add_argument(
        "--diff", action="store_true",
        help="run the differential oracle (lockstep vs naive reference, "
        "bypass-soundness monitor, columnar cross-check)",
    )
    audit_parser.add_argument(
        "--num-allocs", type=int, default=2000, metavar="N",
        help="trace size per leg (default: 2000; 0 = the workload's "
        "full size)",
    )
    audit_parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_out",
        help="write the full audit report as JSON at PATH",
    )
    audit_parser.set_defaults(handler=cmd_audit)

    obs_parser = sub.add_parser(
        "obs", help="observability: run ledger, metrics, regression gate"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    report_parser = obs_sub.add_parser(
        "report", help="render the run ledger and exported metrics"
    )
    report_parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger file (default: <cache-dir>/ledger.jsonl)",
    )
    report_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="metrics JSONL exported by `repro run --metrics`",
    )
    report_parser.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="ledger entries to show (default: 20)",
    )
    report_parser.set_defaults(handler=cmd_obs_report)

    diff_parser = obs_sub.add_parser(
        "diff", help="diff two metric JSONL or BENCH json files"
    )
    diff_parser.add_argument("old", metavar="OLD")
    diff_parser.add_argument("new", metavar="NEW")
    diff_parser.set_defaults(handler=cmd_obs_diff)

    check_parser = obs_sub.add_parser(
        "check", help="fail when a bench payload regresses vs the baseline"
    )
    check_parser.add_argument(
        "--bench", default=None, metavar="JSON",
        help="current bench payload (e.g. bench-smoke.json)",
    )
    check_parser.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="baseline payload (default: newest committed BENCH_*.json)",
    )
    check_parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="max tolerated events/sec loss in percent (default: 10)",
    )
    check_parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="also check this ledger for determinism conflicts "
        "(default: <cache-dir>/ledger.jsonl when present)",
    )
    check_parser.add_argument(
        "--smoke", action="store_true",
        help="report-only: never fail on timing (CI machines are noisy)",
    )
    check_parser.set_defaults(handler=cmd_obs_check)

    profile_parser = obs_sub.add_parser(
        "profile", help="render an exported cycle-attribution profile"
    )
    profile_parser.add_argument(
        "metrics", metavar="METRICS_JSONL",
        help="metrics JSONL written by `repro run --profile --metrics`",
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the top-consumers view (default: 10)",
    )
    profile_parser.set_defaults(handler=cmd_obs_profile)

    timeline_parser = obs_sub.add_parser(
        "timeline", help="export spans + events as Perfetto trace JSON"
    )
    timeline_parser.add_argument(
        "metrics", metavar="METRICS_JSONL",
        help="metrics JSONL written by `repro run --trace --metrics`",
    )
    timeline_parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="output trace path (default: trace.json)",
    )
    timeline_parser.set_defaults(handler=cmd_obs_timeline)

    trend_parser = obs_sub.add_parser(
        "trend", help="analyze ledger history for wall-time/digest drift"
    )
    trend_parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger file (default: <cache-dir>/ledger.jsonl)",
    )
    trend_parser.add_argument(
        "--threshold", type=float, default=50.0, metavar="PCT",
        help="min slowdown vs the key's median to flag (default: 50)",
    )
    trend_parser.add_argument(
        "--bench-root", default=None, metavar="DIR",
        help="directory holding committed BENCH_<date>.json files for "
        "the events/s gate (default: current directory)",
    )
    trend_parser.add_argument(
        "--bench-drop", type=float, default=None, metavar="PCT",
        help="max events/s drop vs the bench-file median before the "
        "throughput gate flags (default: 40)",
    )
    trend_parser.add_argument(
        "--fleet-threshold", type=float, default=None, metavar="PCT",
        help="max worsening of fleet cold-start p95 / stranded GB·s vs "
        "the scenario median before the fleet gate flags (default: 25)",
    )
    trend_parser.add_argument(
        "--report-only", action="store_true",
        help="always exit 0 (CI visibility without gating)",
    )
    trend_parser.set_defaults(handler=cmd_obs_trend)
    return parser


def _usage_error(message: str) -> int:
    """Shared usage-error convention: one ``repro: error:`` line on
    stderr, exit code 2 — the same report :class:`UsageError` gets from
    ``main``, so handlers can use either form."""
    print(f"repro: error: {message}", file=sys.stderr)
    return 2


def _default_cache_dir(cache_dir: Optional[str]) -> str:
    return resolve_cache_dir(cache_dir)


def cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [
            spec.name,
            spec.language,
            spec.category,
            spec.num_allocs,
            spec.compute_per_alloc,
        ]
        for spec in all_workloads()
    ]
    print(render_table(
        ["name", "language", "category", "allocs", "compute/alloc"],
        rows,
        title="Workloads (paper §5)",
    ))
    return 0


def _progress_line(
    index: int, total: int, request: RunRequest, source: str, seconds: float
) -> None:
    """One status line per run: workload, stack, wall time, hit or live."""
    status = "live" if source == "live" else "cache hit"
    print(
        f"[{index:3d}/{total}] {request.spec.name:<12} "
        f"{request.stack:<8} {seconds:7.2f}s  {status}",
        file=sys.stderr,
    )


def _summary_line(done: int, total: int, counts: dict) -> None:
    """Batched progress for fleet-scale batches: one line per ~5% of the
    batch instead of one per run."""
    print(
        f"[{done:5d}/{total}] {counts.get('cached', 0)} cached / "
        f"{counts.get('live', 0)} live / {counts.get('failed', 0)} failed",
        file=sys.stderr,
    )


def _make_engine(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        use_disk_cache=False if args.no_cache else None,
        progress=_progress_line,
        summary_progress=_summary_line,
    )


def _export_metrics(path: str, results, tracer, ring, profile=None) -> None:
    """Write the Prometheus text file and its JSONL sidecar."""
    snapshots = []
    records = []
    for result in results:
        for stack, run in (
            ("baseline", result.baseline),
            ("memento", result.memento),
            ("memento_nobypass", result.memento_nobypass),
        ):
            summary = run.to_dict()
            snapshots.append({
                "labels": {"workload": result.spec.name, "stack": stack},
                "counters": summary["stats"],
            })
            records.append(run_record(summary, stack=stack))
    if tracer is not None:
        records.append(span_record(tracer.to_dict()))
    if ring is not None:
        records.append(event_record(ring.to_dict()))
    text = render_prometheus(snapshots)
    if profile is not None:
        payload = profile.to_dict()
        records.append(profile_record(payload))
        seen: set = set()
        hist_lines = []
        for name in sorted(payload.get("histograms", {})):
            hist_lines.extend(
                histogram_lines(
                    payload["histograms"][name], seen_types=seen
                )
            )
        if hist_lines:
            text += "\n".join(hist_lines) + "\n"
    out = Path(path)
    out.write_text(text, encoding="utf-8")
    write_jsonl(out.with_name(out.name + ".jsonl"), records)
    print(
        f"wrote {out} and {out.name}.jsonl "
        f"({len(snapshots)} runs)",
        file=sys.stderr,
    )


def _run_stacks(args: argparse.Namespace, names: List[str]) -> int:
    """``repro run --stack ...``: replay the named registry stacks,
    one run per workload x stack, without the comparison trio's derived
    metrics (those only exist for baseline vs memento)."""
    if args.trace or args.profile or args.metrics:
        return _usage_error(
            "run: --trace/--profile/--metrics only apply to the "
            "baseline-vs-memento comparison (drop --stack)"
        )
    stacks = resolve_stack_list(args.stack)
    args.jobs = resolve_jobs(args.jobs)
    auditor = previous_audit = None
    if args.diff:
        args.audit = True
    if args.audit:
        if args.jobs > 1:
            print(
                "repro: --audit runs serially; ignoring --jobs",
                file=sys.stderr,
            )
            args.jobs = 1
        args.no_cache = True
        auditor = Auditor(epoch=args.audit_epoch, every=args.audit_every)
        previous_audit = install_audit(auditor)
    try:
        engine = _make_engine(args)
        specs = (
            all_workloads()
            if args.run_all
            else [get_workload(name) for name in names]
        )
        requests = [
            RunRequest(
                spec,
                stack=stack,
                cold_start=args.cold_start,
                kernel=args.kernel,
            )
            for spec in specs
            for stack in stacks
        ]
        results = engine.run_many(requests)
    finally:
        if args.audit:
            install_audit(previous_audit)
    rows = [
        [
            request.spec.name,
            request.stack,
            f"{result.total_cycles:,}",
            f"{result.seconds:.6f}",
            f"{result.dram_bytes / 1e6:.2f}",
        ]
        for request, result in zip(requests, results)
    ]
    print(render_table(
        ["workload", "stack", "total cycles", "sim seconds", "dram MB"],
        rows,
        title=("Cold-started" if args.cold_start else "Warm")
        + " runs: " + ", ".join(stacks),
    ))
    exit_code = 0
    if auditor is not None:
        print()
        print(
            f"audit: {auditor.checks} checks ({auditor.epoch} epoch), "
            f"{auditor.total_violations} violations"
        )
        for violation in auditor.violations:
            print(f"  {violation}")
        if auditor.total_violations:
            exit_code = 1
    if args.diff:
        from repro.audit.oracle import run_diff

        print()
        for spec in specs:
            for stack in stacks:
                report = run_diff(
                    spec, stack, num_allocs=args.diff_allocs or None
                )
                _print_diff_line(report)
                if not report.ok:
                    exit_code = 1
    return exit_code


def cmd_run(args: argparse.Namespace) -> int:
    names = list(args.workloads) + list(args.named_workloads)
    if args.run_all == bool(names):
        return _usage_error("run: name workloads or pass --all (not both)")
    if args.stack is not None:
        return _run_stacks(args, names)
    args.jobs = resolve_jobs(args.jobs)
    tracer = ring = profile = auditor = None
    previous_tracer = previous_ring = previous_profile = None
    previous_audit = None
    if args.trace:
        tracer = Tracer()
        ring = EventRing(timestamps=True)
        previous_tracer = set_tracer(tracer)
        previous_ring = install_ring(ring)
    if args.profile:
        # Attribution happens in-process on live runs only: worker
        # processes and cache hits produce no profile data, so profiled
        # runs are forced serial and bypass the result cache.
        if args.jobs > 1:
            print(
                "repro: --profile runs serially; ignoring --jobs",
                file=sys.stderr,
            )
            args.jobs = 1
        args.no_cache = True
        profile = CycleProfile()
        previous_profile = install_profile(profile)
    if args.diff:
        args.audit = True
    if args.audit:
        # Same live-run constraint as --profile: worker processes and
        # cache hits carry no auditor, so audited runs are serial and
        # cache-bypassing.
        if args.jobs > 1:
            print(
                "repro: --audit runs serially; ignoring --jobs",
                file=sys.stderr,
            )
            args.jobs = 1
        args.no_cache = True
        auditor = Auditor(epoch=args.audit_epoch, every=args.audit_every)
        previous_audit = install_audit(auditor)
    try:
        engine = _make_engine(args)
        specs = (
            None if args.run_all else [get_workload(name) for name in names]
        )
        results = run_all(
            specs,
            cold_start=args.cold_start,
            engine=engine,
            kernel=args.kernel,
        )
    finally:
        if args.trace:
            set_tracer(previous_tracer)
            install_ring(previous_ring)
        if args.profile:
            install_profile(previous_profile)
        if args.audit:
            install_audit(previous_audit)
    pricing = PricingModel()
    rows = []
    for result in results:
        summary = result.to_dict()
        split = summary["user_kernel_split"]
        rows.append([
            summary["workload"],
            summary["speedup"],
            f"{split['user']:.0%}/{split['kernel']:.0%}",
            summary["bandwidth_reduction"],
            summary["memento"]["hot_alloc_hit_rate"],
            pricing.normalized_runtime_pricing(result),
        ])
    print(render_table(
        ["workload", "speedup", "mm user/kernel", "bw reduction",
         "HOT alloc hit", "pricing"],
        rows,
        title=("Cold-started" if args.cold_start else "Warm") +
        " baseline vs Memento",
    ))
    if tracer is not None:
        print()
        print("Span tree")
        print("=========")
        print(render_span_tree(tracer.to_dict()))
    if profile is not None:
        payload = profile.to_dict()
        print()
        print("Cycle attribution")
        print("=================")
        print(render_profile(payload))
        print()
        print(render_top_consumers(payload))
        print()
        print(render_histograms(payload))
    if args.metrics:
        _export_metrics(args.metrics, results, tracer, ring, profile)
    counters = engine.summary()
    hits = int(
        counters.get("engine.memo.hits", 0)
        + counters.get("engine.disk.hits", 0)
    )
    print(
        f"cache: {hits} hits, {int(counters.get('engine.misses', 0))} live "
        f"runs in {counters.get('engine.live_seconds', 0.0):.2f}s "
        f"(jobs={args.jobs})",
        file=sys.stderr,
    )
    exit_code = 0
    if auditor is not None:
        print()
        print(
            f"audit: {auditor.checks} checks "
            f"({auditor.epoch} epoch), "
            f"{auditor.total_violations} violations"
        )
        for violation in auditor.violations:
            print(f"  {violation}")
        if auditor.total_violations:
            exit_code = 1
    if args.diff:
        from repro.audit.oracle import run_diff

        diff_specs = (
            all_workloads()
            if args.run_all
            else [get_workload(name) for name in names]
        )
        print()
        for spec in diff_specs:
            for memento in (True, False):
                report = run_diff(
                    spec, memento, num_allocs=args.diff_allocs or None
                )
                _print_diff_line(report)
                if not report.ok:
                    exit_code = 1
    return exit_code


def _print_diff_line(report) -> None:
    status = "ok" if report.ok else "DIVERGED"
    print(
        f"diff: {report.workload:<12} {report.stack:<8} "
        f"{report.events:>6} events  {status}"
    )
    if report.divergence is not None:
        print(f"  first divergence: {report.divergence}")
        if report.minimized_events is not None:
            print(
                f"  minimized prefix: {report.minimized_events} events "
                f"({report.minimized_divergence})"
            )
    for message in report.soundness[:5]:
        print(f"  bypass-soundness: {message}")
    for violation in report.invariant_findings[:5]:
        print(f"  invariant: {violation}")
    for mismatch in report.columnar_mismatches[:5]:
        print(f"  columnar: {mismatch}")


def cmd_audit(args: argparse.Namespace) -> int:
    """Standalone audit: an invariant-checked replay per workload/stack,
    plus the differential oracle under ``--diff``. Builds systems
    directly (no engine, no cache) so every leg is a live, instrumented
    run; exits 1 when anything is found."""
    import dataclasses
    import json

    from repro.audit.oracle import run_diff
    from repro.harness.system import SimulatedSystem

    names = list(args.workloads) + list(args.named_workloads)
    if args.audit_all and names:
        return _usage_error("audit: name workloads or pass --all (not both)")
    if args.audit_all:
        specs = all_workloads()
    else:
        specs = [get_workload(name) for name in (names or ["html"])]
    stacks = resolve_stack_list(args.stack)
    num_allocs = args.num_allocs or None
    findings = 0
    payload = {"legs": [], "num_allocs": num_allocs, "epoch": args.epoch}
    for spec in specs:
        resolved = spec.resolved()
        if num_allocs is not None:
            resolved = dataclasses.replace(resolved, num_allocs=num_allocs)
        for stack in stacks:
            auditor = Auditor(epoch=args.epoch, every=args.every)
            previous = install_audit(auditor)
            try:
                system = SimulatedSystem(resolved, stack)
                system.run()
            finally:
                install_audit(previous)
            leg = {
                "workload": spec.name,
                "stack": stack,
                "audit": auditor.summary(),
            }
            status = (
                "ok"
                if not auditor.total_violations
                else f"{auditor.total_violations} violations"
            )
            print(
                f"audit: {spec.name:<12} {stack:<8} "
                f"{auditor.checks:>5} checks  {status}"
            )
            for violation in auditor.violations[:5]:
                print(f"  {violation}")
            findings += auditor.total_violations
            if args.diff:
                report = run_diff(resolved, stack)
                _print_diff_line(report)
                leg["diff"] = report.to_dict()
                if not report.ok:
                    findings += 1
            payload["legs"].append(leg)
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")
    return 1 if findings else 0


def cmd_fleet_run(args: argparse.Namespace) -> int:
    """One fleet simulation: profile shards through the engine, the
    arrival stream through the pool, the platform report to stdout."""
    import json

    args.jobs = resolve_jobs(args.jobs)
    if args.stacks is not None and args.stack is not None:
        return _usage_error("fleet run: pass --stack or --stacks, not both")
    selector = args.stacks if args.stacks is not None else args.stack
    stacks = resolve_stack_list(selector, default=STACKS)
    request = FleetRequest(
        workloads=tuple(args.workloads or ()),
        mix=args.mix,
        invocations=args.invocations,
        duration_s=args.duration,
        pattern=args.pattern,
        seed=args.seed,
        epochs=args.epochs,
        keep_alive_s=args.keep_alive,
        policy=args.policy,
        max_warm=args.max_warm,
        profile_seeds=args.profile_seeds,
        invocation_allocs=args.allocs,
        stacks=stacks,
        kernel=args.kernel,
    )
    engine = _make_engine(args)
    recorder = None
    ring = None
    previous_recorder = previous_ring = None
    if args.telemetry:
        from repro.fleet import FleetRecorder, install_fleet_recorder

        recorder = FleetRecorder()
        ring = EventRing(capacity=8192, sample_every=1)
        previous_recorder = install_fleet_recorder(recorder)
        previous_ring = install_ring(ring)
    try:
        result = simulate_fleet(
            request,
            engine=engine,
            log=lambda message: print(message, file=sys.stderr),
        )
    finally:
        if args.telemetry:
            from repro.fleet import install_fleet_recorder

            install_fleet_recorder(previous_recorder)
            install_ring(previous_ring)
    print(render_fleet_report(result))
    print(f"fleet key: {result.fleet_key}", file=sys.stderr)
    if args.out:
        Path(args.out).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}", file=sys.stderr)
    if args.telemetry and recorder is not None:
        records = [
            {
                "kind": "fleet",
                "fleet_key": result.fleet_key,
                "seed": result.seed,
                "invocations": result.invocations,
                "duration_s": result.duration_s,
                "epochs": result.epochs,
                "dropped_instance_spans": recorder.dropped,
            }
        ]
        records.extend(recorder.records())
        if ring is not None:
            records.append(event_record(ring.to_dict()))
        write_jsonl(Path(args.telemetry), records)
        print(
            f"wrote {args.telemetry} ({len(records)} telemetry "
            "records)",
            file=sys.stderr,
        )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    backend = resolve_backend(args.backend)
    with create_backend(backend, _default_cache_dir(args.cache_dir)) as cache:
        if args.action == "info":
            info = cache.info()
            rows = [
                [key, info[key]]
                for key in ("backend", "path", "entries", "bytes")
            ]
            rows.append(["source fingerprint", source_fingerprint()])
            rows.append(["cost-model fingerprint", cost_model_fingerprint()])
            print(render_table(["field", "value"], rows, title="result cache"))
        else:
            print(f"removed {cache.clear()} cache entries")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        ExperimentServer,
    )
    # Bad --jobs/--workers raise UsageError, which main reports with
    # exit 2 — the shared resolver owns the validation now.
    jobs = resolve_jobs(args.jobs)
    workers = resolve_workers(args.workers)
    port = DEFAULT_PORT if args.port is None else args.port
    if not 0 <= port <= 65535:
        return _usage_error(f"serve: port must be 0-65535, got {port}")
    host = DEFAULT_HOST if args.host is None else args.host
    if not host:
        return _usage_error("serve: host must be non-empty")

    engine = ExperimentEngine(
        cache_dir=args.cache_dir,
        jobs=jobs,
        use_disk_cache=False if args.no_cache else None,
        backend=resolve_backend(args.backend),
    )
    server = ExperimentServer(
        host=host,
        port=port,
        engine=engine,
        workers=workers,
        log_requests=args.log_requests,
        telemetry_path=args.telemetry,
    )
    backend_kind = engine.disk.kind if engine.disk is not None else "none"
    print(
        f"repro serve: listening on {server.url} "
        f"(backend={backend_kind} workers={workers} jobs={jobs})",
        file=sys.stderr,
    )
    if args.telemetry:
        print(
            f"repro serve: appending job traces to {args.telemetry}",
            file=sys.stderr,
        )

    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    server.start()
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("repro serve: shut down cleanly", file=sys.stderr)
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    traces = [generate_trace(spec) for spec in all_workloads()]
    sizes = size_distribution(traces)
    lifetimes = lifetime_distribution(traces)
    print(render_grouped(
        SIZE_BIN_LABELS,
        {"% of allocations": [s * 100 for s in sizes]},
        title="Fig. 2 — allocation sizes (all workloads)",
        value_fmt=".1f",
    ))
    print()
    print(render_grouped(
        LIFETIME_BIN_LABELS,
        {"% of allocations": [x * 100 for x in lifetimes]},
        title="Fig. 3 — lifetimes (all workloads)",
        value_fmt=".1f",
    ))
    print()
    cells = joint_size_lifetime(traces)
    print(render_table(
        ["cell", "fraction"],
        sorted(cells.items()),
        title="Table 1 — joint size x lifetime",
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    result = SWEEPS[args.name]()
    if isinstance(result, dict) and all(
        isinstance(v, dict) for v in result.values()
    ):
        headers = ["key"] + sorted(
            {k for v in result.values() for k in v}
        )
        rows = [
            [key] + [value.get(col, "") for col in headers[1:]]
            for key, value in result.items()
        ]
        print(render_table(headers, rows, title=f"sweep: {args.name}"))
    else:
        print(render_table(
            ["metric", "value"], sorted(result.items()),
            title=f"sweep: {args.name}",
        ))
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    model = EnergyModel()
    report = model.report(run_workload(get_workload(args.workload)))
    print(render_table(
        ["metric", "value"],
        [
            [k, f"{v:.3e}" if k.endswith("_j") else f"{v:.4f}"]
            for k, v in report.items()
        ],
        title=f"Memory-management energy: {args.workload}",
    ))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import perfbench

    payload = perfbench.run_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        num_allocs=args.num_allocs,
        workloads=args.workloads or None,
        compare_path=Path(args.compare) if args.compare else None,
        kernel=args.kernel,
        stacks=args.stacks,
    )
    out = (
        Path(args.out)
        if args.out
        else perfbench.default_output_path(Path.cwd(), smoke=args.smoke)
    )
    perfbench.write_bench(payload, out)
    rows = [
        [
            key,
            row["events"],
            f"{row['seconds'] * 1e3:.1f}",
            f"{row['events_per_sec']:,.0f}",
        ]
        for key, row in sorted(payload["replay"].items())
    ]
    print(render_table(
        ["workload/stack", "events", "best ms", "events/sec"],
        rows,
        title="Replay throughput" + (" (smoke)" if args.smoke else ""),
    ))
    if "engine_cache" in payload:
        cache = payload["engine_cache"]
        print(
            f"engine cache: miss {cache['miss_seconds'] * 1e3:.1f} ms, "
            f"disk hit {cache['disk_hit_seconds'] * 1e3:.1f} ms "
            f"({cache['disk_hit_speedup']:.0f}x), "
            f"memo hit {cache['memo_hit_seconds'] * 1e3:.3f} ms"
        )
    if "obs_overhead" in payload:
        obs = payload["obs_overhead"]
        print(
            f"obs overhead: disabled {obs['disabled_seconds'] * 1e3:.1f} ms, "
            f"enabled {obs['enabled_seconds'] * 1e3:.1f} ms "
            f"({(obs['overhead_ratio'] - 1) * 100:+.1f}%)"
        )
    if "profile_overhead" in payload:
        prof = payload["profile_overhead"]
        print(
            f"profile overhead: disabled "
            f"{prof['disabled_seconds'] * 1e3:.1f} ms, "
            f"enabled {prof['enabled_seconds'] * 1e3:.1f} ms "
            f"({(prof['overhead_ratio'] - 1) * 100:+.1f}%)"
        )
    if "kernels" in payload:
        kernels = payload["kernels"]
        if kernels["numpy"]:
            rows = [
                [
                    key,
                    f"{row['scalar_events_per_sec']:,.0f}",
                    f"{row['vectorized_events_per_sec']:,.0f}",
                    f"{row['speedup']:.3f}x",
                    f"{row['segment']['compute_fraction']:.0%}",
                ]
                for key, row in sorted(kernels["keys"].items())
            ]
            print()
            print(render_table(
                ["workload/stack", "scalar ev/s", "vectorized ev/s",
                 "speedup", "compute extracted"],
                rows,
                title="Kernel A/B (scalar vs vectorized)",
            ))
            print(
                f"kernel A/B geomean: "
                f"{kernels['geomean_speedup']:.3f}x"
            )
        else:
            print(
                "kernel A/B: numpy not installed; scalar only "
                "(pip install -e .[fast])"
            )
    if "comparison" in payload:
        comparison = payload["comparison"]
        if comparison.get("warning"):
            print(f"comparison: {comparison['warning']}")
        else:
            against = (
                f"{comparison['reference']} "
                f"({comparison.get('reference_date')}, "
                f"{comparison.get('reference_fingerprint')})"
            )
            for key, ratio in sorted(comparison["speedup"].items()):
                print(f"  {key}: {ratio:.2f}x vs {against}")
    print(f"wrote {out}")
    return 0


# -- repro obs ----------------------------------------------------------------


def _ledger_at(path: Optional[str]) -> RunLedger:
    if path is not None:
        return RunLedger(Path(path))
    return RunLedger(default_ledger_path(_default_cache_dir(None)))


def cmd_obs_report(args: argparse.Namespace) -> int:
    ledger = _ledger_at(args.ledger)
    printed = False
    all_entries, skipped = ledger.read_classified()
    if skipped:
        print(
            f"WARNING: skipped {skipped} ledger line(s) with an unknown "
            "schema (written by a different repro version)",
            file=sys.stderr,
        )
    run_entries, fleet_entries = split_fleet_entries(all_entries)
    entries = run_entries[-args.last:]
    if entries:
        rows = [
            [
                entry.get("workload", "?"),
                entry.get("stack", "?"),
                entry.get("source", "?"),
                f"{entry.get('elapsed_s', 0.0):.2f}",
                f"{entry.get('total_cycles') or 0:,.0f}",
                entry.get("counter_digest", ""),
            ]
            for entry in entries
        ]
        print(render_table(
            ["workload", "stack", "source", "elapsed s", "total cycles",
             "digest"],
            rows,
            title=f"run ledger: last {len(entries)} of "
            f"{len(run_entries)} ({ledger.path})",
        ))
        determinism = check_ledger_determinism(ledger)
        if determinism["conflicts"]:
            print(
                "WARNING: counter digests disagree for "
                f"{len(determinism['conflicts'])} content key(s) — "
                "nondeterministic replay or stale fingerprints"
            )
        printed = True
    fleet_shown = fleet_entries[-args.last:]
    if fleet_shown:
        if printed:
            print()
        fleet_rows = []
        for entry in fleet_shown:
            stacks = entry.get("stacks") or {}
            cold = "/".join(
                f"{stacks[name].get('cold_start_p95_ms', 0.0):.1f}"
                for name in sorted(stacks)
            )
            stranded = "/".join(
                f"{stacks[name].get('stranded_gb_s', 0.0):.2f}"
                for name in sorted(stacks)
            )
            fleet_rows.append([
                str(entry.get("key", "?"))[:16],
                f"{entry.get('invocations') or 0:,}",
                ",".join(sorted(stacks)),
                cold or "-",
                stranded or "-",
                entry.get("metrics_digest", ""),
            ])
        print(render_table(
            ["fleet key", "invocations", "stacks", "cold p95 ms",
             "stranded GB·s", "digest"],
            fleet_rows,
            title=f"fleet executions: last {len(fleet_shown)} of "
            f"{len(fleet_entries)}",
        ))
        digests_per_key: dict = {}
        for entry in fleet_entries:
            digest = entry.get("metrics_digest")
            if digest:
                bucket = digests_per_key.setdefault(entry.get("key"), [])
                if digest not in bucket:
                    bucket.append(digest)
        conflicted = {
            key for key, bucket in digests_per_key.items()
            if len(bucket) > 1
        }
        if conflicted:
            print(
                "WARNING: fleet metrics digests disagree for "
                f"{len(conflicted)} fleet key(s) — the seeded "
                "simulation is not bit-stable"
            )
        printed = True
    if args.metrics:
        records = read_jsonl(Path(args.metrics))
        runs = [r for r in records if r.get("kind") == "run"]
        if runs:
            if printed:
                print()
            print(render_table(
                ["workload", "stack", "total cycles", "sim seconds",
                 "dram MB"],
                [
                    [
                        run.get("workload", "?"),
                        run.get("stack", "?"),
                        f"{run.get('total_cycles') or 0:,.0f}",
                        f"{run.get('seconds') or 0.0:.6f}",
                        f"{(run.get('dram_bytes') or 0) / 1e6:.2f}",
                    ]
                    for run in runs
                ],
                title=f"metric runs ({args.metrics})",
            ))
            printed = True
        for record in records:
            if record.get("kind") == "spans" and record.get("spans"):
                print()
                print("Span tree")
                print("=========")
                print(render_span_tree({"spans": record["spans"]}))
                printed = True
            elif record.get("kind") == "events" and record.get("counts"):
                print()
                print(render_table(
                    ["event", "count"],
                    sorted(record["counts"].items()),
                    title="sampled hardware events",
                ))
                printed = True
    if not printed:
        print("nothing to report: no ledger entries or metric records")
    return 0


def _load_payload(path: Path):
    """Sniff OLD/NEW diff operands: bench JSON dict or metrics JSONL.

    A one-line JSONL file also parses as a JSON document, so the
    ``kind`` discriminator (present on every metrics record, never on a
    bench payload) decides, not parseability alone.
    """
    import json

    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
        if isinstance(payload, dict) and "kind" not in payload:
            return "bench", payload
    except json.JSONDecodeError:
        pass
    return "jsonl", read_jsonl(path)


def cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.harness import perfbench

    old_path, new_path = Path(args.old), Path(args.new)
    old_kind, old = _load_payload(old_path)
    new_kind, new = _load_payload(new_path)
    if old_kind != new_kind:
        return _usage_error(
            "obs diff: operands must both be bench JSON or both JSONL"
        )
    if old_kind == "bench":
        speedups = perfbench.compare(
            new.get("replay", new), old.get("replay", old)
        )
        if not speedups:
            return _usage_error("obs diff: no overlapping replay keys")
        print(render_table(
            ["workload/stack", "new/old events/sec"],
            [[key, f"{ratio:.3f}x"] for key, ratio in sorted(speedups.items())],
            title=f"bench diff: {new_path.name} vs {old_path.name}",
        ))
        return 0
    old_runs = {
        (r.get("workload"), r.get("stack")): r
        for r in old if r.get("kind") == "run"
    }
    new_runs = {
        (r.get("workload"), r.get("stack")): r
        for r in new if r.get("kind") == "run"
    }
    keys = sorted(set(old_runs) & set(new_runs))
    if not keys:
        return _usage_error("obs diff: no overlapping run records")
    rows = []
    for key in keys:
        o, n = old_runs[key], new_runs[key]
        o_cycles = o.get("total_cycles") or 0
        n_cycles = n.get("total_cycles") or 0
        same = o.get("counters", {}) == n.get("counters", {})
        rows.append([
            f"{key[0]}/{key[1]}",
            f"{o_cycles:,.0f}",
            f"{n_cycles:,.0f}",
            f"{(n_cycles / o_cycles - 1) * 100:+.2f}%" if o_cycles else "n/a",
            "yes" if same else "NO",
        ])
    print(render_table(
        ["workload/stack", "old cycles", "new cycles", "delta",
         "counters equal"],
        rows,
        title=f"metrics diff: {new_path.name} vs {old_path.name}",
    ))
    return 0


def _find_baseline() -> Optional[Path]:
    """Newest committed full-bench payload in the working directory."""
    candidates = sorted(
        p for p in Path.cwd().glob("BENCH_*.json")
        if not p.name.endswith(".smoke.json")
    )
    return candidates[-1] if candidates else None


def cmd_obs_check(args: argparse.Namespace) -> int:
    import json

    failed = False
    checked = False
    baseline_path = (
        Path(args.baseline) if args.baseline else _find_baseline()
    )
    if args.bench:
        if baseline_path is None:
            return _usage_error(
                "obs check: no BENCH_*.json baseline found; pass --baseline"
            )
        current = json.loads(Path(args.bench).read_text())
        baseline = json.loads(baseline_path.read_text())
        verdict = check_bench(current, baseline, args.threshold)
        rows = [
            [
                row["key"],
                f"{row['baseline']:,.0f}" if row["baseline"] else "-",
                f"{row['current']:,.0f}" if row["current"] else "-",
                f"{row['ratio']:.3f}x" if row["ratio"] else "-",
                "REGRESSED" if row["regressed"] else "ok",
            ]
            for row in verdict["rows"]
        ]
        print(render_table(
            ["workload/stack", "baseline ev/s", "current ev/s", "ratio",
             "verdict"],
            rows,
            title=f"regression gate: {args.bench} vs {baseline_path.name} "
            f"(threshold {verdict['threshold_pct']:.0f}%)",
        ))
        checked = True
        failed = failed or not verdict["ok"]
    ledger_path = (
        Path(args.ledger)
        if args.ledger
        else default_ledger_path(_default_cache_dir(None))
    )
    if ledger_path.exists():
        determinism = check_ledger_determinism(RunLedger(ledger_path))
        conflicts = determinism["conflicts"]
        print(
            f"ledger determinism: "
            + (
                f"{len(conflicts)} conflicting key(s)"
                if conflicts
                else f"ok ({ledger_path})"
            )
        )
        checked = True
        failed = failed or bool(conflicts)
    if not checked:
        return _usage_error(
            "obs check: nothing to check (pass --bench and/or have a ledger)"
        )
    if failed and args.smoke:
        print("obs check: regressions found (report-only in --smoke mode)")
        return 0
    if failed:
        print("obs check: FAILED", file=sys.stderr)
        return 1
    print("obs check: ok")
    return 0


def cmd_obs_profile(args: argparse.Namespace) -> int:
    records = read_jsonl(Path(args.metrics))
    profiles = [r for r in records if r.get("kind") == "profile"]
    if not profiles:
        raise ValueError(
            f"obs profile: no profile records in {args.metrics} "
            "(export one with `repro run --profile --metrics PATH`)"
        )
    for payload in profiles:
        print("Cycle attribution")
        print("=================")
        print(render_profile(payload))
        print()
        print(render_top_consumers(payload, top=args.top))
        if payload.get("histograms"):
            print()
            print(render_histograms(payload))
    return 0


def cmd_obs_timeline(args: argparse.Namespace) -> int:
    records = read_jsonl(Path(args.metrics))
    relevant = [
        r for r in records
        if r.get("kind")
        in ("spans", "events", "fleet.instance", "fleet.epoch")
    ]
    if not relevant:
        raise ValueError(
            f"obs timeline: no span, event, or fleet records in "
            f"{args.metrics} (export them with `repro run --trace "
            "--metrics PATH` or `repro fleet run --telemetry PATH`)"
        )
    out = export_timeline(Path(args.out), relevant)
    import json

    events = json.loads(out.read_text(encoding="utf-8"))["traceEvents"]
    print(
        f"wrote {out} ({len(events)} trace events) — open at "
        "https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def cmd_obs_trend(args: argparse.Namespace) -> int:
    from repro.obs.trend import (
        DEFAULT_BENCH_DROP_PCT,
        DEFAULT_FLEET_TREND_PCT,
    )

    ledger = _ledger_at(args.ledger)
    report = check_trend(ledger, threshold_pct=args.threshold)
    bench_report = check_bench_trend(
        Path(args.bench_root) if args.bench_root else Path.cwd(),
        drop_pct=(
            args.bench_drop
            if args.bench_drop is not None
            else DEFAULT_BENCH_DROP_PCT
        ),
    )
    fleet_report = check_fleet_trend(
        ledger,
        threshold_pct=(
            args.fleet_threshold
            if args.fleet_threshold is not None
            else DEFAULT_FLEET_TREND_PCT
        ),
    )
    if (
        not report["entries"]
        and not bench_report["rows"]
        and not fleet_report["entries"]
    ):
        print(f"obs trend: ledger has no entries ({ledger.path})")
        return 0
    if report["entries"]:
        print(render_trend(report))
    if bench_report["rows"]:
        print()
        print(
            "Bench throughput "
            f"({len(bench_report['files'])} committed files)"
        )
        print(render_bench_trend(bench_report))
    if fleet_report["entries"]:
        print()
        print(
            f"Fleet trend ({fleet_report['entries']} ledger entries)"
        )
        print(render_fleet_trend(fleet_report))
    ok = report["ok"] and bench_report["ok"] and fleet_report["ok"]
    if ok:
        print("obs trend: ok")
        return 0
    if args.report_only:
        print("obs trend: drift found (report-only mode)")
        return 0
    print("obs trend: FAILED", file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except UsageError as exc:
        # Bad runtime options (a zero --jobs, an unknown $REPRO_KERNEL)
        # are usage errors: same one-line report, exit code 2.
        return _usage_error(str(exc))
    except _REPORTED_ERRORS as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
