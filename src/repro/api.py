"""The stable public API facade.

``repro.api`` is the supported entry point for scripting against the
reproduction: experiment execution (engine, requests, results),
configuration, workload lookup, and observability. Internal module paths
(``repro.harness.engine``, ``repro.obs.tracing``, ...) may reorganize
between PRs; the names exported here — and their signatures — stay
stable. Import from here in notebooks, downstream scripts, and docs::

    from repro.api import run_workload, get_workload, Tracer, set_tracer

    tracer = Tracer()
    set_tracer(tracer)
    result = run_workload(get_workload("html"))
    print(result.speedup)
    print(render_span_tree(tracer.to_dict()))
    set_tracer(None)

Everything in ``__all__`` is covered by the round-trip conventions
documented in DESIGN.md: result/config objects expose
``to_dict``/``from_dict``, engines honor ``REPRO_CACHE_DIR`` /
``REPRO_NO_CACHE`` / ``REPRO_NO_LEDGER`` / ``REPRO_BACKEND``, and
tracing defaults to the zero-cost null tracer.

Fleet simulation is part of the same declarative request hierarchy:
build a ``FleetRequest`` and hand it to ``simulate_fleet`` (in-process),
``ServiceClient.submit_fleet`` (over HTTP), or ``repro fleet run`` (the
CLI) — all three speak the identical versioned payload and agree on the
request's content key.

The service surface is exported here too: ``ServiceClient`` (plus the
one-liner ``submit``/``status``/``result`` helpers honoring
``REPRO_SERVICE_URL``) talks to a ``repro serve`` instance, and
``ExperimentServer``/``create_backend`` embed the service or its result
store in-process.
"""

from __future__ import annotations

from repro.backends import (
    ResultBackend,
    backend_names,
    create_backend,
)
from repro.core.config import MementoConfig
from repro.fleet import (
    FleetRecorder,
    FleetRequest,
    FleetResult,
    get_fleet_recorder,
    install_fleet_recorder,
    render_fleet_report,
    simulate_fleet,
)
from repro.harness.engine import (
    ExperimentEngine,
    RunRequest,
    cost_model_fingerprint,
    get_default_engine,
    source_fingerprint,
)
from repro.harness.experiment import (
    WorkloadResult,
    geometric_mean,
    run_all,
    run_workload,
)
from repro.harness.system import RunResult, SimulatedSystem
from repro.obs import (
    CycleProfile,
    EventRing,
    Log2Histogram,
    NullTracer,
    RunLedger,
    Tracer,
    check_trend,
    default_ledger_path,
    export_timeline,
    get_profile,
    get_ring,
    get_tracer,
    install_profile,
    install_ring,
    render_profile,
    render_span_tree,
    render_top_consumers,
    check_fleet_trend,
    render_fleet_trend,
    render_trend,
    set_thread_tracer,
    set_tracer,
    trace_events,
    trend_by_key,
    validate_trace_events,
)
from repro.service import (
    ExperimentServer,
    JobFailed,
    ServiceClient,
    ServiceError,
    ServiceTelemetry,
    fleet_request_from_wire,
    fleet_request_to_wire,
    run_request_from_wire,
    run_request_to_wire,
)
from repro.service.client import result, status, submit
from repro.sim.params import MachineParams
from repro.sim.stats import Stats
from repro.workloads.registry import all_workloads, get_workload
from repro.workloads.synth import WorkloadSpec, generate_trace

__all__ = [
    # experiment execution
    "ExperimentEngine",
    "RunRequest",
    "RunResult",
    "SimulatedSystem",
    "WorkloadResult",
    "get_default_engine",
    "run_all",
    "run_workload",
    # fleet simulation
    "FleetRecorder",
    "FleetRequest",
    "FleetResult",
    "get_fleet_recorder",
    "install_fleet_recorder",
    "render_fleet_report",
    "simulate_fleet",
    # configuration
    "MachineParams",
    "MementoConfig",
    # workloads
    "WorkloadSpec",
    "all_workloads",
    "generate_trace",
    "get_workload",
    # observability
    "CycleProfile",
    "EventRing",
    "Log2Histogram",
    "NullTracer",
    "RunLedger",
    "Tracer",
    "check_fleet_trend",
    "check_trend",
    "default_ledger_path",
    "export_timeline",
    "get_profile",
    "get_ring",
    "get_tracer",
    "install_profile",
    "install_ring",
    "render_profile",
    "render_span_tree",
    "render_fleet_trend",
    "render_top_consumers",
    "render_trend",
    "set_thread_tracer",
    "set_tracer",
    "trace_events",
    "trend_by_key",
    "validate_trace_events",
    # service + result backends
    "ExperimentServer",
    "JobFailed",
    "ResultBackend",
    "ServiceClient",
    "ServiceError",
    "ServiceTelemetry",
    "backend_names",
    "create_backend",
    "fleet_request_from_wire",
    "fleet_request_to_wire",
    "result",
    "run_request_from_wire",
    "run_request_to_wire",
    "status",
    "submit",
    # provenance / stats
    "Stats",
    "cost_model_fingerprint",
    "geometric_mean",
    "source_fingerprint",
]
