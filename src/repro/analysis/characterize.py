"""Allocation-behaviour characterization (§2.2: Figs. 2-3, Table 1).

These functions analyze traces directly — no simulation — reproducing the
methodology of the paper's study: instrument the allocator, collect
allocation traces, normalize per function, aggregate per language.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.workloads.trace import Alloc, Free, Trace

#: Fig. 2 bins: 512-byte increments, then everything above 4096.
SIZE_BIN_EDGES = [512 * i for i in range(1, 9)]
SIZE_BIN_LABELS = [
    "[1, 512]",
    "[513, 1024]",
    "[1025, 1536]",
    "[1537, 2048]",
    "[2049, 2560]",
    "[2561, 3072]",
    "[3073, 3584]",
    "[3585, 4096]",
    "[4097, Inf]",
]

#: Fig. 3 bins: 16-allocation increments up to 256, then 257+ (which
#: includes allocations never freed before exit — OS-reclaimed).
LIFETIME_BIN_LABELS = [
    f"[{16 * i + 1}-{16 * (i + 1)}]" for i in range(16)
] + ["[257-Inf]"]

SHORT_LIVED_MAX = 16  # the paper's "short-lived" boundary
SMALL_MAX = 512


def size_bin_index(size: int) -> int:
    """Fig. 2 bin index for an allocation size."""
    for index, edge in enumerate(SIZE_BIN_EDGES):
        if size <= edge:
            return index
    return len(SIZE_BIN_EDGES)


def lifetime_bin_index(distance: Optional[int]) -> int:
    """Fig. 3 bin index for a malloc-free distance (None = never freed)."""
    if distance is None or distance > 256:
        return 16
    return (distance - 1) // 16


def size_distribution(traces: Iterable[Trace]) -> List[float]:
    """Fig. 2: fraction of allocations per 512 B size bin.

    Counts are normalized per trace before aggregating, as the paper
    normalizes per function before averaging across functions.
    """
    per_trace: List[List[float]] = []
    for trace in traces:
        counts = [0] * len(SIZE_BIN_LABELS)
        total = 0
        for event in trace:
            if isinstance(event, Alloc):
                counts[size_bin_index(event.size)] += 1
                total += 1
        if total:
            per_trace.append([c / total for c in counts])
    if not per_trace:
        raise ValueError("no traces with allocations")
    n = len(per_trace)
    return [
        sum(dist[i] for dist in per_trace) / n
        for i in range(len(SIZE_BIN_LABELS))
    ]


def malloc_free_distances(
    trace: Trace,
) -> List[Tuple[int, Optional[int]]]:
    """Per allocation: ``(size, malloc-free distance or None)``.

    Distance is measured in allocations *of the same size class* between
    the malloc and the free (§2.2's lifetime metric). Large allocations
    (>512 B) share one stream, mirroring the single large path.
    """
    class_counter: Dict[int, int] = {}
    birth: Dict[int, Tuple[int, int, int]] = {}  # obj -> (class, at, size)
    distance_of: Dict[int, Optional[int]] = {}
    order: List[int] = []  # objs in allocation order for stable output
    for event in trace:
        if isinstance(event, Alloc):
            size_class = (
                (event.size + 7) // 8 - 1 if event.size <= SMALL_MAX else -1
            )
            count = class_counter.get(size_class, 0) + 1
            class_counter[size_class] = count
            birth[event.obj] = (size_class, count, event.size)
            distance_of[event.obj] = None  # until freed
            order.append(event.obj)
        elif isinstance(event, Free):
            size_class, born_at, _size = birth[event.obj]
            distance_of[event.obj] = max(
                1, class_counter[size_class] - born_at
            )
    return [(birth[obj][2], distance_of[obj]) for obj in order]


def lifetime_distribution(traces: Iterable[Trace]) -> List[float]:
    """Fig. 3: fraction of allocations per malloc-free-distance bin."""
    per_trace: List[List[float]] = []
    for trace in traces:
        counts = [0] * len(LIFETIME_BIN_LABELS)
        records = malloc_free_distances(trace)
        for _size, distance in records:
            counts[lifetime_bin_index(distance)] += 1
        total = len(records)
        if total:
            per_trace.append([c / total for c in counts])
    if not per_trace:
        raise ValueError("no traces with allocations")
    n = len(per_trace)
    return [
        sum(dist[i] for dist in per_trace) / n
        for i in range(len(LIFETIME_BIN_LABELS))
    ]


def joint_size_lifetime(traces: Iterable[Trace]) -> Dict[str, float]:
    """Table 1: joint distribution of size x lifetime.

    Small = ≤512 B; short-lived = freed within 16 same-class allocations.
    Never-freed allocations count as long-lived (OS batch reclaim).
    """
    cells = {
        "small_short": 0,
        "small_long": 0,
        "large_short": 0,
        "large_long": 0,
    }
    total = 0
    for trace in traces:
        for size, distance in malloc_free_distances(trace):
            small = size <= SMALL_MAX
            short = distance is not None and distance <= SHORT_LIVED_MAX
            key = ("small_" if small else "large_") + (
                "short" if short else "long"
            )
            cells[key] += 1
            total += 1
    if not total:
        raise ValueError("no allocations")
    return {key: value / total for key, value in cells.items()}


def short_lived_fraction(traces: Sequence[Trace]) -> float:
    """Overall fraction freed within 16 same-class allocations."""
    dist = lifetime_distribution(traces)
    return dist[0]


def small_fraction(traces: Sequence[Trace]) -> float:
    """Overall fraction at or under 512 B."""
    return size_distribution(traces)[0]
