"""Function pricing (§6.5, Fig. 14) under the AWS Lambda model [4].

Lambda bills duration at millisecond granularity times configured memory
(GB-seconds), plus a fixed fee per invocation. The paper reports runtime
pricing normalized to the baseline (29 % savings on average) and the
end-to-end cost with the per-invocation fee included (11 % on average, up
to 31 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiment import WorkloadResult
from repro.harness.system import RunResult
from repro.sim.params import PAGE_SIZE

#: Published x86 Lambda prices (us-east-1, 2023).
GB_SECOND_RATE = 1.66667e-5  # USD per GB-second
PER_INVOCATION_FEE = 2.0e-7  # USD per request

#: Our traces are scaled-down functions (tens of ms, a few MB); the fee's
#: relative weight is matched to paper-scale functions (~1 s, ~100 MB) by
#: expressing it as this fraction of the baseline's runtime cost when
#: normalizing end-to-end pricing. Derived from the paper's own numbers:
#: runtime savings 29% dilute to 11% end-to-end -> fee ~= 62% of cost.
FEE_FRACTION_OF_BASELINE = 0.62


@dataclass(frozen=True)
class PricingModel:
    """AWS-style pricing: GB-seconds plus a per-invocation fee."""

    gb_second_rate: float = GB_SECOND_RATE
    per_invocation_fee: float = PER_INVOCATION_FEE
    #: Billing rounds duration up to this granularity. Lambda bills in
    #: 1 ms quanta on ~1 s functions; our traces are scaled-down by ~100x,
    #: so the default quantum is scaled the same way to keep quantization
    #: error comparable.
    duration_quantum_s: float = 1e-5

    def runtime_cost(self, run: RunResult) -> float:
        """Duration x memory cost of one invocation (no fixed fee)."""
        quanta = max(
            1, -(-run.seconds // self.duration_quantum_s)
        )
        duration = quanta * self.duration_quantum_s
        # Billed memory tracks the function's heap (user pages); kernel
        # bookkeeping is not billed to the tenant.
        memory_gb = max(run.peak_user_pages * PAGE_SIZE, 1) / (1 << 30)
        return duration * memory_gb * self.gb_second_rate

    def invocation_cost(self, run: RunResult) -> float:
        """End-to-end cost including the per-invocation fee."""
        return self.runtime_cost(run) + self.per_invocation_fee

    # -- Fig. 14 ------------------------------------------------------------

    def normalized_runtime_pricing(self, result: WorkloadResult) -> float:
        """Memento runtime cost / baseline runtime cost (Fig. 14 bars)."""
        return self.runtime_cost(result.memento) / self.runtime_cost(
            result.baseline
        )

    def normalized_invocation_pricing(self, result: WorkloadResult) -> float:
        """Same, with the fixed per-invocation fee diluted in.

        The fee is weighted relative to the baseline runtime cost at
        paper-scale (see FEE_FRACTION_OF_BASELINE) so the normalized
        number is comparable to §6.5's end-to-end figure despite our
        scaled-down traces.
        """
        runtime_ratio = self.normalized_runtime_pricing(result)
        return (
            FEE_FRACTION_OF_BASELINE
            + (1 - FEE_FRACTION_OF_BASELINE) * runtime_ratio
        )
