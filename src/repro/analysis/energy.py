"""Energy model for memory management (extension of Table 3's CACTI data).

The paper reports the HOT and AAC cost 1.32 mW / 0.43 mW and a combined
~0.011 mm² at 22 nm — "minimal". This module turns those published
numbers plus the simulation's activity counts into an energy comparison:
how many joules each stack spends on memory management, and how small
Memento's structure energy is next to the core cycles it eliminates.

Model (documented approximations):

* Core energy is dynamic-dominated: ``core_watts`` at ``freq_hz`` gives a
  per-cycle energy; memory-management cycles on either stack are charged
  at that rate.
* HOT/AAC per-access energy derives from the CACTI average power at full
  tilt: ``P / f`` joules per cycle times the structure's access latency.
* DRAM transfer energy uses a standard ~20 pJ/bit DDR4 figure for the
  traffic the run actually moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.harness.experiment import WorkloadResult
from repro.harness.system import RunResult
from repro.sim.hwcost import AAC_COST, HOT_COST


@dataclass(frozen=True)
class EnergyModel:
    """Energy accounting constants."""

    freq_hz: float = 3.0e9
    #: Dynamic core power attributable to executing instructions.
    core_watts: float = 4.0
    #: DDR4 transfer energy per bit moved.
    dram_joules_per_bit: float = 20e-12

    @property
    def core_joules_per_cycle(self) -> float:
        return self.core_watts / self.freq_hz

    @property
    def hot_joules_per_access(self) -> float:
        per_cycle = HOT_COST.power_mw * 1e-3 / self.freq_hz
        return per_cycle * HOT_COST.latency_cycles

    @property
    def aac_joules_per_access(self) -> float:
        per_cycle = AAC_COST.power_mw * 1e-3 / self.freq_hz
        return per_cycle * AAC_COST.latency_cycles

    # -- per-run accounting ---------------------------------------------------

    def mm_core_energy(self, run: RunResult) -> float:
        """Joules the core spent executing memory management."""
        return run.mm_cycles * self.core_joules_per_cycle

    def structure_energy(self, run: RunResult) -> float:
        """Joules spent in Memento's HOT and AAC (zero on the baseline)."""
        if not run.memento:
            return 0.0
        stats = run.stats
        hot_accesses = (
            stats.get("memento.hot.alloc_hits", 0)
            + stats.get("memento.hot.alloc_misses", 0)
            + stats.get("memento.hot.free_hits", 0)
            + stats.get("memento.hot.free_misses", 0)
        )
        aac_accesses = stats.get("memento.aac.hits", 0) + stats.get(
            "memento.aac.misses", 0
        )
        return (
            hot_accesses * self.hot_joules_per_access
            + aac_accesses * self.aac_joules_per_access
        )

    def dram_energy(self, run: RunResult) -> float:
        """Joules moving the run's DRAM traffic."""
        return run.dram_bytes * 8 * self.dram_joules_per_bit

    def mm_energy(self, run: RunResult) -> float:
        """Total memory-management energy: core + structures."""
        return self.mm_core_energy(run) + self.structure_energy(run)

    # -- comparisons --------------------------------------------------------------

    def report(self, result: WorkloadResult) -> Dict[str, float]:
        """Energy comparison for one workload (joules and ratios)."""
        base, mem = result.baseline, result.memento
        base_mm = self.mm_energy(base)
        mem_mm = self.mm_energy(mem)
        return {
            "baseline_mm_j": base_mm,
            "memento_mm_j": mem_mm,
            "mm_energy_reduction": 1 - mem_mm / base_mm if base_mm else 0.0,
            "structure_j": self.structure_energy(mem),
            "structure_share_of_savings": (
                self.structure_energy(mem) / (base_mm - mem_mm)
                if base_mm > mem_mm
                else float("inf")
            ),
            "dram_energy_reduction": (
                1 - self.dram_energy(mem) / self.dram_energy(base)
                if base.dram_bytes
                else 0.0
            ),
        }
