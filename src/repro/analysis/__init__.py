"""Analysis: workload characterization, pricing, and report rendering."""

from repro.analysis.characterize import (
    joint_size_lifetime,
    lifetime_distribution,
    size_distribution,
)
from repro.analysis.energy import EnergyModel
from repro.analysis.pricing import PricingModel
from repro.analysis.report import render_series, render_table

__all__ = [
    "EnergyModel",
    "PricingModel",
    "joint_size_lifetime",
    "lifetime_distribution",
    "render_series",
    "render_table",
    "size_distribution",
]
