"""ASCII rendering for the reproduced tables and figures.

Every benchmark prints its table/series through these helpers so the
regenerated evaluation artifacts have one consistent, diffable format.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    floatfmt: str = ".3f",
) -> str:
    """Render a fixed-width table."""
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted_rows.append(
            [
                f"{cell:{floatfmt}}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(
            len(str(headers[col])),
            *(len(row[col]) for row in formatted_rows),
        )
        if formatted_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    labels: Sequence[str],
    values: Sequence[float],
    title: Optional[str] = None,
    bar_width: int = 40,
    value_fmt: str = ".3f",
) -> str:
    """Render one labelled series as a horizontal bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / peak * bar_width)))
        lines.append(
            f"{label.ljust(label_width)}  {value:{value_fmt}}  {bar}"
        )
    return "\n".join(lines)


def render_grouped(
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    value_fmt: str = ".3f",
) -> str:
    """Render several aligned series as a table (Fig. 9/11-style bars)."""
    headers = ["workload"] + list(series)
    rows = []
    for index, label in enumerate(labels):
        rows.append(
            [label] + [float(series[name][index]) for name in series]
        )
    return render_table(headers, rows, title=title, floatfmt=value_fmt)


def paper_vs_measured(
    rows: Iterable[Sequence[object]],
    title: str,
) -> str:
    """Standard three-column comparison used by EXPERIMENTS.md."""
    return render_table(
        ["metric", "paper", "measured"], rows, title=title
    )
