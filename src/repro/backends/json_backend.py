"""JSON-file result backend: a flat directory of ``<key>.json`` artifacts.

This is the original ``DiskCache`` store extracted behind the
:class:`~repro.backends.base.ResultBackend` contract. One file per
content key keeps entries independently inspectable (``cat`` a result,
``rm`` a single key) and makes concurrent writers trivially safe: each
``put`` writes to a private temp file and atomically renames it into
place, so readers see either the old payload or the new one, never a
torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.backends.base import ResultBackend, register_backend


class JsonBackend(ResultBackend):
    """One ``<content-key>.json`` file per entry under ``root``."""

    kind = "json"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._evict(path)
            return None
        if not isinstance(payload, dict):
            self._evict(path)
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist an entry (write-to-temp + rename), so a
        crashed or concurrent writer can never leave a torn file."""
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> None:
        self._evict(self.path(key))

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- maintenance -----------------------------------------------------

    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def keys(self) -> List[str]:
        return [path.stem for path in self.entries()]

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            self._evict(path)
            removed += 1
        return removed

    def info(self) -> Dict[str, Any]:
        entries = self.entries()
        return {
            "backend": self.kind,
            "path": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
        }


register_backend(JsonBackend.kind, JsonBackend)
