"""SQLite result backend: every entry in one ``results.sqlite`` file.

Trades the JSON backend's one-file-per-key inspectability for a single
artifact that scales to many thousands of entries without directory
churn. Writes ride SQLite's own transactional atomicity
(``INSERT OR REPLACE`` inside an implicit transaction), so the contract's
torn-write and concurrent-writer guarantees come from the database
engine rather than rename tricks. Each call opens a short-lived
connection — the backend object itself therefore carries no cross-thread
state and is safe to share between the service's worker threads.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.backends.base import ResultBackend, register_backend

#: Database file inside the cache directory.
DB_NAME = "results.sqlite"

#: Seconds a writer waits on a locked database before failing.
_BUSY_TIMEOUT_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL
)
"""


class SqliteBackend(ResultBackend):
    """All entries in one SQLite database under ``root``."""

    kind = "sqlite"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.db_path = self.root / DB_NAME

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, timeout=_BUSY_TIMEOUT_S)
        conn.execute(_SCHEMA)
        return conn

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if not self.db_path.is_file():
            return None
        try:
            with closing(self._connect()) as conn, conn:
                row = conn.execute(
                    "SELECT payload FROM results WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except (json.JSONDecodeError, TypeError):
            payload = None
        if not isinstance(payload, dict):
            self.delete(key)
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(payload, sort_keys=True)
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "INSERT OR REPLACE INTO results (key, payload) "
                "VALUES (?, ?)",
                (key, blob),
            )

    def delete(self, key: str) -> None:
        if not self.db_path.is_file():
            return
        try:
            with closing(self._connect()) as conn, conn:
                conn.execute("DELETE FROM results WHERE key = ?", (key,))
        except sqlite3.Error:
            pass

    def keys(self) -> List[str]:
        if not self.db_path.is_file():
            return []
        try:
            with closing(self._connect()) as conn, conn:
                rows = conn.execute(
                    "SELECT key FROM results ORDER BY key"
                ).fetchall()
        except sqlite3.Error:
            return []
        return [row[0] for row in rows]

    def clear(self) -> int:
        if not self.db_path.is_file():
            return 0
        with closing(self._connect()) as conn, conn:
            (count,) = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            conn.execute("DELETE FROM results")
        return int(count)

    def info(self) -> Dict[str, Any]:
        return {
            "backend": self.kind,
            "path": str(self.db_path),
            "entries": len(self.keys()),
            "bytes": (
                self.db_path.stat().st_size
                if self.db_path.is_file()
                else 0
            ),
        }


register_backend(SqliteBackend.kind, SqliteBackend)
