"""In-memory result backend: the contract's reference double.

Entries live only as long as the process, which makes this backend the
test double for the contract suite and the natural choice for service
deployments that want the job queue without a persistent store
(``REPRO_BACKEND=memory``). Payloads round-trip through JSON text just
like the durable backends, so anything unserializable fails here too —
the double never accepts what a real backend would reject — and stored
entries are isolated from later mutation of the caller's dict.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.backends.base import ResultBackend, register_backend


class MemoryBackend(ResultBackend):
    """Process-local store of JSON-encoded entries."""

    kind = "memory"

    def __init__(self, root: Optional[Path] = None) -> None:
        # ``root`` is accepted (and ignored) so the factory signature
        # matches the durable backends.
        self.root = Path(root) if root is not None else None
        self._data: Dict[str, str] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            blob = self._data.get(key)
        if blob is None:
            return None
        try:
            payload = json.loads(blob)
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            self.delete(key)
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload, sort_keys=True)
        with self._lock:
            self._data[key] = blob

    def delete(self, key: str) -> None:
        with self._lock:
            self._data.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._data)

    def clear(self) -> int:
        with self._lock:
            removed = len(self._data)
            self._data.clear()
        return removed

    def info(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": self.kind,
                "path": "(memory)",
                "entries": len(self._data),
                "bytes": sum(len(blob) for blob in self._data.values()),
            }


register_backend(MemoryBackend.kind, MemoryBackend)
