"""The result-backend contract.

A :class:`ResultBackend` is the persistence layer behind the
:class:`~repro.harness.engine.ExperimentEngine`'s content-addressed
result store: a durable key/value map from content keys to
JSON-serializable payload dicts. The engine owns the *semantics* of the
payload (envelope schema, ``result`` body, invalidation fingerprints);
a backend owns only storage, and every implementation must satisfy the
same contract, enforced by ``tests/backends/test_backend_contract.py``:

* ``get`` returns the stored payload dict, or ``None`` when the key is
  absent **or the stored bytes are corrupt** — corrupt entries are
  evicted on read so a later ``put`` starts clean.
* ``put`` is atomic and last-writer-wins: a crashed or concurrent
  writer can never leave a torn entry behind, and concurrent writers of
  the same key leave one of the written payloads, intact.
* ``delete`` is idempotent; ``clear`` empties the store and returns the
  number of entries removed; ``keys`` lists stored content keys.
* ``info`` reports at least ``backend``, ``path``, ``entries``, and
  ``bytes`` (the CLI's ``repro cache info`` table).

Backends are selected by name through :func:`create_backend` —
``REPRO_BACKEND`` (or ``repro serve --backend``) picks ``json``
(default, one file per key) or ``sqlite`` (one database file); the
``memory`` backend backs tests and cache-less service deployments.
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

#: Default on-disk store location (overridable via ``REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment variable naming the backend ``create_backend`` builds.
BACKEND_ENV = "REPRO_BACKEND"

#: The backend used when neither the argument nor the env var names one.
DEFAULT_BACKEND = "json"


class ResultBackend(abc.ABC):
    """Durable key/value store for result payload dicts."""

    #: Registry name, set by each implementation.
    kind: str = "abstract"

    @abc.abstractmethod
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None`` when absent or
        corrupt (corrupt entries are evicted)."""

    @abc.abstractmethod
    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key`` (replacing any
        previous entry)."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key`` if present (idempotent)."""

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """Stored content keys, sorted."""

    @abc.abstractmethod
    def info(self) -> Dict[str, Any]:
        """Storage summary: ``backend``, ``path``, ``entries``, ``bytes``."""

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            self.delete(key)
            removed += 1
        return removed

    def close(self) -> None:
        """Release held resources (a no-op for stateless backends)."""

    def __enter__(self) -> "ResultBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: Name -> factory taking the store root directory.
_REGISTRY: Dict[str, Callable[[Path], ResultBackend]] = {}


def register_backend(
    name: str, factory: Callable[[Path], ResultBackend]
) -> None:
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    return sorted(_REGISTRY)


def resolve_backend_kind(kind: Optional[str] = None) -> str:
    """The backend name to build: argument, ``REPRO_BACKEND``, default.

    Raises :class:`ValueError` (the CLI's clean-usage-error type) for a
    name no backend registered under.
    """
    resolved = kind or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown result backend {resolved!r}; "
            f"choose from {backend_names()}"
        )
    return resolved


def create_backend(
    kind: Optional[str] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> ResultBackend:
    """Build the configured backend rooted at the cache directory.

    ``kind`` falls back to ``REPRO_BACKEND`` then ``json``; ``cache_dir``
    falls back to ``REPRO_CACHE_DIR`` then ``.repro-cache`` — the same
    resolution order the engine and CLI use, so every entry point lands
    on the same store.
    """
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return _REGISTRY[resolve_backend_kind(kind)](Path(cache_dir))
