"""Pluggable result backends for the experiment engine and service.

See :mod:`repro.backends.base` for the contract. Importing this package
registers the built-in backends (``json``, ``sqlite``, ``memory``);
:func:`create_backend` builds the one configured via argument,
``REPRO_BACKEND``, or the ``json`` default.
"""

from repro.backends.base import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    DEFAULT_CACHE_DIR,
    ResultBackend,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend_kind,
)
from repro.backends.json_backend import JsonBackend
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite_backend import SqliteBackend

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_DIR",
    "JsonBackend",
    "MemoryBackend",
    "ResultBackend",
    "SqliteBackend",
    "backend_names",
    "create_backend",
    "register_backend",
    "resolve_backend_kind",
]
