"""One versioned wire codec shared by every declarative request type.

Before PR 8, the request machinery lived in two places: content-key
normalization and hashing in :mod:`repro.harness.engine`, and the
``schema_version`` conventions (stamp on write, tolerate version-0
payloads, reject anything newer) duplicated across
``RunRequest.to_dict``/``from_dict`` and :mod:`repro.service.wire`.
Adding a second request type (:class:`~repro.fleet.request.FleetRequest`)
would have meant a third copy. This module is the single implementation
both request hierarchies use:

* :func:`canonical` / :func:`digest` — reduce any dataclass tree to a
  stable JSON form and hash it (the content-key primitive).
* :class:`VersionedCodec` — the write/read halves of the versioned wire
  schema: ``stamp`` adds ``schema_version``; ``open`` pops it back off,
  upgrading version-0 payloads (written before the field existed — the
  body is identical) transparently and rejecting payloads from a newer
  schema so wire or disk corruption fails loudly instead of silently
  simulating the wrong thing.
* :func:`checked_fields` — strict unknown-field rejection for nested
  dataclass bodies.
* :func:`content_key` — the shared key derivation: schema tag plus
  provenance fingerprints plus the canonicalized request body, hashed.

The codec knows nothing about any specific request type; each type owns
its field list and normalization rules and delegates the mechanics here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping


def canonical(value: Any) -> Any:
    """Reduce a request component to a stable, JSON-serializable form.

    Dataclasses are tagged with their class name so two different types
    with coincidentally equal fields cannot collide.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__type__": type(value).__name__, **body}
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def digest(payload: Any) -> str:
    """sha256 hex digest of the canonical JSON form of ``payload``."""
    blob = json.dumps(
        canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def content_key(
    body: Any,
    *,
    schema: int,
    fingerprints: Mapping[str, str],
) -> str:
    """The shared content-key derivation.

    ``schema`` retires old artifacts when the payload shape changes;
    ``fingerprints`` fold in provenance (source tree, cost model) so a
    key can never answer from a different model of the system; ``body``
    is the normalized request itself.
    """
    payload: Dict[str, Any] = {"schema": schema}
    payload.update(sorted(fingerprints.items()))
    payload["request"] = canonical(body)
    return digest(payload)


def checked_fields(cls: type, data: Any, label: str) -> Dict[str, Any]:
    """A copy of ``data`` verified to hold only ``cls`` field names."""
    if not isinstance(data, dict):
        raise ValueError(f"{label} must be an object, got {data!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {label} fields: {sorted(unknown)}")
    return dict(data)


@dataclass(frozen=True)
class VersionedCodec:
    """Stamp/validate one wire schema's ``schema_version`` field.

    One instance per wire type (``RunRequest``, ``FleetRequest``,
    ``FleetResult``, ...): ``label`` names the type in error messages,
    ``version`` is the writer's current schema version.
    """

    label: str
    version: int

    def stamp(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """The versioned wire form: ``schema_version`` plus the body."""
        return {"schema_version": self.version, **body}

    def open(self, data: Any) -> Dict[str, Any]:
        """Validate and unwrap a wire payload; returns a mutable copy
        of the body with ``schema_version`` popped off.

        Tolerates version-0 payloads (no ``schema_version`` field — the
        body is identical); rejects payloads from a newer schema.
        """
        if not isinstance(data, dict):
            raise ValueError(f"{self.label} payload must be an object")
        body = dict(data)
        version = body.pop("schema_version", 0)
        if not isinstance(version, int) or version > self.version:
            raise ValueError(
                f"{self.label} schema_version {version!r} is newer than "
                f"this reader understands ({self.version})"
            )
        return body

    def open_into(self, cls: type, data: Any) -> Dict[str, Any]:
        """:meth:`open` plus strict unknown-field rejection for ``cls``."""
        body = self.open(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(body) - known
        if unknown:
            raise ValueError(
                f"unknown {self.label} fields: {sorted(unknown)}"
            )
        return body
