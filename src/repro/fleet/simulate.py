"""Fleet simulation: shard, fan out, replay the pool, reduce.

One fleet run decomposes into a *small* set of unique per-invocation
profiles — for each (workload, stack, warm/cold, profile-seed) tuple,
one deterministic ``RunRequest`` replayed once through the
``ExperimentEngine`` — and a *large* arrival stream replayed through the
instance pool using those profiled latencies and footprints. A million
invocations over 16 workloads, 2 stacks, and 2 profile seeds costs 128
engine runs (content-keyed, so a re-run answers from cache) plus a pure
event-processing pass.

Epoch sharding serves three roles: arrival generation is independently
seeded per epoch (deterministic and resumable), each epoch cycles to its
own profile-seed variant (trace diversity without per-invocation runs),
and the stranding timeline is bucketed on epoch boundaries.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.fleet import arrival
from repro.fleet.metrics import (
    FleetResult,
    StackMetrics,
    compare_stacks,
    percentile_summary,
)
from repro.fleet.pool import FleetPool
from repro.fleet.request import FleetRequest
from repro.fleet.telemetry import get_fleet_recorder
from repro.harness.engine import (
    ExperimentEngine,
    RunRequest,
    cost_model_fingerprint,
    source_fingerprint,
)
from repro.obs import ledger as obs_ledger
from repro.obs.events import get_ring
from repro.harness.system import RunResult
from repro.sim.params import PAGE_SIZE
from repro.workloads.registry import get_workload

#: key: (workload name, stack, cold?, profile-seed variant)
ProfileKey = Tuple[str, str, bool, int]


def fleet_run_requests(
    request: FleetRequest,
) -> Dict[ProfileKey, RunRequest]:
    """The unique engine shards behind one fleet request.

    Deterministic: the variant seed is ``spec.seed + 1000 * variant``,
    derived only from the registry spec and the fleet's profile-seed
    count, never from global state.
    """
    req = request.resolved()
    shards: Dict[ProfileKey, RunRequest] = {}
    for name in req.workloads:
        base = get_workload(name)
        for variant in range(req.profile_seeds):
            spec = dataclasses.replace(
                base,
                num_allocs=req.invocation_allocs,
                seed=base.seed + 1000 * variant,
            )
            for stack in req.stacks:
                for cold in (False, True):
                    shards[(name, stack, cold, variant)] = RunRequest(
                        spec=spec,
                        stack=stack,
                        config=req.config,
                        machine_params=req.machine_params,
                        cold_start=cold,
                        kernel=req.kernel,
                    )
    return shards


def simulate_fleet(
    request: FleetRequest,
    engine: Optional[ExperimentEngine] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FleetResult:
    """Run one fleet simulation end to end.

    The engine fan-out executes (or recalls) every profile shard; the
    pool pass then replays the arrival stream per stack. Everything
    downstream of the seed is deterministic, so the same request
    produces bit-identical metrics on every run.
    """
    req = request.resolved()
    engine = engine if engine is not None else ExperimentEngine()
    say = log if log is not None else (lambda message: None)
    # Telemetry hooks are captured once at entry (install-before-run,
    # mirroring the ring/profile/audit gating); None means disabled and
    # the pass below takes the exact same branches as ever.
    recorder = get_fleet_recorder()
    ring = get_ring()
    started = time.perf_counter()

    shards = fleet_run_requests(req)
    ordered = sorted(shards)  # stable engine-batch order
    say(
        f"fleet: {req.invocations:,} invocations / {req.epochs} epochs; "
        f"{len(ordered)} engine runs "
        f"({len(req.workloads)} workloads x {len(req.stacks)} stacks "
        f"x warm,cold x {req.profile_seeds} seeds)"
    )
    results = engine.run_many([shards[key] for key in ordered])
    profiles: Dict[ProfileKey, RunResult] = dict(zip(ordered, results))

    edges = arrival.epoch_edges(req.duration_s, req.epochs)
    weights = arrival.mix_weights(req.workloads, req.mix, req.seed)
    counts = arrival.epoch_counts(
        req.invocations, req.duration_s, req.epochs, req.pattern, req.seed
    )

    fleet = FleetResult(
        fleet_key=req.content_key(),
        seed=req.seed,
        invocations=req.invocations,
        duration_s=req.duration_s,
        epochs=req.epochs,
        epoch_edges=edges,
        engine_runs=len(ordered),
    )

    from repro import stacks as stack_registry

    for stack in req.stacks:
        # Idle-residency model: the stack decides how much of a warm
        # instance's footprint stays resident while it idles (baseline/
        # memento keep everything; snapshot spills to disk; reclaim
        # returns arena pages to the host pool) — the stranding metric
        # per stack.
        stack_entry = stack_registry.get_stack(stack)
        pool = FleetPool(
            keep_alive_s=req.keep_alive_s,
            policy=req.policy,
            max_warm=req.max_warm,
            epoch_edges=edges,
            recorder=recorder,
            stack=stack,
        )
        latencies_ms: List[float] = []
        cold_ms: List[float] = []
        dram_bytes = 0.0
        for epoch in range(req.epochs):
            before = (
                pool.stats.cold_starts,
                pool.stats.warm_starts,
                pool.stats.expirations,
                pool.stats.evictions,
            )
            times = arrival.epoch_arrivals(
                epoch,
                counts[epoch],
                edges[epoch],
                edges[epoch + 1],
                req.pattern,
                req.seed,
            )
            picks = arrival.assign_functions(
                epoch, counts[epoch], weights, req.seed
            )
            variant = epoch % req.profile_seeds
            for t, pick in zip(times, picks):
                name = req.workloads[pick]
                warm = profiles[(name, stack, False, variant)]
                cold_run = profiles[(name, stack, True, variant)]
                cold_extra = max(0.0, cold_run.seconds - warm.seconds)
                was_cold, latency = pool.invoke(
                    name,
                    t,
                    warm_s=warm.seconds,
                    cold_extra_s=cold_extra,
                    resident_bytes=stack_entry.resident_bytes(
                        warm.peak_pages * PAGE_SIZE
                    ),
                )
                latencies_ms.append(latency * 1e3)
                if was_cold:
                    cold_ms.append(latency * 1e3)
                    dram_bytes += cold_run.dram_bytes
                else:
                    dram_bytes += warm.dram_bytes
            if recorder is not None or ring is not None:
                deltas = {
                    "cold_starts": pool.stats.cold_starts - before[0],
                    "warm_starts": pool.stats.warm_starts - before[1],
                    "expirations": pool.stats.expirations - before[2],
                    "evictions": pool.stats.evictions - before[3],
                }
                if recorder is not None:
                    recorder.epoch(
                        stack,
                        epoch,
                        edges[epoch],
                        edges[epoch + 1],
                        invocations=counts[epoch],
                        pool_size=pool.idle_count,
                        **deltas,
                    )
                if ring is not None:
                    for counter, delta in deltas.items():
                        ring.record(f"fleet.{stack}.{counter}", delta)
        stats = pool.finish(req.duration_s)
        if recorder is not None:
            recorder.finish_stack(stack, stats.stranding_timeline)
        fleet.stacks[stack] = StackMetrics(
            stack=stack,
            invocations=stats.invocations,
            cold_starts=stats.cold_starts,
            warm_starts=stats.warm_starts,
            expirations=stats.expirations,
            evictions=stats.evictions,
            peak_warm=stats.peak_warm,
            cold_start_rate=(
                stats.cold_starts / stats.invocations
                if stats.invocations
                else 0.0
            ),
            latency_ms=percentile_summary(latencies_ms),
            cold_start_ms=percentile_summary(cold_ms),
            dram_bytes=dram_bytes,
            stranded_byte_seconds=stats.stranded_byte_seconds,
            stranding_timeline=list(stats.stranding_timeline),
        )
        say(
            f"fleet: {stack}: {stats.cold_starts:,} cold / "
            f"{stats.warm_starts:,} warm, peak {stats.peak_warm} "
            f"idle instances"
        )

    if "baseline" in fleet.stacks and "memento" in fleet.stacks:
        fleet.comparison = compare_stacks(
            fleet.stacks["baseline"], fleet.stacks["memento"]
        )

    if engine.ledger is not None:
        # Fleet determinism canary: the digest covers the full wire dict,
        # so two ledger lines for the same fleet key must agree bit for
        # bit. ``scenario`` digests only the declarative request (no
        # fingerprints), the stable grouping for trend gates.
        payload = fleet.to_dict()
        entry = obs_ledger.fleet_manifest(
            fleet_key=fleet.fleet_key,
            scenario=obs_ledger.payload_digest(req.to_dict()),
            seed=req.seed,
            invocations=req.invocations,
            duration_s=req.duration_s,
            elapsed_s=time.perf_counter() - started,
            stacks={
                name: {
                    # None (not 0.0) when the stack never went cold:
                    # percentile_summary returns the explicit empty
                    # marker and the trend gates skip non-numbers.
                    "cold_start_p95_ms": m.cold_start_ms.get("p95"),
                    "stranded_gb_s": m.stranded_byte_seconds / 1e9,
                    "cold_start_rate": m.cold_start_rate,
                    "evictions": m.evictions,
                }
                for name, m in fleet.stacks.items()
            },
            metrics_digest=obs_ledger.payload_digest(payload),
            fingerprints={
                "source": source_fingerprint(),
                "cost_model": cost_model_fingerprint(engine.cost_model),
            },
        )
        engine.ledger.append(entry)
    return fleet
