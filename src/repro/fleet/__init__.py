"""Fleet-scale serverless platform simulation (ROADMAP item 1).

Declarative entry point: build a :class:`~repro.fleet.request.FleetRequest`
and hand it to :func:`~repro.fleet.simulate.simulate_fleet`. The CLI
(``repro fleet run``), the Python facade (:mod:`repro.api`), and the
service (``POST /api/v1/fleets``) are all thin shells over the same two
symbols.
"""

from repro.fleet.arrival import MIXES, PATTERNS
from repro.fleet.metrics import (
    FLEET_RESULT_SCHEMA_VERSION,
    FleetResult,
    StackMetrics,
    render_fleet_report,
)
from repro.fleet.pool import POLICIES, FleetPool, PoolStats
from repro.fleet.request import (
    FLEET_SCHEMA_VERSION,
    STACKS,
    FleetRequest,
)
from repro.fleet.simulate import fleet_run_requests, simulate_fleet
from repro.fleet.telemetry import (
    FleetRecorder,
    get_fleet_recorder,
    install_fleet_recorder,
)

__all__ = [
    "FLEET_RESULT_SCHEMA_VERSION",
    "FLEET_SCHEMA_VERSION",
    "FleetPool",
    "FleetRecorder",
    "FleetRequest",
    "FleetResult",
    "MIXES",
    "PATTERNS",
    "POLICIES",
    "PoolStats",
    "STACKS",
    "StackMetrics",
    "fleet_run_requests",
    "get_fleet_recorder",
    "install_fleet_recorder",
    "render_fleet_report",
    "simulate_fleet",
]
