"""Platform metrics reduced from a fleet pass, and their wire form.

The reduction step turns per-arrival events (cold or warm, latency,
DRAM traffic) plus the pool's stranding accounting into the three
platform quantities the paper's argument rests on:

* cold-start latency distribution (p50/p95/p99 of cold invocations),
* memory stranding over time (byte-seconds of idle residency per epoch),
* fleet-wide DRAM traffic,

for each simulated stack, plus a baseline-vs-memento comparison.

``FleetResult`` is versioned the same way as every other wire type in
the repo (see :mod:`repro.codec`): stamped on write, version-0
tolerated, newer versions rejected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro import codec

FLEET_RESULT_SCHEMA_VERSION = 1

RESULT_CODEC = codec.VersionedCodec(
    "FleetResult", FLEET_RESULT_SCHEMA_VERSION
)

PERCENTILES = (50, 95, 99)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence.

    Raises on an empty sequence: a percentile of nothing is not 0.0,
    and silently reporting one turned "this stack never went cold"
    into "this stack has zero-latency cold starts" in the fleet
    report. Callers with possibly-empty data go through
    :func:`percentile_summary`, whose empty dict is the explicit
    no-samples marker.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < q <= 100:
        raise ValueError("percentile q must be in (0, 100]")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil division
    return float(sorted_values[int(rank) - 1])


def percentile_summary(values: List[float]) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of ``values`` (unsorted).

    An empty input returns ``{}`` — the explicit "no samples" marker.
    Consumers read percentiles with ``.get`` and render missing
    values as ``-`` rather than fabricating a 0.0.
    """
    if not values:
        return {}
    ordered = sorted(values)
    return {f"p{q}": percentile(ordered, q) for q in PERCENTILES}


@dataclass
class StackMetrics:
    """One stack's platform metrics from a fleet pass."""

    stack: str = "baseline"
    invocations: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    expirations: int = 0
    evictions: int = 0
    peak_warm: int = 0
    #: Cold-start fraction of all invocations.
    cold_start_rate: float = 0.0
    #: End-to-end latency percentiles (ms) over every invocation.
    latency_ms: Dict[str, float] = field(default_factory=dict)
    #: Cold-start latency percentiles (ms) over cold invocations only.
    cold_start_ms: Dict[str, float] = field(default_factory=dict)
    #: Fleet-wide DRAM traffic across all invocations (bytes).
    dram_bytes: float = 0.0
    #: Total idle residency (byte-seconds).
    stranded_byte_seconds: float = 0.0
    #: Idle residency per epoch (byte-seconds): the stranding timeline.
    stranding_timeline: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Any) -> "StackMetrics":
        return cls(**codec.checked_fields(cls, data, "StackMetrics"))


def compare_stacks(
    baseline: StackMetrics, memento: StackMetrics
) -> Dict[str, float]:
    """Memento-over-baseline ratios for the headline platform metrics."""

    def ratio(m: float, b: float) -> float:
        return m / b if b else 0.0

    return {
        "cold_start_p99_ratio": ratio(
            memento.cold_start_ms.get("p99", 0.0),
            baseline.cold_start_ms.get("p99", 0.0),
        ),
        "latency_p99_ratio": ratio(
            memento.latency_ms.get("p99", 0.0),
            baseline.latency_ms.get("p99", 0.0),
        ),
        "dram_ratio": ratio(memento.dram_bytes, baseline.dram_bytes),
        "stranding_ratio": ratio(
            memento.stranded_byte_seconds, baseline.stranded_byte_seconds
        ),
    }


@dataclass
class FleetResult:
    """Everything one fleet simulation produced, in wire form."""

    #: Content key of the FleetRequest that produced this.
    fleet_key: str = ""
    seed: int = 0
    invocations: int = 0
    duration_s: float = 0.0
    epochs: int = 0
    #: Epoch boundaries (len == epochs + 1), the timeline's x axis.
    epoch_edges: List[float] = field(default_factory=list)
    #: Unique engine runs behind this fleet (the fan-out size).
    engine_runs: int = 0
    #: stack name -> metrics.
    stacks: Dict[str, StackMetrics] = field(default_factory=dict)
    #: Memento-over-baseline ratios (empty unless both stacks ran).
    comparison: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        body = dataclasses.asdict(self)
        body["stacks"] = {
            name: metrics.to_dict() for name, metrics in self.stacks.items()
        }
        return RESULT_CODEC.stamp(body)

    @classmethod
    def from_dict(cls, data: Any) -> "FleetResult":
        body = RESULT_CODEC.open_into(cls, data)
        if "stacks" in body:
            body["stacks"] = {
                name: StackMetrics.from_dict(metrics)
                for name, metrics in body["stacks"].items()
            }
        return cls(**body)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:,.1f} {unit}"
        value /= 1024.0
    return f"{value:,.1f} TiB"


def _fmt_pct(summary: Dict[str, float], key: str) -> str:
    """Percentile cell, ``-`` when the summary has no samples."""
    value = summary.get(key)
    return f"{value:>7.2f}" if value is not None else f"{'-':>7}"


def _report_stacks(result: FleetResult) -> List[str]:
    """Stacks to report: registry order first, then unknown extras."""
    from repro import stacks as stack_registry

    known = [
        name
        for name in stack_registry.stack_names()
        if name in result.stacks
    ]
    extras = sorted(set(result.stacks) - set(known))
    return known + extras


def render_fleet_report(result: FleetResult) -> str:
    """Human-readable platform report for one fleet result."""
    lines: List[str] = []
    lines.append(
        f"Fleet: {result.invocations:,} invocations over "
        f"{result.duration_s:,.0f}s ({result.epochs} epochs, "
        f"seed {result.seed}, {result.engine_runs} engine runs)"
    )
    lines.append("")
    header = (
        f"{'stack':<10} {'cold%':>6} "
        f"{'cold p50/p95/p99 (ms)':>24} "
        f"{'lat p99 (ms)':>13} {'DRAM':>12} {'stranded':>16}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in _report_stacks(result):
        metrics = result.stacks[name]
        cold = metrics.cold_start_ms
        lat_p99 = metrics.latency_ms.get("p99")
        lines.append(
            f"{name:<10} {100.0 * metrics.cold_start_rate:>5.1f}% "
            f"{_fmt_pct(cold, 'p50')}/{_fmt_pct(cold, 'p95')}/"
            f"{_fmt_pct(cold, 'p99')} "
            + (
                f"{lat_p99:>13.2f} "
                if lat_p99 is not None
                else f"{'-':>13} "
            )
            + f"{_fmt_bytes(metrics.dram_bytes):>12} "
            f"{_fmt_bytes(metrics.stranded_byte_seconds):>12}·s"
        )
    if result.comparison:
        lines.append("")
        lines.append("memento / baseline:")
        for key in sorted(result.comparison):
            lines.append(f"  {key:<24} {result.comparison[key]:.3f}")
    baseline = result.stacks.get("baseline")
    if baseline and baseline.stranding_timeline:
        lines.append("")
        lines.append("stranding timeline (byte-seconds per epoch):")
        peak = max(
            max(m.stranding_timeline, default=0.0)
            for m in result.stacks.values()
        )
        for name in _report_stacks(result):
            metrics = result.stacks[name]
            for i, value in enumerate(metrics.stranding_timeline):
                width = int(40 * value / peak) if peak else 0
                edge = result.epoch_edges[i] if result.epoch_edges else i
                lines.append(
                    f"  {name:<10} t={edge:>9.0f}s "
                    f"{'#' * width:<40} {_fmt_bytes(value)}·s"
                )
    return "\n".join(lines)
