"""``FleetRequest``: the declarative description of one fleet run.

This is the second member of the request hierarchy (after
:class:`~repro.harness.engine.RunRequest`) and the reason the wire
machinery lives in :mod:`repro.codec`: both types stamp the same
``schema_version`` conventions, reject unknown fields the same way, and
derive content keys through the same
:func:`repro.codec.content_key` — so ``repro fleet run``, ``repro.api``,
and ``POST /api/v1/fleets`` all describe a fleet with the exact same
payload and agree on its identity.

A fleet request says *what platform to simulate* — invocation volume and
window, arrival pattern, workload mix, pool policy — plus the per-
invocation knobs forwarded into the underlying ``RunRequest`` shards
(Memento config, machine parameters, allocation count, replay kernel).
Everything is seeded; the same request is bit-identical on every run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import codec
from repro.core.config import MementoConfig
from repro.fleet.arrival import MIXES, PATTERNS
from repro.fleet.pool import POLICIES
from repro.harness.engine import (
    config_from_dict,
    cost_model_fingerprint,
    machine_params_from_dict,
    source_fingerprint,
)
from repro.harness import vector_kernel
from repro.sim.cycles import CostModel, DEFAULT_COSTS
from repro.sim.params import MachineParams
from repro.workloads.registry import FUNCTION_WORKLOADS, get_workload

#: Version stamped on every FleetRequest wire payload.
FLEET_SCHEMA_VERSION = 1

FLEET_CODEC = codec.VersionedCodec("FleetRequest", FLEET_SCHEMA_VERSION)

#: Default stack pair raced by a fleet request (the paper's two);
#: any registered stack (see :mod:`repro.stacks`) may be requested.
STACKS = ("baseline", "memento")

#: Cap on auto-derived epoch count (stranding-timeline resolution).
MAX_AUTO_EPOCHS = 48


@dataclass(frozen=True)
class FleetRequest:
    """Declarative description of one fleet simulation.

    Frozen and hashable like ``RunRequest``; the content key identifies
    the platform metrics this request reduces to.
    """

    #: Function names from the workload registry; empty means every
    #: function-category workload.
    workloads: Tuple[str, ...] = ()
    #: Invocation mix across those functions: ``azure`` (Zipf-like
    #: popularity skew) or ``uniform``.
    mix: str = "azure"
    #: Total invocations over the window.
    invocations: int = 10_000
    #: Simulated window length in seconds.
    duration_s: float = 3_600.0
    #: Arrival pattern: ``poisson`` or ``diurnal``.
    pattern: str = "poisson"
    #: Master seed; every arrival, assignment, and RunRequest shard
    #: derives from it.
    seed: int = 42
    #: Epoch shards (0 = derive from the invocation count).
    epochs: int = 0
    #: Idle keep-alive before an instance is reclaimed (0 = always cold).
    keep_alive_s: float = 600.0
    #: Pool policy: ``keepalive`` (TTL only) or ``lru`` (TTL + cap).
    policy: str = "keepalive"
    #: Fleet-wide cap on idle instances under ``lru`` (0 = unlimited).
    max_warm: int = 0
    #: Distinct per-function trace seeds cycled across epochs; more
    #: seeds = more trace diversity at more engine runs.
    profile_seeds: int = 2
    #: Allocation count per invocation trace (smaller than the paper
    #: harness default: a fleet samples many short invocations).
    invocation_allocs: int = 2_000
    #: Stacks to simulate; both by default so the report can compare.
    stacks: Tuple[str, ...] = STACKS
    config: MementoConfig = field(default_factory=MementoConfig)
    machine_params: MachineParams = field(default_factory=MachineParams)
    #: Replay kernel; excluded from the content key like RunRequest's.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.invocations < 1:
            raise ValueError("invocations must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; choose from {PATTERNS}"
            )
        if self.mix not in MIXES:
            raise ValueError(
                f"unknown mix {self.mix!r}; choose from {MIXES}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {POLICIES}"
            )
        if self.keep_alive_s < 0:
            raise ValueError("keep_alive_s must be >= 0")
        if self.max_warm < 0:
            raise ValueError("max_warm must be >= 0 (0 = unlimited)")
        if self.epochs < 0:
            raise ValueError("epochs must be >= 0 (0 = auto)")
        if self.profile_seeds < 1:
            raise ValueError("profile_seeds must be >= 1")
        if self.invocation_allocs < 1:
            raise ValueError("invocation_allocs must be >= 1")
        if not self.stacks:
            raise ValueError("stacks must name at least one stack")
        from repro import stacks as stack_registry

        for stack in self.stacks:
            if stack not in stack_registry.stack_names():
                raise ValueError(
                    f"unknown stack {stack!r}; choose from "
                    f"{stack_registry.stack_names()}"
                )
        for name in self.workloads:
            try:
                get_workload(name)
            except KeyError:
                raise ValueError(f"unknown workload {name!r}") from None
        if self.kernel is not None:
            vector_kernel.resolve_choice(self.kernel)
        # Tolerate list inputs (wire payloads) for the tuple fields.
        if not isinstance(self.workloads, tuple):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not isinstance(self.stacks, tuple):
            object.__setattr__(self, "stacks", tuple(self.stacks))

    def resolved(self) -> "FleetRequest":
        """Fill derived defaults: the full function-workload list when
        ``workloads`` is empty, and an epoch count scaled to the
        invocation volume when ``epochs`` is 0."""
        updates: Dict[str, Any] = {}
        if not self.workloads:
            updates["workloads"] = tuple(
                spec.name for spec in FUNCTION_WORKLOADS
            )
        if self.epochs == 0:
            updates["epochs"] = max(
                4, min(MAX_AUTO_EPOCHS, self.invocations // 25_000 or 4)
            )
        return dataclasses.replace(self, **updates) if updates else self

    def content_key(self, cost_model: CostModel = DEFAULT_COSTS) -> str:
        """Stable content hash identifying this fleet's metrics.

        Shares the :func:`repro.codec.content_key` derivation (and the
        source/cost-model fingerprints) with ``RunRequest``: a request
        before and after :meth:`resolved` hashes identically, and the
        kernel choice is an execution detail excluded from the key.
        """
        normalized = dataclasses.replace(self.resolved(), kernel=None)
        return codec.content_key(
            normalized,
            schema=FLEET_SCHEMA_VERSION,
            fingerprints={
                "source": source_fingerprint(),
                "cost_model": cost_model_fingerprint(cost_model),
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        """Versioned wire form (the CLI/HTTP/api payload)."""
        return FLEET_CODEC.stamp(
            {
                "workloads": list(self.workloads),
                "mix": self.mix,
                "invocations": self.invocations,
                "duration_s": self.duration_s,
                "pattern": self.pattern,
                "seed": self.seed,
                "epochs": self.epochs,
                "keep_alive_s": self.keep_alive_s,
                "policy": self.policy,
                "max_warm": self.max_warm,
                "profile_seeds": self.profile_seeds,
                "invocation_allocs": self.invocation_allocs,
                "stacks": list(self.stacks),
                "config": dataclasses.asdict(self.config),
                "machine_params": dataclasses.asdict(self.machine_params),
                "kernel": self.kernel,
            }
        )

    @classmethod
    def from_dict(cls, data: Any) -> "FleetRequest":
        """Parse a wire payload (tolerant version-0 reader, unknown
        fields and newer schema versions rejected)."""
        body = FLEET_CODEC.open_into(cls, data)
        if "workloads" in body:
            body["workloads"] = tuple(body["workloads"])
        if "stacks" in body:
            body["stacks"] = tuple(body["stacks"])
        if "config" in body:
            body["config"] = config_from_dict(body["config"])
        if "machine_params" in body:
            body["machine_params"] = machine_params_from_dict(
                body["machine_params"]
            )
        return cls(**body)
