"""Deterministic fleet arrival processes.

A fleet run replays ``invocations`` function invocations over a
``duration_s`` window. Arrivals are generated epoch by epoch so the
whole process is deterministic *and* shardable: every epoch derives its
own child seed from ``(seed, epoch)``, so epoch 7 of a million-invocation
fleet produces the same arrival times and function assignments whether
the fleet is simulated in one pass or resumed mid-way.

Two arrival patterns:

* ``poisson`` — a homogeneous Poisson process. Conditioned on the number
  of events in a window, Poisson arrival times are distributed as the
  order statistics of uniforms, so each epoch draws ``count`` uniforms
  and sorts them — exact, not an approximation.
* ``diurnal`` — an inhomogeneous process with a sinusoidal day/night
  intensity plus short deterministic bursts (the Azure Functions traces
  show both a diurnal envelope and bursty spikes). Per-epoch counts
  follow the integrated intensity (largest-remainder rounding keeps the
  total exact); within an epoch, arrival times are drawn by rejection
  sampling against the local intensity.

The invocation mix over the workload registry is either ``uniform`` or
``azure`` — a Zipf-like popularity skew (the Azure study's headline
observation: a small fraction of functions receives the vast majority
of invocations), with the popularity ranking itself a deterministic
function of the fleet seed.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Sequence, Tuple

PATTERNS = ("poisson", "diurnal")
MIXES = ("azure", "uniform")

#: Period of the diurnal intensity envelope, in seconds. Fleets shorter
#: than a day sweep a proportional slice of the cycle.
DAY_S = 86_400.0

#: Diurnal envelope: intensity swings between (1 - DEPTH) and (1 + DEPTH)
#: around the mean rate.
DIURNAL_DEPTH = 0.6

#: Bursts: each burst window multiplies intensity by BURST_GAIN for
#: BURST_FRACTION of the day, at deterministic seed-derived offsets.
BURST_COUNT = 4
BURST_GAIN = 3.0
BURST_FRACTION = 0.02


def epoch_seed(seed: int, epoch: int, salt: str = "arrivals") -> int:
    """Child seed for one epoch, independent of every other epoch."""
    blob = f"{salt}/{seed}/{epoch}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def mix_weights(names: Sequence[str], mix: str, seed: int) -> List[float]:
    """Per-function invocation probabilities, summing to 1.

    ``uniform`` spreads invocations evenly; ``azure`` applies a
    Zipf-like skew (weight ∝ 1/rank) over a seed-derived popularity
    ranking, mimicking the heavy-tailed Azure Functions mix.
    """
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; choose from {MIXES}")
    n = len(names)
    if n == 0:
        raise ValueError("mix_weights needs at least one function")
    if mix == "uniform":
        return [1.0 / n] * n
    ranks = list(range(1, n + 1))
    random.Random(epoch_seed(seed, 0, salt="mix")).shuffle(ranks)
    raw = [1.0 / rank for rank in ranks]
    total = sum(raw)
    return [w / total for w in raw]


def _burst_windows(seed: int) -> List[Tuple[float, float]]:
    """Deterministic burst windows (start, end) within one day-cycle."""
    rng = random.Random(epoch_seed(seed, 0, salt="bursts"))
    width = BURST_FRACTION * DAY_S
    return sorted(
        (start := rng.uniform(0.0, DAY_S - width), start + width)
        for _ in range(BURST_COUNT)
    )


def intensity(t: float, pattern: str, seed: int) -> float:
    """Relative arrival intensity at time ``t`` (mean ≈ 1 over a day)."""
    if pattern == "poisson":
        return 1.0
    base = 1.0 + DIURNAL_DEPTH * math.sin(2.0 * math.pi * t / DAY_S)
    phase = t % DAY_S
    for start, end in _burst_windows(seed):
        if start <= phase < end:
            return base * BURST_GAIN
    return base


def _intensity_mass(
    start: float, end: float, pattern: str, seed: int, steps: int = 32
) -> float:
    """Integrated intensity over ``[start, end)`` (midpoint rule)."""
    if pattern == "poisson":
        return end - start
    width = (end - start) / steps
    return width * sum(
        intensity(start + (i + 0.5) * width, pattern, seed)
        for i in range(steps)
    )


def epoch_edges(duration_s: float, epochs: int) -> List[float]:
    """The ``epochs + 1`` time boundaries of an epoch-sharded window."""
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    return [duration_s * i / epochs for i in range(epochs + 1)]


def epoch_counts(
    invocations: int,
    duration_s: float,
    epochs: int,
    pattern: str,
    seed: int,
) -> List[int]:
    """How many of ``invocations`` land in each epoch.

    Counts follow each epoch's share of the integrated intensity;
    largest-remainder rounding keeps ``sum(counts) == invocations``
    exactly, so sharding never drops or invents an arrival.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; choose from {PATTERNS}")
    edges = epoch_edges(duration_s, epochs)
    masses = [
        _intensity_mass(edges[i], edges[i + 1], pattern, seed)
        for i in range(epochs)
    ]
    total_mass = sum(masses)
    shares = [invocations * m / total_mass for m in masses]
    counts = [int(s) for s in shares]
    remainders = sorted(
        range(epochs), key=lambda i: (shares[i] - counts[i], -i), reverse=True
    )
    for i in remainders[: invocations - sum(counts)]:
        counts[i] += 1
    return counts


def epoch_arrivals(
    epoch: int,
    count: int,
    start: float,
    end: float,
    pattern: str,
    seed: int,
) -> List[float]:
    """Sorted arrival times for one epoch, derived only from
    ``(seed, epoch, count)`` — every epoch is independently replayable."""
    rng = random.Random(epoch_seed(seed, epoch))
    if pattern == "poisson":
        return sorted(rng.uniform(start, end) for _ in range(count))
    peak = (1.0 + DIURNAL_DEPTH) * BURST_GAIN
    times: List[float] = []
    while len(times) < count:
        t = rng.uniform(start, end)
        if rng.uniform(0.0, peak) <= intensity(t, pattern, seed):
            times.append(t)
    times.sort()
    return times


def assign_functions(
    epoch: int,
    count: int,
    weights: Sequence[float],
    seed: int,
) -> List[int]:
    """Function index per arrival in one epoch (weighted by the mix)."""
    rng = random.Random(epoch_seed(seed, epoch, salt="mix-draws"))
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    picks: List[int] = []
    for _ in range(count):
        u = rng.uniform(0.0, acc)
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if u <= cumulative[mid]:
                hi = mid
            else:
                lo = mid + 1
        picks.append(lo)
    return picks
