"""Fleet telemetry: per-epoch platform records and instance lifetimes.

The fleet simulator is telemetry-blind by default — a million-invocation
run reduces to one :class:`FleetResult` and leaves nothing else behind.
Installing a :class:`FleetRecorder` (mirroring the ring/profile/audit
gating: install *before* the run, uninstall after, disabled path
untouched) makes the same pass emit two JSONL record families:

* ``kind: "fleet.epoch"`` — one record per (stack, epoch) with the
  platform counters Memento's argument tracks over time: cold starts,
  warm starts, expirations, evictions, stranded byte-seconds, and the
  idle-pool size at the epoch boundary.
* ``kind: "fleet.instance"`` — warm/busy/idle lifetime spans for pool
  instances (bounded; see ``capacity``), each busy span tagged cold or
  warm and each idle span tagged with how it ended (``reused``,
  ``expired``, ``evicted``, or ``horizon``). ``repro obs timeline``
  renders these as one Perfetto track per instance with eviction
  markers.

The recorder only observes — it never perturbs pool decisions — so a
run with it installed produces a bit-identical :class:`FleetResult`
(pinned by the rebinding test in ``tests/fleet``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class FleetRecorder:
    """Bounded collector for one fleet pass's platform telemetry.

    ``capacity`` bounds the instance-lifetime records (epoch records are
    naturally small: stacks × epochs). Past the cap, spans are counted
    in ``dropped`` instead of stored, so memory stays constant no matter
    how many instances a fleet churns through.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.epochs: List[Dict[str, Any]] = []
        self.instances: List[Dict[str, Any]] = []
        self.dropped = 0

    # -- emit sites (called by FleetPool / simulate_fleet) ---------------

    def epoch(
        self,
        stack: str,
        index: int,
        start_s: float,
        end_s: float,
        **counters: Any,
    ) -> None:
        """One per-epoch platform record for ``stack``."""
        record: Dict[str, Any] = {
            "kind": "fleet.epoch",
            "stack": stack,
            "epoch": index,
            "start_s": start_s,
            "end_s": end_s,
        }
        record.update(counters)
        self.epochs.append(record)

    def instance_span(
        self,
        stack: str,
        function: str,
        uid: int,
        state: str,
        start_s: float,
        end_s: float,
        outcome: Optional[str] = None,
        cold: Optional[bool] = None,
    ) -> None:
        """One busy or idle lifetime span for a pool instance."""
        if len(self.instances) >= self.capacity:
            self.dropped += 1
            return
        record: Dict[str, Any] = {
            "kind": "fleet.instance",
            "stack": stack,
            "function": function,
            "uid": uid,
            "state": state,
            "start_s": start_s,
            "end_s": end_s,
        }
        if outcome is not None:
            record["outcome"] = outcome
        if cold is not None:
            record["cold"] = cold
        self.instances.append(record)

    def finish_stack(self, stack: str, stranding_timeline: List[float]) -> None:
        """Backfill per-epoch stranded byte-seconds once the pool pass
        finished (stranding is credited lazily on idle-span close, so
        the timeline is only final at the end of the run)."""
        for record in self.epochs:
            if record["stack"] != stack:
                continue
            index = record["epoch"]
            if 0 <= index < len(stranding_timeline):
                record["stranded_byte_s"] = stranding_timeline[index]

    # -- export ----------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every collected record, epoch records first, JSONL-ready."""
        return list(self.epochs) + list(self.instances)

    def clear(self) -> None:
        self.epochs = []
        self.instances = []
        self.dropped = 0


#: The installed recorder, or None (the default: fleet telemetry off).
RECORDER: Optional[FleetRecorder] = None


def get_fleet_recorder() -> Optional[FleetRecorder]:
    """The installed fleet recorder, or None when telemetry is off."""
    return RECORDER


def install_fleet_recorder(
    recorder: Optional[FleetRecorder],
) -> Optional[FleetRecorder]:
    """Install (or, with None, remove) the process-wide fleet recorder.

    Returns the previously installed recorder. ``simulate_fleet`` reads
    the recorder at entry, so install it before the run whose telemetry
    you want.
    """
    global RECORDER
    previous = RECORDER
    RECORDER = recorder
    return previous
