"""Warm/cold function-instance pool with keep-alive and eviction.

The pool is the platform half of the fleet model: every arrival either
reuses a warm instance of its function (paying only the invocation's
warm latency) or cold-starts a new one (paying the container-setup
penalty on top). Between invocations a warm instance sits idle with its
heap resident — that idle residency is *memory stranding*, the quantity
Memento's platform argument turns on, and the pool accounts for it
byte-second by byte-second, bucketed per epoch so a fleet run yields a
stranding timeline rather than one opaque total.

Policies:

* ``keepalive`` — fixed-TTL: an idle instance survives ``keep_alive_s``
  seconds after its last invocation, then is reclaimed (the
  OpenWhisk/Azure default model). ``keep_alive_s == 0`` degenerates to
  every invocation cold with zero stranding.
* ``lru`` — keep-alive TTL plus a fleet-wide cap of ``max_warm`` idle
  instances; exceeding the cap evicts the least-recently-used idle
  instance immediately.

Mechanics: arrivals are processed in time order. Expiry is a lazy-deleted
min-heap — each idle period pushes ``(deadline, instance)`` and stale
entries (the instance was reused first) are skipped on pop. Warm reuse
is LIFO (most-recently-idled first), which both matches real platforms
and maximizes the chance the reused heap is cache/TLB-warm.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

POLICIES = ("keepalive", "lru")


@dataclass
class _Instance:
    """One warm container: its function, heap size, and idle state."""

    function: str
    resident_bytes: float
    idle_since: float = 0.0
    #: Monotonic generation stamp; an expiry-heap entry is stale unless
    #: its recorded generation matches (the instance was reused since).
    generation: int = 0
    alive: bool = True
    #: Pool-assigned id, stable across the instance's whole lifetime —
    #: the telemetry track key for its busy/idle span sequence.
    uid: int = 0


@dataclass
class PoolStats:
    """Everything one pool pass produced."""

    invocations: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    expirations: int = 0
    evictions: int = 0
    peak_warm: int = 0
    #: Total idle residency in byte-seconds.
    stranded_byte_seconds: float = 0.0
    #: Idle residency per epoch (byte-seconds), the stranding timeline.
    stranding_timeline: List[float] = field(default_factory=list)


class FleetPool:
    """Simulate instance reuse for one stack's arrival stream."""

    def __init__(
        self,
        keep_alive_s: float,
        policy: str = "keepalive",
        max_warm: int = 0,
        epoch_edges: Optional[Sequence[float]] = None,
        recorder: Optional[Any] = None,
        stack: str = "",
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        if keep_alive_s < 0:
            raise ValueError("keep_alive_s must be >= 0")
        if max_warm < 0:
            raise ValueError("max_warm must be >= 0 (0 = unlimited)")
        self.keep_alive_s = float(keep_alive_s)
        self.policy = policy
        self.max_warm = max_warm
        self._edges = list(epoch_edges) if epoch_edges else []
        self.stats = PoolStats(
            stranding_timeline=[0.0] * max(0, len(self._edges) - 1)
        )
        #: function -> LIFO stack of idle instances.
        self._idle: Dict[str, List[_Instance]] = {}
        #: lazy-deleted expiry heap: (deadline, tiebreak, generation, inst).
        self._expiry: List[Tuple[float, int, int, _Instance]] = []
        #: LRU order over idle instances: (idle_since, tiebreak, gen, inst).
        self._lru: List[Tuple[float, int, int, _Instance]] = []
        self._idle_count = 0
        self._tiebreak = 0
        #: Optional FleetRecorder (duck-typed): observes instance
        #: lifetimes; never consulted for pool decisions, so results are
        #: bit-identical with or without it.
        self._recorder = recorder
        self._stack = stack
        self._next_uid = 0

    @property
    def idle_count(self) -> int:
        """Idle (warm, resident) instances right now."""
        return self._idle_count

    def _record_idle_end(
        self, inst: _Instance, end: float, outcome: str
    ) -> None:
        """Telemetry: one idle span, from park to ``end``."""
        if self._recorder is not None and end > inst.idle_since:
            self._recorder.instance_span(
                self._stack,
                inst.function,
                inst.uid,
                "idle",
                inst.idle_since,
                end,
                outcome=outcome,
            )

    # -- stranding accounting -------------------------------------------

    def _credit_stranding(self, inst: _Instance, until: float) -> None:
        """Account ``inst``'s idle residency from ``idle_since`` to
        ``until``, split across epoch buckets."""
        start, end = inst.idle_since, until
        if end <= start:
            return
        self.stats.stranded_byte_seconds += inst.resident_bytes * (
            end - start
        )
        if not self._edges:
            return
        timeline = self.stats.stranding_timeline
        lo = max(0, bisect_right(self._edges, start) - 1)
        for i in range(lo, len(timeline)):
            seg_start = max(start, self._edges[i])
            seg_end = min(end, self._edges[i + 1])
            if seg_end <= seg_start:
                if self._edges[i] >= end:
                    break
                continue
            timeline[i] += inst.resident_bytes * (seg_end - seg_start)

    # -- instance bookkeeping -------------------------------------------

    def _park(self, inst: _Instance, now: float) -> None:
        """Mark ``inst`` idle (warm, resident) starting at ``now``."""
        inst.idle_since = now
        inst.generation += 1
        self._tiebreak += 1
        self._idle.setdefault(inst.function, []).append(inst)
        self._idle_count += 1
        self.stats.peak_warm = max(self.stats.peak_warm, self._idle_count)
        if self.keep_alive_s > 0:
            heapq.heappush(
                self._expiry,
                (
                    now + self.keep_alive_s,
                    self._tiebreak,
                    inst.generation,
                    inst,
                ),
            )
        if self.policy == "lru":
            heapq.heappush(
                self._lru, (now, self._tiebreak, inst.generation, inst)
            )
            self._enforce_cap()

    def _remove_idle(self, inst: _Instance) -> None:
        stack = self._idle.get(inst.function, [])
        stack.remove(inst)
        if not stack:
            self._idle.pop(inst.function, None)
        self._idle_count -= 1

    def _reap(self, now: float) -> None:
        """Retire every idle instance whose keep-alive lapsed by ``now``."""
        while self._expiry and self._expiry[0][0] <= now:
            deadline, _, generation, inst = heapq.heappop(self._expiry)
            if not inst.alive or inst.generation != generation:
                continue  # stale: reused (or evicted) since this push
            self._credit_stranding(inst, deadline)
            self._record_idle_end(inst, deadline, "expired")
            inst.alive = False
            self._remove_idle(inst)
            self.stats.expirations += 1

    def _enforce_cap(self) -> None:
        """LRU policy: evict oldest-idle instances beyond ``max_warm``."""
        if self.max_warm <= 0:
            return
        while self._idle_count > self.max_warm and self._lru:
            idle_since, _, generation, inst = heapq.heappop(self._lru)
            if not inst.alive or inst.generation != generation:
                continue
            # Evicted "now" == the moment the cap was exceeded, which is
            # the new instance's park time; its idle span ends here.
            self._credit_stranding(inst, self._last_now)
            self._record_idle_end(inst, self._last_now, "evicted")
            inst.alive = False
            self._remove_idle(inst)
            self.stats.evictions += 1

    # -- the public step --------------------------------------------------

    _last_now = 0.0

    def invoke(
        self,
        function: str,
        now: float,
        warm_s: float,
        cold_extra_s: float,
        resident_bytes: float,
    ) -> Tuple[bool, float]:
        """Process one arrival; returns ``(cold, latency_s)``.

        A warm hit pops the most-recently-idled instance of ``function``
        (crediting its idle span as stranding); a miss cold-starts. In
        both cases the instance parks idle again when the invocation
        finishes. ``keep_alive_s == 0`` never parks, so every arrival is
        cold and nothing strands.
        """
        self._last_now = now
        self._reap(now)
        self.stats.invocations += 1
        stack = self._idle.get(function)
        # LIFO reuse, skipping instances still busy at ``now`` (an
        # instance parks when its invocation *finishes*, which may be
        # after the next arrival).
        inst = None
        if stack:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i].idle_since <= now:
                    inst = stack.pop(i)
                    break
        if inst is not None:
            if not stack:
                self._idle.pop(function, None)
            self._idle_count -= 1
            self._credit_stranding(inst, now)
            self._record_idle_end(inst, now, "reused")
            inst.generation += 1  # invalidate queued expiry/LRU entries
            inst.resident_bytes = resident_bytes
            self.stats.warm_starts += 1
            cold, latency = False, warm_s
        else:
            inst = _Instance(function=function, resident_bytes=resident_bytes)
            inst.uid = self._next_uid
            self._next_uid += 1
            self.stats.cold_starts += 1
            cold, latency = True, warm_s + cold_extra_s
        if self._recorder is not None:
            self._recorder.instance_span(
                self._stack,
                function,
                inst.uid,
                "busy",
                now,
                now + latency,
                cold=cold,
            )
        if self.keep_alive_s > 0:
            self._park(inst, now + latency)
        else:
            inst.alive = False
        return cold, latency

    def finish(self, horizon: float) -> PoolStats:
        """End the run: reap, then credit still-idle spans up to the
        earlier of each instance's deadline and ``horizon``."""
        self._reap(horizon)
        for stack in self._idle.values():
            for inst in stack:
                until = min(horizon, inst.idle_since + self.keep_alive_s)
                self._credit_stranding(inst, max(until, inst.idle_since))
                self._record_idle_end(
                    inst, max(until, inst.idle_since), "horizon"
                )
                inst.alive = False
        self._idle.clear()
        self._idle_count = 0
        return self.stats
