"""Trace event model.

A workload is a deterministic sequence of four event kinds:

* :class:`Alloc` — an allocation request (``obj`` is a trace-local id).
* :class:`Free` — the object dies. For GC'd runtimes this marks the point
  of unreachability; the allocator decides when reclamation happens.
* :class:`Touch` — the application accesses ``lines`` cache lines of the
  object starting at ``line_offset`` (drives faults, caches, and bypass).
* :class:`Compute` — application work between memory-management activity:
  cycles plus statistically-modeled DRAM traffic.

Traces are replayed against a baseline or Memento system by the harness;
they are also analyzed directly for the characterization figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Union


@dataclass(frozen=True)
class Alloc:
    obj: int
    size: int


@dataclass(frozen=True)
class Free:
    obj: int


@dataclass(frozen=True)
class Touch:
    obj: int
    lines: int = 1
    line_offset: int = 0
    write: bool = True


@dataclass(frozen=True)
class Compute:
    cycles: int
    dram_bytes: int = 0


Event = Union[Alloc, Free, Touch, Compute]


@dataclass
class Trace:
    """A named, replayable event sequence with summary metadata."""

    name: str
    language: str
    category: str  # "function" | "dataproc" | "platform"
    events: List[Event] = field(default_factory=list)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def alloc_count(self) -> int:
        return sum(1 for e in self.events if isinstance(e, Alloc))

    @property
    def free_count(self) -> int:
        return sum(1 for e in self.events if isinstance(e, Free))

    @property
    def total_alloc_bytes(self) -> int:
        return sum(e.size for e in self.events if isinstance(e, Alloc))

    def allocs(self) -> Iterator[Alloc]:
        return (e for e in self.events if isinstance(e, Alloc))

    def validate(self) -> None:
        """Structural sanity: frees reference live objects exactly once,
        touches reference live objects, sizes are positive."""
        live = set()
        for event in self.events:
            if isinstance(event, Alloc):
                if event.size <= 0:
                    raise ValueError(f"non-positive size in {event}")
                if event.obj in live:
                    raise ValueError(f"duplicate allocation id {event.obj}")
                live.add(event.obj)
            elif isinstance(event, Free):
                if event.obj not in live:
                    raise ValueError(f"free of dead/unknown id {event.obj}")
                live.discard(event.obj)
            elif isinstance(event, Touch):
                if event.obj not in live:
                    raise ValueError(f"touch of dead/unknown id {event.obj}")
