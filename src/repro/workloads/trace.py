"""Trace event model.

A workload is a deterministic sequence of four event kinds:

* :class:`Alloc` — an allocation request (``obj`` is a trace-local id).
* :class:`Free` — the object dies. For GC'd runtimes this marks the point
  of unreachability; the allocator decides when reclamation happens.
* :class:`Touch` — the application accesses ``lines`` cache lines of the
  object starting at ``line_offset`` (drives faults, caches, and bypass).
* :class:`Compute` — application work between memory-management activity:
  cycles plus statistically-modeled DRAM traffic.

Traces are replayed against a baseline or Memento system by the harness;
they are also analyzed directly for the characterization figures.

For replay, :meth:`Trace.columnar` packs the event list into
:class:`ColumnarTrace` — five parallel ``array`` columns (a kind tag plus
four integer operand slots) — so the harness's hot loop iterates machine
integers instead of chasing per-event objects and ``isinstance`` chains.

On top of the packed form, :meth:`ColumnarTrace.segments` builds a
:class:`SegmentIndex`: maximal runs of same-kind events (single-line
touches split from multi-line ones) with the per-run operand rows
pre-resolved and every compute run pre-reduced to its exact cycle/byte
sums. The batch replay kernel (``repro.harness.vector_kernel``) iterates
runs instead of events, so kind dispatch happens once per run and the
numpy-accelerated precomputation here is amortized across replays of the
same trace (the index is memoized alongside the columnar form).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.obs.tracing import get_tracer


@dataclass(frozen=True, slots=True)
class Alloc:
    obj: int
    size: int


@dataclass(frozen=True, slots=True)
class Free:
    obj: int


@dataclass(frozen=True, slots=True)
class Touch:
    obj: int
    lines: int = 1
    line_offset: int = 0
    write: bool = True


@dataclass(frozen=True, slots=True)
class Compute:
    cycles: int
    dram_bytes: int = 0


Event = Union[Alloc, Free, Touch, Compute]

#: Columnar kind tags (stable — BENCH trajectories and any persisted
#: packed traces rely on them).
KIND_ALLOC = 0
KIND_FREE = 1
KIND_TOUCH = 2
KIND_COMPUTE = 3

#: Segment-run opcodes (:class:`SegmentIndex`). The first four alias the
#: kind tags; single-line touches get their own opcode so the replay
#: kernel's hottest case needs no per-event ``lines == 1`` test.
OP_ALLOC = KIND_ALLOC
OP_FREE = KIND_FREE
OP_TOUCH_MULTI = KIND_TOUCH
OP_COMPUTE = KIND_COMPUTE
OP_TOUCH_SINGLE = 4


class SegmentIndex:
    """Run-segmented view of a :class:`ColumnarTrace`.

    Two transformations, both exact refactorings of the per-event replay:

    * **Compute extraction.** Compute events' only effects are additions
      into interned counters (``cycles.app``, DRAM byte/line totals) that
      nothing reads mid-replay, and the sums commute exactly: cycle/byte
      totals are integers, and the derived line count ``bytes / 64`` is a
      dyadic rational far below 2**53, so every partial sum is exactly
      representable and any accumulation order produces the same float.
      All compute events are therefore pre-reduced here into
      ``compute_cycles``/``compute_bytes`` and leave the dispatch stream
      entirely — which also merges the alloc/touch runs they used to
      interrupt.

    * **Operand pre-decode.** The surviving stream is stored as flat,
      fully decoded operand columns the kernel zips over directly:
      single-line touches are split into their own opcode at pack time
      (``OP_TOUCH_SINGLE``) so the hot path needs no per-event
      ``lines == 1`` test, their byte offsets are premultiplied, and
      touch write flags are rebooled (the packed column is int64; cache
      dirty bits must stay booleans — audit rule cache-writeback-ledger).

      ==============  ====================================================
      column          meaning per opcode
      ==============  ====================================================
      ``ops``         OP_* opcode (computes already stripped)
      ``f0``          object id (alloc/free/touch)
      ``f1``          alloc size; touch line count; unused for frees
      ``f2``          OP_TOUCH_SINGLE: byte offset (premultiplied);
                      OP_TOUCH_MULTI: line offset; otherwise unused
      ``writes``      touch write flag as ``bool``
      ==============  ====================================================

    ``runs()`` derives the maximal same-opcode run view ``[(op, length),
    ...]`` for diagnostics and bench telemetry; measured run lengths on
    the generated workloads average ~1.2 events (the generator interleaves
    alloc/touch/free tightly), which is why the kernel executes the flat
    stream per event rather than dispatching per run — see DESIGN.md §15
    for the arithmetic.

    Built with numpy when it is installed (vectorized opcode/change-point
    math and bulk column conversion over zero-copy views of the packed
    columns) and with plain loops otherwise; both constructions produce
    identical indexes (tested).
    """

    __slots__ = (
        "ops",
        "f0",
        "f1",
        "f2",
        "writes",
        "compute_cycles",
        "compute_bytes",
        "events",
    )

    def __init__(
        self,
        ops: List[int],
        f0: List[int],
        f1: List[int],
        f2: List[int],
        writes: List[bool],
        compute_cycles: int,
        compute_bytes: int,
        events: int,
    ) -> None:
        self.ops = ops
        self.f0 = f0
        self.f1 = f1
        self.f2 = f2
        self.writes = writes
        self.compute_cycles = compute_cycles
        self.compute_bytes = compute_bytes
        self.events = events

    @classmethod
    def build(cls, columnar: "ColumnarTrace") -> "SegmentIndex":
        total = len(columnar.kinds)
        if total == 0:
            return cls([], [], [], [], [], 0, 0, 0)
        if _np is not None:
            return cls(*_segment_numpy(columnar), total)
        return cls(*_segment_python(columnar), total)

    def runs(self) -> List[Tuple[int, int]]:
        """Maximal same-opcode runs as ``(op, length)``, in order."""
        out: List[Tuple[int, int]] = []
        for op in self.ops:
            if out and out[-1][0] == op:
                out[-1] = (op, out[-1][1] + 1)
            else:
                out.append((op, 1))
        return out

    def __len__(self) -> int:
        return len(self.ops)


try:  # Optional extra (`pip install -e .[fast]`); see vector_kernel.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None


def _segment_numpy(columnar: "ColumnarTrace"):
    """Vectorized build: compute reduction, opcode classification, and
    bulk operand decode in numpy over zero-copy views of the packed
    columns; returns the :class:`SegmentIndex` constructor columns."""
    kinds = _np.frombuffer(columnar.kinds, dtype=_np.uint8)
    f0 = _np.frombuffer(columnar.f0, dtype=_np.int64)
    f1 = _np.frombuffer(columnar.f1, dtype=_np.int64)
    f2 = _np.frombuffer(columnar.f2, dtype=_np.int64)
    f3 = _np.frombuffer(columnar.f3, dtype=_np.int64)
    compute = kinds == KIND_COMPUTE
    compute_cycles = int(f0[compute].sum())
    compute_bytes = int(f1[compute].sum())
    keep = ~compute
    ops = kinds[keep].astype(_np.int64)
    k0, k1, k2, k3 = f0[keep], f1[keep], f2[keep], f3[keep]
    single = (ops == KIND_TOUCH) & (k1 == 1)
    ops[single] = OP_TOUCH_SINGLE
    # Premultiply single-line byte offsets in place; multi-line touches
    # keep their raw line offset (touch_lines wants lines, not bytes).
    k2 = _np.where(single, k2 * 64, k2)
    return (
        ops.tolist(),
        k0.tolist(),
        k1.tolist(),
        k2.tolist(),
        (k3 != 0).tolist(),
        compute_cycles,
        compute_bytes,
    )


def _segment_python(columnar: "ColumnarTrace"):
    """Loop fallback for :func:`_segment_numpy` (identical output)."""
    compute_cycles = 0
    compute_bytes = 0
    ops: List[int] = []
    f0: List[int] = []
    f1: List[int] = []
    f2: List[int] = []
    writes: List[bool] = []
    for kind, a, b, c, d in zip(
        columnar.kinds, columnar.f0, columnar.f1, columnar.f2, columnar.f3
    ):
        if kind == KIND_COMPUTE:
            compute_cycles += a
            compute_bytes += b
            continue
        if kind == KIND_TOUCH and b == 1:
            ops.append(OP_TOUCH_SINGLE)
            f2.append(c * 64)
        else:
            ops.append(kind)
            f2.append(c)
        f0.append(a)
        f1.append(b)
        writes.append(d != 0)
    return ops, f0, f1, f2, writes, compute_cycles, compute_bytes


class ColumnarTrace:
    """Packed struct-of-arrays form of an event sequence.

    ``kinds[i]`` tags event ``i``; the operand columns ``f0..f3`` carry its
    fields (unused slots are zero):

    =========  =====  ========  =============  =========
    kind       f0     f1        f2             f3
    =========  =====  ========  =============  =========
    ALLOC      obj    size      —              —
    FREE       obj    —         —              —
    TOUCH      obj    lines     line_offset    write
    COMPUTE    cycles dram      —              —
    =========  =====  ========  =============  =========
    """

    __slots__ = ("kinds", "f0", "f1", "f2", "f3", "_segments")

    def __init__(
        self,
        kinds: array,
        f0: array,
        f1: array,
        f2: array,
        f3: array,
    ) -> None:
        self.kinds = kinds
        self.f0 = f0
        self.f1 = f1
        self.f2 = f2
        self.f3 = f3
        self._segments: Optional[SegmentIndex] = None

    @classmethod
    def pack(cls, events: List[Event]) -> Optional["ColumnarTrace"]:
        """Pack ``events``; returns None if any event is not one of the
        four canonical kinds (the replayer then falls back to objects)."""
        kinds = array("B", bytes(len(events)))
        f0 = array("q", kinds)
        f1 = array("q", kinds)
        f2 = array("q", kinds)
        f3 = array("q", kinds)
        for index, event in enumerate(events):
            kind = type(event)
            if kind is Touch:
                kinds[index] = KIND_TOUCH
                f0[index] = event.obj
                f1[index] = event.lines
                f2[index] = event.line_offset
                f3[index] = 1 if event.write else 0
            elif kind is Compute:
                kinds[index] = KIND_COMPUTE
                f0[index] = event.cycles
                f1[index] = event.dram_bytes
            elif kind is Alloc:
                kinds[index] = KIND_ALLOC
                f0[index] = event.obj
                f1[index] = event.size
            elif kind is Free:
                kinds[index] = KIND_FREE
                f0[index] = event.obj
            else:
                return None
        return cls(kinds, f0, f1, f2, f3)

    def segments(self) -> "SegmentIndex":
        """Memoized run segmentation (see :class:`SegmentIndex`).

        Columns are immutable once packed, so the index is built at most
        once per packed trace — replays (and the benchmark protocol,
        which packs outside every timed region) amortize it away.
        """
        index = self._segments
        if index is None:
            with get_tracer().span(
                "trace.segment", events=len(self.kinds)
            ):
                index = SegmentIndex.build(self)
            self._segments = index
        return index

    def to_events(self) -> List[Event]:
        """Inverse of :meth:`pack` (round-trip tested)."""
        out: List[Event] = []
        for kind, a, b, c, d in zip(
            self.kinds, self.f0, self.f1, self.f2, self.f3
        ):
            if kind == KIND_TOUCH:
                out.append(Touch(a, b, c, bool(d)))
            elif kind == KIND_COMPUTE:
                out.append(Compute(a, b))
            elif kind == KIND_ALLOC:
                out.append(Alloc(a, b))
            else:
                out.append(Free(a))
        return out

    def __len__(self) -> int:
        return len(self.kinds)


@dataclass
class Trace:
    """A named, replayable event sequence with summary metadata."""

    name: str
    language: str
    category: str  # "function" | "dataproc" | "platform"
    events: List[Event] = field(default_factory=list)
    # Lazily built caches, invalidated when the event count changes
    # (traces are append-only between builds and replays).
    _summary: Optional[Tuple[int, int, int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _columnar: Optional[Tuple[int, Optional[ColumnarTrace]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def _summarize(self) -> Tuple[int, int, int, int]:
        """One cached pass for the O(n) summary properties."""
        summary = self._summary
        if summary is None or summary[0] != len(self.events):
            allocs = frees = alloc_bytes = 0
            for event in self.events:
                kind = type(event)
                if kind is Alloc:
                    allocs += 1
                    alloc_bytes += event.size
                elif kind is Free:
                    frees += 1
            summary = (len(self.events), allocs, frees, alloc_bytes)
            self._summary = summary
        return summary

    @property
    def alloc_count(self) -> int:
        return self._summarize()[1]

    @property
    def free_count(self) -> int:
        return self._summarize()[2]

    @property
    def total_alloc_bytes(self) -> int:
        return self._summarize()[3]

    def allocs(self) -> Iterator[Alloc]:
        return (e for e in self.events if isinstance(e, Alloc))

    def columnar(self) -> Optional[ColumnarTrace]:
        """The packed replay form (built once, re-packed if the event
        count changed). None when the trace holds non-canonical events."""
        cached = self._columnar
        if cached is None or cached[0] != len(self.events):
            with get_tracer().span(
                "trace.pack", trace=self.name, events=len(self.events)
            ):
                cached = (len(self.events), ColumnarTrace.pack(self.events))
            self._columnar = cached
        return cached[1]

    def validate(self) -> None:
        """Structural sanity: frees reference live objects exactly once,
        touches reference live objects, sizes are positive."""
        live = set()
        for event in self.events:
            if isinstance(event, Alloc):
                if event.size <= 0:
                    raise ValueError(f"non-positive size in {event}")
                if event.obj in live:
                    raise ValueError(f"duplicate allocation id {event.obj}")
                live.add(event.obj)
            elif isinstance(event, Free):
                if event.obj not in live:
                    raise ValueError(f"free of dead/unknown id {event.obj}")
                live.discard(event.obj)
            elif isinstance(event, Touch):
                if event.obj not in live:
                    raise ValueError(f"touch of dead/unknown id {event.obj}")
