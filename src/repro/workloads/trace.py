"""Trace event model.

A workload is a deterministic sequence of four event kinds:

* :class:`Alloc` — an allocation request (``obj`` is a trace-local id).
* :class:`Free` — the object dies. For GC'd runtimes this marks the point
  of unreachability; the allocator decides when reclamation happens.
* :class:`Touch` — the application accesses ``lines`` cache lines of the
  object starting at ``line_offset`` (drives faults, caches, and bypass).
* :class:`Compute` — application work between memory-management activity:
  cycles plus statistically-modeled DRAM traffic.

Traces are replayed against a baseline or Memento system by the harness;
they are also analyzed directly for the characterization figures.

For replay, :meth:`Trace.columnar` packs the event list into
:class:`ColumnarTrace` — five parallel ``array`` columns (a kind tag plus
four integer operand slots) — so the harness's hot loop iterates machine
integers instead of chasing per-event objects and ``isinstance`` chains.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.obs.tracing import get_tracer


@dataclass(frozen=True, slots=True)
class Alloc:
    obj: int
    size: int


@dataclass(frozen=True, slots=True)
class Free:
    obj: int


@dataclass(frozen=True, slots=True)
class Touch:
    obj: int
    lines: int = 1
    line_offset: int = 0
    write: bool = True


@dataclass(frozen=True, slots=True)
class Compute:
    cycles: int
    dram_bytes: int = 0


Event = Union[Alloc, Free, Touch, Compute]

#: Columnar kind tags (stable — BENCH trajectories and any persisted
#: packed traces rely on them).
KIND_ALLOC = 0
KIND_FREE = 1
KIND_TOUCH = 2
KIND_COMPUTE = 3


class ColumnarTrace:
    """Packed struct-of-arrays form of an event sequence.

    ``kinds[i]`` tags event ``i``; the operand columns ``f0..f3`` carry its
    fields (unused slots are zero):

    =========  =====  ========  =============  =========
    kind       f0     f1        f2             f3
    =========  =====  ========  =============  =========
    ALLOC      obj    size      —              —
    FREE       obj    —         —              —
    TOUCH      obj    lines     line_offset    write
    COMPUTE    cycles dram      —              —
    =========  =====  ========  =============  =========
    """

    __slots__ = ("kinds", "f0", "f1", "f2", "f3")

    def __init__(
        self,
        kinds: array,
        f0: array,
        f1: array,
        f2: array,
        f3: array,
    ) -> None:
        self.kinds = kinds
        self.f0 = f0
        self.f1 = f1
        self.f2 = f2
        self.f3 = f3

    @classmethod
    def pack(cls, events: List[Event]) -> Optional["ColumnarTrace"]:
        """Pack ``events``; returns None if any event is not one of the
        four canonical kinds (the replayer then falls back to objects)."""
        kinds = array("B", bytes(len(events)))
        f0 = array("q", kinds)
        f1 = array("q", kinds)
        f2 = array("q", kinds)
        f3 = array("q", kinds)
        for index, event in enumerate(events):
            kind = type(event)
            if kind is Touch:
                kinds[index] = KIND_TOUCH
                f0[index] = event.obj
                f1[index] = event.lines
                f2[index] = event.line_offset
                f3[index] = 1 if event.write else 0
            elif kind is Compute:
                kinds[index] = KIND_COMPUTE
                f0[index] = event.cycles
                f1[index] = event.dram_bytes
            elif kind is Alloc:
                kinds[index] = KIND_ALLOC
                f0[index] = event.obj
                f1[index] = event.size
            elif kind is Free:
                kinds[index] = KIND_FREE
                f0[index] = event.obj
            else:
                return None
        return cls(kinds, f0, f1, f2, f3)

    def to_events(self) -> List[Event]:
        """Inverse of :meth:`pack` (round-trip tested)."""
        out: List[Event] = []
        for kind, a, b, c, d in zip(
            self.kinds, self.f0, self.f1, self.f2, self.f3
        ):
            if kind == KIND_TOUCH:
                out.append(Touch(a, b, c, bool(d)))
            elif kind == KIND_COMPUTE:
                out.append(Compute(a, b))
            elif kind == KIND_ALLOC:
                out.append(Alloc(a, b))
            else:
                out.append(Free(a))
        return out

    def __len__(self) -> int:
        return len(self.kinds)


@dataclass
class Trace:
    """A named, replayable event sequence with summary metadata."""

    name: str
    language: str
    category: str  # "function" | "dataproc" | "platform"
    events: List[Event] = field(default_factory=list)
    # Lazily built caches, invalidated when the event count changes
    # (traces are append-only between builds and replays).
    _summary: Optional[Tuple[int, int, int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _columnar: Optional[Tuple[int, Optional[ColumnarTrace]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def _summarize(self) -> Tuple[int, int, int, int]:
        """One cached pass for the O(n) summary properties."""
        summary = self._summary
        if summary is None or summary[0] != len(self.events):
            allocs = frees = alloc_bytes = 0
            for event in self.events:
                kind = type(event)
                if kind is Alloc:
                    allocs += 1
                    alloc_bytes += event.size
                elif kind is Free:
                    frees += 1
            summary = (len(self.events), allocs, frees, alloc_bytes)
            self._summary = summary
        return summary

    @property
    def alloc_count(self) -> int:
        return self._summarize()[1]

    @property
    def free_count(self) -> int:
        return self._summarize()[2]

    @property
    def total_alloc_bytes(self) -> int:
        return self._summarize()[3]

    def allocs(self) -> Iterator[Alloc]:
        return (e for e in self.events if isinstance(e, Alloc))

    def columnar(self) -> Optional[ColumnarTrace]:
        """The packed replay form (built once, re-packed if the event
        count changed). None when the trace holds non-canonical events."""
        cached = self._columnar
        if cached is None or cached[0] != len(self.events):
            with get_tracer().span(
                "trace.pack", trace=self.name, events=len(self.events)
            ):
                cached = (len(self.events), ColumnarTrace.pack(self.events))
            self._columnar = cached
        return cached[1]

    def validate(self) -> None:
        """Structural sanity: frees reference live objects exactly once,
        touches reference live objects, sizes are positive."""
        live = set()
        for event in self.events:
            if isinstance(event, Alloc):
                if event.size <= 0:
                    raise ValueError(f"non-positive size in {event}")
                if event.obj in live:
                    raise ValueError(f"duplicate allocation id {event.obj}")
                live.add(event.obj)
            elif isinstance(event, Free):
                if event.obj not in live:
                    raise ValueError(f"free of dead/unknown id {event.obj}")
                live.discard(event.obj)
            elif isinstance(event, Touch):
                if event.obj not in live:
                    raise ValueError(f"touch of dead/unknown id {event.obj}")
