"""The four long-running data-processing applications (§5, §6.1).

Redis and Memcached (key-value stores, driven with the Kangaroo [37]
tiny-value size distribution, mixed PUT/GET), Silo (in-memory OLTP), and
SQLite3 (SELECT-heavy SQL parsing). All are C++ against jemalloc with
decay purging enabled — these processes live long enough for the dirty
decay timer to fire, producing the MADV_DONTNEED/refault churn behind the
38 %/62 % user/kernel split of Table 2. Traces model a steady-state
measurement window.
"""

from __future__ import annotations

from repro.workloads.profiles import DATAPROC_LIFETIME, KV_SIZE_MODES
from repro.workloads.synth import WorkloadSpec

DATAPROC_ALLOCS = 40_000

REDIS = WorkloadSpec(
    name="Redis",
    language="cpp",
    category="dataproc",
    warm_heap=True,
    size_jitter=0.0,
    small_fraction=0.985,
    seed=41,
    num_allocs=DATAPROC_ALLOCS,
    size_modes=KV_SIZE_MODES,
    lifetime=DATAPROC_LIFETIME,
    compute_per_alloc=500,
    retouch_prob=0.6,  # SDS strings: keys/values/temporary buffers
    large_every=500,
    app_dram_per_alloc=26,
    phases=16,  # eviction/rehash waves
    phase_local=0.10,
)

MEMCACHED = WorkloadSpec(
    name="Memcached",
    language="cpp",
    category="dataproc",
    warm_heap=True,
    size_jitter=0.0,
    small_fraction=0.985,
    seed=42,
    num_allocs=DATAPROC_ALLOCS,
    size_modes=KV_SIZE_MODES,
    lifetime=DATAPROC_LIFETIME,
    compute_per_alloc=581,
    retouch_prob=0.5,
    large_every=600,
    app_dram_per_alloc=40,
    phases=12,
    phase_local=0.08,
)

SILO = WorkloadSpec(
    name="Silo",
    language="cpp",
    category="dataproc",
    warm_heap=True,
    size_jitter=0.0,
    small_fraction=0.985,
    seed=43,
    num_allocs=DATAPROC_ALLOCS,
    lifetime=DATAPROC_LIFETIME,
    compute_per_alloc=402,
    retouch_prob=0.4,
    large_every=450,
    app_dram_per_alloc=36,
    phases=12,
    phase_local=0.08,
)

SQLITE3 = WorkloadSpec(
    name="SQLite3",
    language="cpp",
    category="dataproc",
    warm_heap=True,
    size_jitter=0.0,
    small_fraction=0.985,
    seed=44,
    num_allocs=DATAPROC_ALLOCS,
    lifetime=DATAPROC_LIFETIME,
    compute_per_alloc=849,  # query execution between parse allocations
    retouch_prob=0.35,
    large_every=800,
    app_dram_per_alloc=44,
    phases=10,
    phase_local=0.06,
)

ALL_DATAPROC = [REDIS, MEMCACHED, SILO, SQLITE3]

#: jemalloc decay purging for long-running processes (runs retired before
#: purge); functions never reach the decay timer so they use None.
DATAPROC_PURGE_AFTER = 1

#: Page-sized small runs for the long-running configuration.
DATAPROC_RUN_BYTES = 4096
