"""Workload substrate.

The paper's workloads (fourteen serverless functions across Python, C++,
and Golang; four long-running data-processing applications; three OpenFaaS
platform operations) cannot be shipped or executed here, so they are
modeled as deterministic allocation/access/compute traces whose size and
lifetime statistics reproduce the paper's own characterization (Fig. 2,
Fig. 3, Tables 1-2). See DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.registry import (
    DATAPROC_WORKLOADS,
    FUNCTION_WORKLOADS,
    PLATFORM_WORKLOADS,
    all_workloads,
    get_workload,
)
from repro.workloads.synth import WorkloadSpec, generate_trace
from repro.workloads.trace import (
    Alloc,
    Compute,
    Free,
    Touch,
    Trace,
)

__all__ = [
    "Alloc",
    "Compute",
    "DATAPROC_WORKLOADS",
    "FUNCTION_WORKLOADS",
    "Free",
    "PLATFORM_WORKLOADS",
    "Touch",
    "Trace",
    "WorkloadSpec",
    "all_workloads",
    "generate_trace",
    "get_workload",
]
