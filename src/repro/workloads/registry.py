"""Workload registry: name → spec lookup used by the harness and benches."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.dataproc import ALL_DATAPROC
from repro.workloads.functions import ALL_FUNCTIONS
from repro.workloads.platform_ops import ALL_PLATFORM
from repro.workloads.synth import WorkloadSpec

FUNCTION_WORKLOADS: List[WorkloadSpec] = list(ALL_FUNCTIONS)
DATAPROC_WORKLOADS: List[WorkloadSpec] = list(ALL_DATAPROC)
PLATFORM_WORKLOADS: List[WorkloadSpec] = list(ALL_PLATFORM)

_ALL: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in FUNCTION_WORKLOADS + DATAPROC_WORKLOADS + PLATFORM_WORKLOADS
}


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by its paper name (e.g. ``"html"``, ``"Redis"``,
    ``"deploy"``). Raises KeyError with the available names on a miss."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_ALL)}"
        ) from None


def all_workloads() -> List[WorkloadSpec]:
    """Every workload in paper order (functions, data proc, platform)."""
    return FUNCTION_WORKLOADS + DATAPROC_WORKLOADS + PLATFORM_WORKLOADS
