"""Per-language statistical profiles for allocation size and lifetime.

The numbers come from the paper's own characterization:

* Fig. 2 — 93 % of allocations are under 512 B overall (98 % for data
  processing, 99 % for the serverless platform); sub-512 B distributions
  are workload-dependent with no consistent cross-workload pattern.
* Fig. 3 — lifetimes (malloc-free distance in same-size-class
  allocations) are bimodal: 71 % freed within 16, 27 % never freed before
  function exit. C++ is mostly short-lived; Python is short-lived with a
  long-lived minority; Golang is long-lived (GC never fires in short
  functions); the platform is long-lived; data processing is short-lived.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

SizeSampler = Callable[[random.Random], int]

#: Common CPython small-object sizes: object headers, tuples, small dicts,
#: string fragments (all pre-aligned to pymalloc's 8 B classes).
PYTHON_SIZE_MODES: Sequence[Tuple[int, float]] = (
    (16, 0.10), (24, 0.14), (32, 0.13), (48, 0.12), (56, 0.11),
    (64, 0.10), (88, 0.08), (112, 0.07), (160, 0.06), (224, 0.04),
    (320, 0.03), (448, 0.02),
)

#: C++ (DeathStarBench/jemalloc): many tiny nodes and string buffers.
CPP_SIZE_MODES: Sequence[Tuple[int, float]] = (
    (8, 0.08), (16, 0.16), (24, 0.12), (32, 0.15), (48, 0.12),
    (64, 0.12), (96, 0.08), (128, 0.07), (192, 0.05), (256, 0.03),
    (384, 0.02),
)

#: Go: interface headers, small structs, slice backing fragments.
GO_SIZE_MODES: Sequence[Tuple[int, float]] = (
    (16, 0.20), (32, 0.22), (48, 0.16), (64, 0.13), (96, 0.09),
    (128, 0.08), (192, 0.05), (256, 0.04), (384, 0.02), (512, 0.01),
)

#: Kangaroo-style tiny-object value sizes for the key-value stores [37].
KV_SIZE_MODES: Sequence[Tuple[int, float]] = (
    (24, 0.16), (40, 0.22), (64, 0.22), (100, 0.16), (160, 0.12),
    (240, 0.07), (400, 0.05),
)

SIZE_MODES_BY_LANGUAGE = {
    "python": PYTHON_SIZE_MODES,
    "cpp": CPP_SIZE_MODES,
    "go": GO_SIZE_MODES,
}


def mode_sampler(
    modes: Sequence[Tuple[int, float]], jitter: float = 0.0
) -> SizeSampler:
    """Build a sampler drawing from weighted size modes.

    ``jitter`` perturbs each draw by up to ±jitter of the mode size
    (rounded to 8 B), modeling variable-length payloads around each mode.
    """
    sizes = [size for size, _ in modes]
    weights = [weight for _, weight in modes]

    def sample(rng: random.Random) -> int:
        size = rng.choices(sizes, weights=weights)[0]
        if jitter:
            delta = rng.uniform(-jitter, jitter) * size
            size = max(8, int(size + delta) + 7 & ~7)
        return min(size, 512)

    return sample


def large_sampler(rng: random.Random, max_bytes: int = 65_536) -> int:
    """Sizes for the rare >512 B allocations, log-uniform from just above
    the threshold up to ``max_bytes`` (the Fig. 2 tail). Kept mostly in
    the tens of KB so the large path's bins recycle addresses the way
    real repeated buffer allocations do."""
    import math

    exponent = rng.uniform(math.log(600), math.log(max_bytes))
    return int(math.exp(exponent))


@dataclass(frozen=True)
class LifetimeProfile:
    """Mixture over malloc-free distance (same-size-class allocations).

    ``short``: freed within ``short_max`` allocations (Fig. 3's [1-16]
    bucket); ``medium``: freed within (short_max, medium_max]; the rest
    never free before exit (the 257-Inf / OS-reclaimed bucket).
    """

    short: float
    medium: float
    short_max: int = 16
    medium_max: int = 256

    @property
    def never(self) -> float:
        return max(0.0, 1.0 - self.short - self.medium)

    def sample(self, rng: random.Random) -> Optional[int]:
        """Draw a distance, or None for never-freed."""
        roll = rng.random()
        if roll < self.short:
            # Geometric-ish within [1, short_max]: short distances dominate.
            return min(self.short_max, 1 + int(rng.expovariate(1 / 4.0)))
        if roll < self.short + self.medium:
            return rng.randint(self.short_max + 1, self.medium_max)
        return None


#: Default lifetime mixes per language (tuned to Fig. 3's bars).
LIFETIMES_BY_LANGUAGE = {
    "python": LifetimeProfile(short=0.80, medium=0.05),
    "cpp": LifetimeProfile(short=0.90, medium=0.05),
    "go": LifetimeProfile(short=0.08, medium=0.07),
}

#: Data processing: predominantly small+short-lived (§2.2), with a
#: medium-lived stored-value fraction that drains old slabs and drives
#: the decay-purge/refault churn behind Table 2's 62% kernel share.
DATAPROC_LIFETIME = LifetimeProfile(short=0.73, medium=0.27)

#: Serverless platform: 99% small, long-lived under the Go GC (§2.2).
PLATFORM_LIFETIME = LifetimeProfile(short=0.05, medium=0.10)


@dataclass(frozen=True)
class LanguageProfile:
    """Bundled defaults for one runtime."""

    language: str
    small_fraction: float
    size_modes: Sequence[Tuple[int, float]]
    lifetime: LifetimeProfile


PROFILES = {
    "python": LanguageProfile(
        "python", 0.93, PYTHON_SIZE_MODES, LIFETIMES_BY_LANGUAGE["python"]
    ),
    "cpp": LanguageProfile(
        "cpp", 0.95, CPP_SIZE_MODES, LIFETIMES_BY_LANGUAGE["cpp"]
    ),
    "go": LanguageProfile(
        "go", 0.94, GO_SIZE_MODES, LIFETIMES_BY_LANGUAGE["go"]
    ),
}
