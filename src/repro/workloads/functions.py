"""The sixteen function workloads of §5.

SeBS: dynamic-html (html), image-recognition (ir), graph-bfs (bfs),
dna-visualisation (dna). FunctionBench: pyaes (aes), feature_reducer (fr).
pyperformance: json_loads (jl), json_dumps (jd), mako (mk).
DeathStarBench C++ ports: UrlShorten (US), UserMentions (UM),
ComposeMedia (CM), MovieID (MI). Golang ports: html-go, bfs-go, aes-go.

Per-workload parameters encode each function's published character:
allocation intensity (≥0.5 MallocPKI), working-set/heap size via phase
structure and long-lived fractions, large-buffer usage, and reuse
behaviour. ``compute_per_alloc`` sets the memory-management share of
runtime and is calibrated so baseline-vs-Memento speedups land in the
paper's Fig. 8 ranges (see EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from repro.workloads.profiles import LifetimeProfile
from repro.workloads.synth import WorkloadSpec

#: Trace length for function workloads: long enough for steady-state HOT
#: and allocator behaviour, short enough to simulate in seconds.
FUNC_ALLOCS = 24_000

#: Python functions' rare large buffers are mid-sized (lists, bytes
#: objects) that glibc-style bins recycle; cap their sizes accordingly.
PY_LARGE_MAX = 16_384

PYTHON_FUNCTIONS = [
    WorkloadSpec(
        name="html",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=11,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=742,
        phases=10,
        phase_local=0.46,
        retouch_prob=0.45,
        app_dram_per_alloc=24,
        large_every=220,
    ),
    WorkloadSpec(
        name="ir",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=12,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=2565,
        phases=4,
        phase_local=0.32,
        large_every=60,
        large_lifetime=120,
        app_dram_per_alloc=96,
    ),
    WorkloadSpec(
        name="bfs",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=13,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1635,
        phases=6,
        phase_local=0.42,
        app_dram_per_alloc=56,
    ),
    WorkloadSpec(
        name="dna",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=14,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1959,
        phases=5,
        phase_local=0.32,
        large_every=70,
        app_dram_per_alloc=72,
    ),
    WorkloadSpec(
        name="aes",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=15,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1032,
        phases=1,
        lifetime=LifetimeProfile(short=0.94, medium=0.04),
        large_every=None,
        app_dram_per_alloc=10,
        retouch_prob=0.5,
    ),
    WorkloadSpec(
        name="fr",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=16,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=2521,
        phases=4,
        phase_local=0.32,
        large_every=90,
        app_dram_per_alloc=64,
    ),
    WorkloadSpec(
        name="jl",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=17,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1691,
        phases=1,
        lifetime=LifetimeProfile(short=0.88, medium=0.07),
        large_every=None,
        app_dram_per_alloc=16,
    ),
    WorkloadSpec(
        name="jd",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=18,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=2072,
        phases=2,
        phase_local=0.32,
        app_dram_per_alloc=32,
    ),
    WorkloadSpec(
        name="mk",
        language="python",
        large_max=PY_LARGE_MAX,
        startup_fraction=0.32,
        startup_size_multiplier=1.7,
        seed=19,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1508,
        phases=8,
        phase_local=0.42,
        app_dram_per_alloc=40,
    ),
]

CPP_FUNCTIONS = [
    WorkloadSpec(
        name="US",
        language="cpp",
        small_fraction=0.98,
        warm_heap=True,
        seed=21,
        num_allocs=36_000,
        compute_per_alloc=365,
        phases=2,
        phase_local=0.06,
        large_every=400,
        app_dram_per_alloc=20,
    ),
    WorkloadSpec(
        name="UM",
        language="cpp",
        small_fraction=0.98,
        warm_heap=True,
        seed=22,
        num_allocs=36_000,
        compute_per_alloc=275,
        phases=2,
        phase_local=0.05,
        retouch_prob=0.55,
        large_every=400,
        app_dram_per_alloc=14,
    ),
    WorkloadSpec(
        name="CM",
        language="cpp",
        small_fraction=0.98,
        warm_heap=True,
        seed=23,
        num_allocs=36_000,
        compute_per_alloc=284,
        phases=2,
        phase_local=0.05,
        retouch_prob=0.6,
        large_every=300,
        app_dram_per_alloc=12,
    ),
    WorkloadSpec(
        name="MI",
        language="cpp",
        small_fraction=0.98,
        warm_heap=True,
        seed=24,
        num_allocs=36_000,
        compute_per_alloc=402,
        phases=2,
        phase_local=0.06,
        large_every=400,
        app_dram_per_alloc=20,
    ),
]

GO_FUNCTIONS = [
    WorkloadSpec(
        name="html-go",
        language="go",
        size_jitter=0.0,  # Go quantizes to fixed size classes
        startup_fraction=0.30,
        seed=31,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1098,
        lifetime=LifetimeProfile(short=0.06, medium=0.07),
        app_dram_per_alloc=28,
        large_every=300,
    ),
    WorkloadSpec(
        name="bfs-go",
        language="go",
        size_jitter=0.0,  # Go quantizes to fixed size classes
        startup_fraction=0.30,
        seed=32,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1445,
        lifetime=LifetimeProfile(short=0.06, medium=0.08),
        app_dram_per_alloc=48,
    ),
    WorkloadSpec(
        name="aes-go",
        language="go",
        size_jitter=0.0,  # Go quantizes to fixed size classes
        startup_fraction=0.30,
        seed=33,
        num_allocs=FUNC_ALLOCS,
        compute_per_alloc=1745,
        lifetime=LifetimeProfile(short=0.10, medium=0.10),
        large_every=None,
        app_dram_per_alloc=16,
    ),
]

ALL_FUNCTIONS = PYTHON_FUNCTIONS + CPP_FUNCTIONS + GO_FUNCTIONS
