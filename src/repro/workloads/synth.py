"""Deterministic trace generation from a workload specification.

``WorkloadSpec`` captures everything that distinguishes one paper workload
from another: language runtime, allocation count and rate (via compute
cycles per allocation), size mixture, lifetime mixture, access/reuse
behaviour, and the large-buffer churn that drives kernel involvement.
``generate_trace`` turns a spec into a reproducible event sequence
(seeded ``random.Random``; same spec → same trace).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.profiles import (
    LifetimeProfile,
    PROFILES,
    large_sampler,
    mode_sampler,
)
from repro.workloads.trace import Alloc, Compute, Free, Touch, Trace


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Statistical description of one workload."""

    name: str
    language: str  # "python" | "cpp" | "go"
    category: str = "function"  # "function" | "dataproc" | "platform"
    seed: int = 1

    #: Total small+large allocation requests in the trace.
    num_allocs: int = 30_000
    #: Fraction of requests at or under 512 B (Fig. 2).
    small_fraction: Optional[float] = None
    #: Weighted small-size modes; defaults to the language profile.
    size_modes: Optional[Sequence[Tuple[int, float]]] = None
    #: Size jitter around each mode (0 = exact modes).
    size_jitter: float = 0.15
    #: Lifetime mixture; defaults to the language profile.
    lifetime: Optional[LifetimeProfile] = None

    #: Application compute cycles between allocations (sets MallocPKI and,
    #: with the cost model, the memory-management share of runtime).
    compute_per_alloc: int = 600
    #: Statistically-modeled app DRAM traffic per allocation interval.
    app_dram_per_alloc: int = 48
    #: Probability a dying object is re-read just before its free.
    retouch_prob: float = 0.25
    #: Lines touched per object at allocation beyond its own span
    #: (0 = touch exactly the object's lines).
    extra_touch_lines: int = 0

    #: Every ``large_every`` allocations, one request is a large buffer
    #: (None disables; this is what drives mmap/fault kernel churn for
    #: workloads with big working sets).
    large_every: Optional[int] = 64
    #: Large buffers die after this many subsequent *large* allocations
    #: (short lifetimes let the large path's bins recycle addresses).
    large_lifetime: int = 40
    #: Upper bound for large-allocation sizes.
    large_max: int = 65_536
    #: Fraction of a large buffer's pages touched after allocation.
    large_touch_fraction: float = 0.6

    #: Functions run in phases (parse → build → emit …); at each phase
    #: boundary the phase's working set dies in a batch. Phase-local
    #: objects look long-lived to the Fig. 3 metric and, under pymalloc,
    #: drain whole pools/arenas at once — the source of baseline arena
    #: munmap/refault churn that Memento's page allocator absorbs.
    phases: int = 1
    #: Fraction of small allocations that live until their phase ends
    #: (carved out of the lifetime mixture before sampling it).
    phase_local: float = 0.0
    #: Never-freed allocations happen early (interpreter/runtime state is
    #: built at startup). After this fraction of the trace, a draw of
    #: "never" becomes phase-local instead — which is what lets pymalloc
    #: actually empty and release arenas at phase boundaries rather than
    #: pinning every arena with one immortal object.
    longlived_early_fraction: float = 0.2

    #: Leading fraction of the trace modeling language-runtime startup:
    #: the interpreter boots and imports modules, a dense burst of
    #: never-freed small allocations (module dicts, code objects, interned
    #: strings) that the OS batch-reclaims at exit. Startup allocations
    #: touch fresh pages with no reuse — the fault-dense region behind the
    #: high kernel share of Table 2 for Python and Golang. Short-lived
    #: functions are dominated by it; compiled C++ barely has one.
    startup_fraction: float = 0.0
    #: Compute between startup allocations, relative to compute_per_alloc
    #: (startup is allocation-dense).
    startup_compute_scale: float = 0.3
    #: Startup allocations skew larger than steady-state ones (code
    #: objects, docstrings, bytecode arrays); sizes are scaled by this
    #: factor and clamped to the small threshold.
    startup_size_multiplier: float = 1.0
    #: Warm-started container with a retained allocator heap: pages the
    #: software allocator maps are already physically backed (C++
    #: functions keep jemalloc's chunks warm across invocations; Python
    #: and Go heaps churn or grow and re-fault regardless).
    warm_heap: bool = False

    def resolved(self) -> "WorkloadSpec":
        """Fill profile-derived defaults."""
        profile = PROFILES[self.language]
        updates = {}
        if self.small_fraction is None:
            updates["small_fraction"] = profile.small_fraction
        if self.size_modes is None:
            updates["size_modes"] = profile.size_modes
        if self.lifetime is None:
            updates["lifetime"] = profile.lifetime
        return replace(self, **updates) if updates else self


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Generate the deterministic event trace for ``spec``."""
    spec = spec.resolved()
    rng = random.Random(spec.seed)
    sample_small = mode_sampler(spec.size_modes, spec.size_jitter)
    events: List = []
    trace = Trace(
        name=spec.name,
        language=spec.language,
        category=spec.category,
        events=events,
    )

    next_id = 0
    sizes: Dict[int, int] = {}
    # Per-size-class allocation counters and pending frees:
    # heap entries are (due_count, obj_id).
    class_counter: Dict[int, int] = {}
    pending: Dict[int, List[Tuple[int, int]]] = {}
    phase_objects: List[int] = []
    phase_length = max(1, spec.num_allocs // max(1, spec.phases))

    def flush_due(size_class: int) -> None:
        due_heap = pending.get(size_class)
        count = class_counter.get(size_class, 0)
        while due_heap and due_heap[0][0] <= count:
            _, obj = heapq.heappop(due_heap)
            if rng.random() < spec.retouch_prob:
                events.append(Touch(obj, lines=1, write=False))
            events.append(Free(obj))
            del sizes[obj]

    startup_until = int(spec.startup_fraction * spec.num_allocs)

    for index in range(spec.num_allocs):
        in_startup = index < startup_until
        jitter = rng.uniform(0.6, 1.4)
        compute = spec.compute_per_alloc * (
            spec.startup_compute_scale if in_startup else 1.0
        )
        events.append(
            Compute(
                cycles=max(1, int(compute * jitter)),
                dram_bytes=int(spec.app_dram_per_alloc * jitter),
            )
        )

        if in_startup:
            # Runtime startup: small, never freed, touched once.
            size = min(
                512, int(sample_small(rng) * spec.startup_size_multiplier)
            )
            events.append(Alloc(obj := next_id, size))
            next_id += 1
            sizes[obj] = size
            events.append(Touch(obj, lines=max(1, -(-size // 64))))
            continue

        is_large = (
            spec.large_every is not None
            and index % spec.large_every == spec.large_every - 1
        ) or rng.random() > spec.small_fraction
        obj = next_id
        next_id += 1

        if is_large:
            size = large_sampler(rng, spec.large_max)
            events.append(Alloc(obj, size))
            sizes[obj] = size
            pages = max(1, int(size / 4096 * spec.large_touch_fraction))
            # Touch one line in each touched page: enough to fault them.
            for page in range(pages):
                events.append(
                    Touch(obj, lines=1, line_offset=page * 64, write=True)
                )
            size_class = -1  # large requests share one lifetime stream
            class_counter[size_class] = class_counter.get(size_class, 0) + 1
            heapq.heappush(
                pending.setdefault(size_class, []),
                (class_counter[size_class] + spec.large_lifetime, obj),
            )
            flush_due(size_class)
            continue

        size = sample_small(rng)
        events.append(Alloc(obj, size))
        sizes[obj] = size
        lines = max(1, -(-size // 64)) + spec.extra_touch_lines
        events.append(Touch(obj, lines=lines, write=True))

        size_class = (size + 7) // 8 - 1
        class_counter[size_class] = class_counter.get(size_class, 0) + 1
        if spec.phases > 1 and rng.random() < spec.phase_local:
            phase_objects.append(obj)
        else:
            distance = spec.lifetime.sample(rng)
            if (
                distance is None
                and spec.phases > 1
                and index > spec.longlived_early_fraction * spec.num_allocs
            ):
                # Late "immortal" draws become phase-local: long-lived
                # state is built early in real functions.
                phase_objects.append(obj)
            elif distance is not None:
                heapq.heappush(
                    pending.setdefault(size_class, []),
                    (class_counter[size_class] + distance, obj),
                )
        flush_due(size_class)

        if spec.phases > 1 and (index + 1) % phase_length == 0:
            # Phase boundary: the phase's working set dies in a batch.
            for dead in phase_objects:
                events.append(Free(dead))
                del sizes[dead]
            phase_objects.clear()

    # Objects with finite scheduled lifetimes die before exit even if
    # their size class sees no further allocations; drain them so the
    # trace's lifetime statistics match the sampled mixture. Never-freed
    # objects (no schedule entry) stay live for the OS to batch-reclaim.
    for due_heap in pending.values():
        while due_heap:
            _, obj = heapq.heappop(due_heap)
            events.append(Free(obj))
            del sizes[obj]
    for dead in phase_objects:
        events.append(Free(dead))
        del sizes[dead]

    return trace
