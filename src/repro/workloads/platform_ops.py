"""The three OpenFaaS serverless-platform operations (§5, §6.1).

``up`` starts the platform, ``deploy`` registers a function in the store
and prepares it for execution, ``invoke`` routes a request to an instance.
All are Golang daemons measured over the operation's region of interest:
99 % of allocations are small and long-lived under the Go GC (§2.2), with
the user/kernel memory-management split at 59 %/41 % (Table 2).
"""

from __future__ import annotations

from repro.workloads.profiles import PLATFORM_LIFETIME
from repro.workloads.synth import WorkloadSpec

PLATFORM_ALLOCS = 30_000

UP = WorkloadSpec(
    name="up",
    language="go",
    category="platform",
    small_fraction=0.995,
    size_jitter=0.0,  # Go quantizes to fixed size classes
    seed=51,
    num_allocs=PLATFORM_ALLOCS,
    lifetime=PLATFORM_LIFETIME,
    compute_per_alloc=3526,
    large_every=250,  # config parsing, TLS buffers
    app_dram_per_alloc=56,
)

DEPLOY = WorkloadSpec(
    name="deploy",
    language="go",
    category="platform",
    small_fraction=0.995,
    size_jitter=0.0,  # Go quantizes to fixed size classes
    seed=52,
    num_allocs=PLATFORM_ALLOCS,
    lifetime=PLATFORM_LIFETIME,
    compute_per_alloc=2463,
    large_every=200,  # image metadata, manifest buffers
    app_dram_per_alloc=48,
)

INVOKE = WorkloadSpec(
    name="invoke",
    language="go",
    category="platform",
    small_fraction=0.995,
    size_jitter=0.0,  # Go quantizes to fixed size classes
    seed=53,
    num_allocs=PLATFORM_ALLOCS,
    lifetime=PLATFORM_LIFETIME,
    compute_per_alloc=4462,
    large_every=350,  # request/response bodies
    app_dram_per_alloc=64,
)

ALL_PLATFORM = [UP, DEPLOY, INVOKE]
