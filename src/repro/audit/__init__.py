"""Architectural auditing: invariant checker + differential oracle.

``repro.audit`` validates the simulator against itself: pluggable
:class:`Invariant` rules check cross-structure consistency of the live
Memento state at configurable epochs, and the differential oracle replays
workloads lockstep against deliberately naive reference implementations
of the closure-factory hot paths, reporting first divergence with a
minimized reproducing prefix. See DESIGN.md §13.

The oracle half is loaded lazily: ``oracle`` imports the harness (it
builds whole systems), and the harness imports ``invariants`` for its
audit hook — an eager import here would close that cycle.
"""

from repro.audit.invariants import (
    AUDIT,
    AuditContext,
    Auditor,
    DEFAULT_RULES,
    EPOCHS,
    Invariant,
    Violation,
    get_audit,
    install_audit,
)

_ORACLE_EXPORTS = (
    "BypassSoundnessMonitor",
    "DiffReport",
    "Divergence",
    "build_reference_system",
    "minimize_prefix",
    "run_diff",
    "run_lockstep",
)

__all__ = [
    "AUDIT",
    "AuditContext",
    "Auditor",
    "DEFAULT_RULES",
    "EPOCHS",
    "Invariant",
    "Violation",
    "get_audit",
    "install_audit",
    *_ORACLE_EXPORTS,
]


def __getattr__(name: str):
    if name in _ORACLE_EXPORTS:
        from repro.audit import oracle

        return getattr(oracle, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
