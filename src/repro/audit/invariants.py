"""Architectural invariant checker (audit subsystem, part a).

Pluggable :class:`Invariant` rules evaluate the *live* simulator state —
arena bitmaps against list membership, bypass counters against the 11-bit
bound, HOT/AAC contents against the backing headers and bump pointers,
Memento page-table accounting against the physical pool, the per-process
shootdown bit-vector against core TLB contents, and cache dirty bits
against the DRAM writeback ledger. The paper's correctness argument rests
on these relationships (§3.1–§3.3); PRs 2–4 rewrote the hot paths into
closure factories, so the checker is what keeps "fast" from silently
diverging from "the model".

Gating mirrors the EventRing/Profile pattern exactly: a module-level
``AUDIT`` slot installed via :func:`install_audit`, captured by
``SimulatedSystem`` at construction. With no auditor installed the replay
paths are byte-identical to the unaudited build — the only cost is one
``None`` test per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.core.arena import HEADER_BYTES, arena_span_bytes
from repro.core.bypass import COUNTER_MAX
from repro.kernel.page_table import LEVELS, PageTable
from repro.sim.params import LINE_SIZE, PAGE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.object_allocator import HardwareObjectAllocator
    from repro.core.page_allocator import HardwarePageAllocator
    from repro.sim.machine import Machine

#: Valid audit epochs: check after every event, every N events, or once
#: per run (after replay, before teardown).
EPOCHS = ("event", "interval", "run")


@dataclass
class Violation:
    """One invariant breach, attributed to a rule and (optionally) the
    replay event index at which the check fired."""

    rule: str
    message: str
    event_index: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "message": self.message,
            "event_index": self.event_index,
        }

    def __str__(self) -> str:
        where = (
            f" @event {self.event_index}"
            if self.event_index is not None
            else ""
        )
        return f"[{self.rule}]{where} {self.message}"


class AuditContext:
    """Handles into one simulated system's live state.

    Rules read through this instead of a ``SimulatedSystem`` so they can
    also run against hand-built component stacks in unit tests (e.g. a
    bare allocator + page allocator without the harness).
    """

    def __init__(
        self,
        machine: "Machine",
        memento: bool,
        config=None,
        allocators: Iterable["HardwareObjectAllocator"] = (),
        page_allocator: Optional["HardwarePageAllocator"] = None,
    ) -> None:
        self.machine = machine
        self.memento = memento
        self.config = config
        self.allocators = list(allocators)
        self.page_allocator = page_allocator

    @classmethod
    def from_system(cls, system) -> "AuditContext":
        allocators = []
        if system.memento and system.runtime is not None:
            allocators.append(system.runtime.context.object_allocator)
        return cls(
            machine=system.machine,
            memento=system.memento,
            config=system.config,
            allocators=allocators,
            page_allocator=system.page_allocator,
        )


class Invariant:
    """Base class: one named architectural rule.

    ``check`` returns a list of violation messages (empty when the state
    is consistent) and must be read-only over the simulator — folding
    pending counters is the only permitted side effect.
    """

    name = "invariant"
    description = ""

    def check(self, ctx: AuditContext) -> List[str]:
        raise NotImplementedError


class ArenaListMembership(Invariant):
    """Bitmap/list consistency of §3.1's per-class arena lists.

    Every live header is either HOT-resident (list_name None, unlinked)
    or linked on exactly the list its ``list_name`` claims; full-list
    members are full, available-list members are not; linkage is a
    well-formed doubly-linked list whose length matches the list's count.
    """

    name = "arena-list-membership"
    description = (
        "arena allocation bitmap vs. available/full list membership"
    )

    def check(self, ctx: AuditContext) -> List[str]:
        out: List[str] = []
        for allocator in ctx.allocators:
            headers = allocator.headers
            placed: Dict[int, str] = {}  # id(header) -> where it lives
            for sc, entry in enumerate(allocator.hot.entries):
                header = entry.header
                if header is None:
                    continue
                placed[id(header)] = f"HOT[{sc}]"
                if header.list_name is not None:
                    out.append(
                        f"HOT-resident arena {header.va:#x} claims "
                        f"list {header.list_name!r}"
                    )
                if header.prev is not None or header.next is not None:
                    out.append(
                        f"HOT-resident arena {header.va:#x} carries "
                        f"stale prev/next links"
                    )
            for sc in range(len(allocator.available)):
                for lst in (allocator.available[sc], allocator.full[sc]):
                    out.extend(
                        self._walk(lst, sc, headers, placed, len(headers))
                    )
            for va, header in headers.items():
                if va != header.va:
                    out.append(
                        f"headers key {va:#x} != header.va {header.va:#x}"
                    )
                if id(header) not in placed:
                    out.append(
                        f"arena {header.va:#x} (list_name="
                        f"{header.list_name!r}) is neither HOT-resident "
                        f"nor reachable on any list"
                    )
        return out

    @staticmethod
    def _walk(lst, sc, headers, placed, max_nodes) -> List[str]:
        out: List[str] = []
        count = 0
        node = lst.head
        prev = None
        while node is not None:
            if count > max_nodes + 1:
                out.append(
                    f"{lst.name}[{sc}] linkage cycles after {count} nodes"
                )
                return out
            where = f"{lst.name}[{sc}]"
            if id(node) in placed:
                out.append(
                    f"arena {node.va:#x} on {where} is also at "
                    f"{placed[id(node)]}"
                )
                return out
            placed[id(node)] = where
            if node.list_name != lst.name:
                out.append(
                    f"arena {node.va:#x} on {where} claims list "
                    f"{node.list_name!r}"
                )
            if node.prev is not prev:
                out.append(
                    f"arena {node.va:#x} on {where} has a stale prev link"
                )
            if headers.get(node.va) is not node:
                out.append(
                    f"arena {node.va:#x} on {where} is not the live "
                    f"header for its VA"
                )
            if lst.name == "full" and not node.is_full:
                out.append(
                    f"arena {node.va:#x} on full[{sc}] has "
                    f"{node.live_objects}/{node.objects} slots set"
                )
            if lst.name == "available" and node.is_full:
                out.append(f"full arena {node.va:#x} on available[{sc}]")
            prev = node
            node = node.next
            count += 1
        if count != len(lst):
            out.append(
                f"{lst.name}[{sc}] walk found {count} nodes but the "
                f"list counts {len(lst)}"
            )
        return out


class BypassCounterRange(Invariant):
    """The 11-bit bypass counter (§3.3) stays within architectural
    bounds: 0 <= counter <= min(arena line count, COUNTER_MAX)."""

    name = "bypass-counter-range"
    description = "11-bit bypass counter saturates instead of wrapping"

    def check(self, ctx: AuditContext) -> List[str]:
        out: List[str] = []
        if ctx.config is None:
            return out
        for allocator in ctx.allocators:
            for header in allocator.headers.values():
                span_lines = (
                    arena_span_bytes(header.size_class, ctx.config)
                    // LINE_SIZE
                )
                bound = min(span_lines, COUNTER_MAX)
                counter = header.bypass_counter
                if not isinstance(counter, int) or not (
                    0 <= counter <= bound
                ):
                    out.append(
                        f"arena {header.va:#x} (class "
                        f"{header.size_class}) bypass counter {counter} "
                        f"outside [0, {bound}]"
                    )
        return out


class HotAacBacking(Invariant):
    """HOT/AAC cached state matches the backing structures (§3.1–§3.2):
    HOT entries reference live headers of the indexed class; AAC entries
    stay within the per-core budget; bump pointers stay span-aligned in
    their thread window; recycled spans are aligned, previously drawn,
    unique, and never shadow a live arena."""

    name = "hot-aac-backing"
    description = "HOT/AAC cached entries vs. backing headers and bumps"

    def check(self, ctx: AuditContext) -> List[str]:
        out: List[str] = []
        live_vas = set()
        for allocator in ctx.allocators:
            live_vas.update(allocator.headers)
            for sc, entry in enumerate(allocator.hot.entries):
                header = entry.header
                if header is None:
                    continue
                if header.size_class != sc:
                    out.append(
                        f"HOT[{sc}] caches arena {header.va:#x} of class "
                        f"{header.size_class}"
                    )
                if allocator.headers.get(header.va) is not header:
                    out.append(
                        f"HOT[{sc}] caches a dead header for "
                        f"{header.va:#x}"
                    )
        page_allocator = ctx.page_allocator
        if page_allocator is None:
            return out
        budget = page_allocator.config.aac_classes_per_core
        for slot, entry in page_allocator.aac.entries.items():
            if len(entry) > budget:
                out.append(
                    f"AAC slot {slot} holds {len(entry)} classes "
                    f"(budget {budget})"
                )
        for state in page_allocator._states.values():
            for (thread, sc), bump in state.bump.items():
                start, limit = state.thread_slice(thread, sc)
                span = arena_span_bytes(sc, page_allocator.config)
                if not start <= bump <= limit or (bump - start) % span:
                    out.append(
                        f"bump pointer for thread {thread} class {sc} at "
                        f"{bump:#x} outside/misaligned in "
                        f"[{start:#x}, {limit:#x})"
                    )
            for (thread, sc), spans in state.free_spans.items():
                start, _limit = state.thread_slice(thread, sc)
                span = arena_span_bytes(sc, page_allocator.config)
                bump = state.bump.get((thread, sc), start)
                if len(set(spans)) != len(spans):
                    out.append(
                        f"duplicate recycled span for thread {thread} "
                        f"class {sc}"
                    )
                for va in spans:
                    if (va - start) % span or not start <= va < bump:
                        out.append(
                            f"recycled span {va:#x} (thread {thread}, "
                            f"class {sc}) misaligned or never drawn"
                        )
                    if va in live_vas:
                        out.append(
                            f"recycled span {va:#x} shadows a live arena"
                        )
        return out


def _table_node_pfns(table: PageTable) -> List[int]:
    """Frames of every node page (root + interiors) of ``table``."""
    out = [table.root.pfn]

    def recurse(node, level: int) -> None:
        if level < LEVELS - 1:
            for child in node.entries.values():
                out.append(child.pfn)
                recurse(child, level + 1)

    recurse(table.root, 0)
    return out


class PoolBalance(Invariant):
    """Page-pool conservation (§3.2): pool contents match the frame
    ledger; page-table node counts match the table-page stats; leaves
    mapped equal pages drawn minus pages reclaimed; no frame is both
    pooled and mapped."""

    name = "pool-balance"
    description = "Memento page-table leaves vs. pool draws/reclaims"

    def check(self, ctx: AuditContext) -> List[str]:
        out: List[str] = []
        page_allocator = ctx.page_allocator
        if page_allocator is None:
            return out
        pool = page_allocator.pool
        if len(set(pool)) != len(pool):
            out.append(f"pool holds duplicate frames ({len(pool)} total)")
        pooled = ctx.machine.frames.live("memento")
        if pooled != len(pool):
            out.append(
                f"frame ledger says {pooled} pooled pages but the pool "
                f"holds {len(pool)}"
            )
        stats = ctx.machine.stats
        table_live = stats["memento.page.table_pages_live"]
        table_actual = sum(
            state.page_table.table_pages
            for state in page_allocator._states.values()
        )
        if table_live != table_actual:
            out.append(
                f"table_pages_live={table_live} but the page tables "
                f"hold {table_actual} node pages"
            )
        pool_set = set(pool)
        mapped_total = 0
        for pid, state in page_allocator._states.items():
            mapped = dict(state.page_table.mappings())
            mapped_total += len(mapped)
            if len(mapped) != state.page_table.mapped_pages:
                out.append(
                    f"pid {pid}: mapped_pages="
                    f"{state.page_table.mapped_pages} but the table "
                    f"holds {len(mapped)} leaves"
                )
            leaf_overlap = pool_set.intersection(mapped.values())
            if leaf_overlap:
                out.append(
                    f"pid {pid}: {len(leaf_overlap)} leaf frames are "
                    f"still in the pool"
                )
            node_overlap = pool_set.intersection(
                _table_node_pfns(state.page_table)
            )
            if node_overlap:
                out.append(
                    f"pid {pid}: {len(node_overlap)} table-node frames "
                    f"are still in the pool"
                )
        drawn = stats["memento.page.arena_pages_mapped"]
        freed = stats["memento.page.arena_pages_freed"]
        released = stats["memento.page.process_released_pages"]
        if drawn - freed - released != mapped_total:
            out.append(
                f"leaf conservation broken: mapped={drawn} freed="
                f"{freed} released={released} but {mapped_total} leaves "
                f"remain"
            )
        return out


class ShootdownCoverage(Invariant):
    """§3.2 shootdown bit-vector: any core caching a translation for a
    process's Memento region must be recorded in that process's
    ``walker_cores`` — otherwise an arena free would skip its TLB and
    leave a stale mapping."""

    name = "shootdown-coverage"
    description = "per-process shootdown bit-vector covers walker TLBs"

    def check(self, ctx: AuditContext) -> List[str]:
        out: List[str] = []
        page_allocator = ctx.page_allocator
        if page_allocator is None:
            return out
        for pid, state in page_allocator._states.items():
            region = state.region
            walkers = state.walker_cores
            for core in ctx.machine.cores:
                if core.core_id in walkers:
                    continue
                for level in (core.tlb.l1, core.tlb.l2):
                    for tlb_set in level._sets:
                        for vpn in tlb_set:
                            if region.contains(vpn << PAGE_SHIFT):
                                out.append(
                                    f"core {core.core_id} caches vpn "
                                    f"{vpn:#x} of pid {pid}'s region but "
                                    f"is not in walker_cores {walkers}"
                                )
        return out


class CacheWritebackLedger(Invariant):
    """Cache geometry and the DRAM writeback ledger: no set overflows
    its ways, dirty bits are booleans, and line/byte DRAM counters stay
    paired (every recorded line moved exactly LINE_SIZE bytes, bulk
    traffic included) and non-negative."""

    name = "cache-writeback-ledger"
    description = "cache dirty/valid bits vs. DRAM writeback ledger"

    def check(self, ctx: AuditContext) -> List[str]:
        out: List[str] = []
        for core in ctx.machine.cores:
            caches = core.caches
            for label, cache in (
                ("l1d", caches.l1d),
                ("l2", caches.l2),
                ("llc", caches.llc),
            ):
                for index, cache_set in enumerate(cache._sets):
                    if len(cache_set) > cache._ways:
                        out.append(
                            f"core {core.core_id} {label} set {index} "
                            f"holds {len(cache_set)} lines "
                            f"(ways {cache._ways})"
                        )
                    for line, dirty in cache_set.items():
                        if not isinstance(dirty, bool):
                            out.append(
                                f"core {core.core_id} {label} line "
                                f"{line:#x} has non-boolean dirty bit "
                                f"{dirty!r}"
                            )
                            break
        stats = ctx.machine.stats
        for direction in ("read", "write"):
            lines = stats[f"dram.{direction}_lines"]
            nbytes = stats[f"dram.{direction}_bytes"]
            if lines < 0 or nbytes < 0:
                out.append(
                    f"negative DRAM {direction} ledger: lines={lines} "
                    f"bytes={nbytes}"
                )
            if abs(nbytes - lines * LINE_SIZE) > 1e-6:
                out.append(
                    f"DRAM {direction} ledger unpaired: {lines} lines "
                    f"vs {nbytes} bytes (expected "
                    f"{lines * LINE_SIZE})"
                )
        return out


#: The default rule catalogue, in check order.
DEFAULT_RULES = (
    ArenaListMembership,
    BypassCounterRange,
    HotAacBacking,
    PoolBalance,
    ShootdownCoverage,
    CacheWritebackLedger,
)


class Auditor:
    """Evaluates a rule set at a configurable epoch.

    ``epoch``:

    * ``"event"``    — after every replay event (exhaustive; slow);
    * ``"interval"`` — after every ``every`` events;
    * ``"run"``      — once, after replay completes (the default; this
      is also always checked for the other epochs).
    """

    def __init__(
        self,
        epoch: str = "run",
        every: int = 256,
        rules: Optional[Iterable] = None,
        max_violations: int = 100,
    ) -> None:
        if epoch not in EPOCHS:
            raise ValueError(
                f"epoch must be one of {EPOCHS}, got {epoch!r}"
            )
        self.epoch = epoch
        self.every = max(1, int(every))
        self.rules: List[Invariant] = [
            rule() if isinstance(rule, type) else rule
            for rule in (rules if rules is not None else DEFAULT_RULES)
        ]
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.total_violations = 0
        self.checks = 0

    @property
    def steps_events(self) -> bool:
        """Whether the replay must dispatch per-event (non-run epochs)."""
        return self.epoch != "run"

    def should_check(self, event_index: int) -> bool:
        if self.epoch == "event":
            return True
        if self.epoch == "interval":
            return (event_index + 1) % self.every == 0
        return False

    def check(
        self, ctx: AuditContext, event_index: Optional[int] = None
    ) -> int:
        """Run every rule; returns the number of new violations."""
        self.checks += 1
        new = 0
        for rule in self.rules:
            try:
                messages = rule.check(ctx)
            except Exception as exc:  # rule crash is itself a finding
                messages = [f"rule crashed: {exc!r}"]
            for message in messages:
                new += 1
                if len(self.violations) < self.max_violations:
                    self.violations.append(
                        Violation(rule.name, message, event_index)
                    )
        self.total_violations += new
        return new

    def clear(self) -> None:
        self.violations.clear()
        self.total_violations = 0
        self.checks = 0

    def summary(self) -> Dict[str, Any]:
        """Ledger/RunResult payload: compact, JSON-round-trippable."""
        return {
            "epoch": self.epoch,
            "every": self.every if self.epoch == "interval" else None,
            "checks": self.checks,
            "violations": self.total_violations,
            "rules": [rule.name for rule in self.rules],
            "findings": [v.to_dict() for v in self.violations],
        }


#: The installed auditor. None (the default) keeps every replay path
#: byte-identical to an audit-free build.
AUDIT: Optional[Auditor] = None


def get_audit() -> Optional[Auditor]:
    """The currently installed auditor, if any."""
    return AUDIT


def install_audit(auditor: Optional[Auditor]) -> Optional[Auditor]:
    """Install ``auditor`` as the process-wide audit hook.

    Returns the previously installed auditor so callers can restore it
    (the ``install_ring``/``install_profile`` contract). Systems capture
    the hook at construction, so install before building the stack.
    """
    global AUDIT
    previous = AUDIT
    AUDIT = auditor
    return previous
