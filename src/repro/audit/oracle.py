"""Differential oracle (audit subsystem, part b).

The replay hot paths — ``CacheHierarchy.access_line``/``instantiate`` and
the harness touch kernel — are closure factories with every probe, fill,
and counter inlined (PR 3). This module runs them lockstep against a
*deliberately naive* reference: the same semantics composed from the slow,
obviously-correct per-level methods (``Cache.lookup``/``Cache.insert``,
``Dram.record_*``, ``BypassEngine.access``, per-line ``_translate``). Any
state or counter the two disagree on is a divergence, reported with the
first divergent event and a minimized event prefix that still reproduces
it.

The reference rides a :class:`BypassSoundnessMonitor`: it remembers which
live objects wrote which virtual lines and flags any bypass (LLC
zero-instantiation) of a line a live object's data still occupies — the
paper's §3.3 safety argument, checked empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import stacks as stack_registry
from repro.audit.invariants import AuditContext, Auditor, Violation
from repro.harness import vector_kernel
from repro.harness.system import SimulatedSystem
from repro.resolve import resolve_stack
from repro.sim.machine import Machine
from repro.sim.params import PAGE_SHIFT, PAGE_SIZE
from repro.workloads.synth import WorkloadSpec, generate_trace
from repro.workloads.trace import Alloc, Compute, Free, Touch, Trace

_PAGE_MASK = PAGE_SIZE - 1

#: Stats probed after every lockstep event. Each is a key into the
#: machine's Stats; ``core.cycles`` is read off the core directly.
_PROBE_KEYS = (
    "l1d.hits",
    "l1d.misses",
    "l2.hits",
    "l2.misses",
    "llc.hits",
    "llc.misses",
    "llc.evictions",
    "llc.dirty_evictions",
    "dram.read_lines",
    "dram.write_lines",
    "tlb_l1.hits",
    "tlb_l1.misses",
    "hierarchy.bypass_fills",
)
_PROBE_KEYS_MEMENTO = _PROBE_KEYS + (
    "memento.bypass.bypassed_lines",
    "memento.bypass.regular_lines",
    "memento.bypass.counter_decrements",
)


# -- naive reference closures ---------------------------------------------------


def _reference_access_line(caches) -> Callable:
    """``access_line`` recomposed from the per-level methods.

    Counter-for-counter equivalent to the inlined closure: probes walk
    L1 -> L2 -> LLC -> DRAM; fills cascade back up; an inner level's dirty
    victim is installed one level out with its own victim dropped (the
    insert return value is discarded, exactly as the fast path drops it).
    """
    l1d, l2, llc = caches.l1d, caches.l2, caches.llc
    dram = caches.dram
    on_writeback = caches.on_writeback
    r_l1, r_l2, r_llc, r_dram = (
        caches._r_l1,
        caches._r_l2,
        caches._r_llc,
        caches._r_dram,
    )

    def access_line(line, write=False):
        if l1d.lookup(line, write):
            return r_l1
        if l2.lookup(line, False):
            result = r_l2
        else:
            if llc.lookup(line, False):
                result = r_llc
            else:
                dram.record_read_line()
                victim = llc.insert(line, False)
                if victim is not None and victim[1]:
                    dram.record_write_line()
                    on_writeback()
                result = r_dram
            victim = l2.insert(line, False)
            if victim is not None and victim[1]:
                llc.insert(victim[0], True)  # victim's victim dropped
        victim = l1d.insert(line, write)
        if victim is not None and victim[1]:
            l2.insert(victim[0], True)  # victim's victim dropped
        return result

    return access_line


def _reference_instantiate(caches) -> Callable:
    """``instantiate`` (the §3.3 bypass fill) from the per-level methods:
    create the line dirty in the LLC without DRAM, promote inward clean
    (L2) and with the access's write bit (L1)."""
    l1d, l2, llc = caches.l1d, caches.l2, caches.llc
    dram = caches.dram
    on_writeback = caches.on_writeback
    bypass_fills = caches._bypass_fills
    r_bypass = caches._r_bypass
    line_shift = 6

    def instantiate(addr, write=True):
        line = addr >> line_shift
        bypass_fills.pending += 1
        victim = llc.insert(line, True)
        if victim is not None and victim[1]:
            dram.record_write_line()
            on_writeback()
        victim = l2.insert(line, False)
        if victim is not None and victim[1]:
            llc.insert(victim[0], True)  # victim's victim dropped
        victim = l1d.insert(line, write)
        if victim is not None and victim[1]:
            l2.insert(victim[0], True)  # victim's victim dropped
        return r_bypass

    return instantiate


class BypassSoundnessMonitor:
    """Watches the reference replay for bypasses that would zero live data.

    Tracks, per live object, the virtual lines it has written, and per
    line a refcount of live writers. A bypassed access zero-instantiates
    its line in the LLC — if any live object's written data occupies that
    line, the program would observe corruption (§3.3's safety argument).
    """

    def __init__(self) -> None:
        self._written: Dict[int, set] = {}  # obj -> written vlines
        self._live: Dict[int, int] = {}  # vline -> live-writer refcount
        self.violations: List[str] = []

    def observe(
        self, obj: int, vaddr: int, write: bool, bypassed: bool
    ) -> None:
        vline = vaddr >> 6
        if bypassed and self._live.get(vline):
            self.violations.append(
                f"object {obj} bypassed line {vline:#x} while "
                f"{self._live[vline]} live object(s) hold written data "
                f"on it"
            )
        if write:
            lines = self._written.get(obj)
            if lines is None:
                lines = self._written[obj] = set()
            if vline not in lines:
                lines.add(vline)
                self._live[vline] = self._live.get(vline, 0) + 1

    def on_free(self, obj: int) -> None:
        for vline in self._written.pop(obj, ()):
            count = self._live[vline] - 1
            if count:
                self._live[vline] = count
            else:
                del self._live[vline]


def _reference_touch_lines(
    system: SimulatedSystem, monitor: Optional[BypassSoundnessMonitor]
) -> Callable:
    """The naive touch kernel: one full TLB lookup and one full hierarchy
    access per line — no same-page skip, no L1 peeks, no inlining. On the
    Memento stack the bypass decision goes through the real
    ``BypassEngine.access`` method (whose ``caches.access``/``instantiate``
    calls dispatch to the naive closures installed above)."""
    core = system.core
    caches = core.caches
    addr_of = system._addr_of
    translate = system._translate
    touch_cycles = system._touch_cycles
    header_of = system._header_of
    bypass = system.runtime.context.bypass if system.memento else None
    bypassed_cell = bypass._bypassed_lines if bypass is not None else None

    def touch_lines(obj, lines, line_offset, write):
        base = addr_of[obj] + line_offset * 64
        total = 0
        for vaddr in range(base, base + lines * 64, 64):
            pfn = translate(vaddr)
            cache_addr = (pfn << PAGE_SHIFT) | (vaddr & _PAGE_MASK)
            header = header_of(vaddr) if header_of is not None else None
            if header is not None:
                before = bypassed_cell.get()
                result = bypass.access(
                    core, header, vaddr, write, cache_addr
                )
                if monitor is not None:
                    monitor.observe(
                        obj, vaddr, write, bypassed_cell.get() != before
                    )
                total += result.cycles
            else:
                total += caches.access(cache_addr, write).cycles
        core.cycles += total
        touch_cycles.pending += total

    return touch_lines


def build_reference_system(
    spec: WorkloadSpec,
    stack: Any = False,
    monitor: Optional[BypassSoundnessMonitor] = None,
    **kwargs: Any,
) -> SimulatedSystem:
    """A :class:`SimulatedSystem` whose cache and touch paths are the
    naive reference implementations.

    ``stack`` accepts any spelling ``SimulatedSystem`` does: a registry
    name, a :class:`~repro.stacks.Stack`, or the legacy boolean.

    The cache closures are swapped on a pre-built machine *before* system
    construction: the allocator metadata-touch closure captures
    ``caches.access_line`` at construction time, so a post-hoc swap would
    leave the metadata path running the fast closure.
    """
    machine = Machine(
        kwargs.pop("machine_params", None), kwargs.pop("cost_model", None)
    )
    caches = machine.core.caches
    caches.access_line = _reference_access_line(caches)
    caches.instantiate = _reference_instantiate(caches)
    system = SimulatedSystem(spec, stack, machine=machine, **kwargs)
    system._touch_lines = _reference_touch_lines(system, monitor)
    return system


# -- lockstep execution ---------------------------------------------------------


@dataclass
class Divergence:
    """First point where fast and reference disagree."""

    event_index: int
    kind: str  # "counter" | "alloc_addr" | "exception" | "columnar"
    key: str
    fast: Any
    reference: Any

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event_index": self.event_index,
            "kind": self.kind,
            "key": self.key,
            "fast": self.fast,
            "reference": self.reference,
        }

    def __str__(self) -> str:
        return (
            f"event {self.event_index}: {self.kind} {self.key!r} "
            f"fast={self.fast} reference={self.reference}"
        )


def _probe(system: SimulatedSystem, keys) -> Dict[str, float]:
    stats = system.machine.stats
    values = {key: stats[key] for key in keys}
    values["core.cycles"] = system.core.cycles
    return values


def _step_event(system: SimulatedSystem, event) -> Optional[int]:
    """Apply one trace event to ``system`` exactly as ``_replay_events``
    would; returns the allocated address for Alloc events."""
    kind = type(event)
    if kind is Touch:
        system._touch_lines(
            event.obj, event.lines, event.line_offset, event.write
        )
    elif kind is Compute:
        system.core.charge(event.cycles, "app")
        if event.dram_bytes:
            system.machine.dram.record_bulk_bytes(event.dram_bytes)
    elif kind is Alloc:
        addr = system._malloc(event.size)
        system._addr_of[event.obj] = addr
        system._size_of[event.obj] = event.size
        return addr
    elif kind is Free:
        system._free(system._addr_of.pop(event.obj))
        del system._size_of[event.obj]
    return None


def run_lockstep(
    events,
    spec: WorkloadSpec,
    stack: Any = False,
    monitor: Optional[BypassSoundnessMonitor] = None,
    check_every: int = 1,
) -> Tuple[Optional[Divergence], Optional[SimulatedSystem]]:
    """Drive ``events`` through a fast and a reference system in lockstep.

    Returns ``(divergence, fast_system)``; the divergence is None when
    every probe matched. The fast system comes back with its replay state
    intact (no teardown) so the caller can run invariant checks over it.

    Neither system runs the stack's begin-run/exit hooks: lockstep
    replays bare events, and the hooks charge the same cycles to both
    sides anyway, so skipping them on both keeps the probe surface
    identical for every registered stack.
    """
    entry = stack_registry.get_stack(resolve_stack(stack))
    fast = SimulatedSystem(spec, entry)
    reference = build_reference_system(spec, entry, monitor=monitor)
    keys = _PROBE_KEYS_MEMENTO if entry.hardware else _PROBE_KEYS
    check_every = max(1, check_every)
    for index, event in enumerate(events):
        try:
            fast_addr = _step_event(fast, event)
        except Exception as exc:
            return (
                Divergence(index, "exception", "fast", repr(exc), None),
                fast,
            )
        try:
            ref_addr = _step_event(reference, event)
        except Exception as exc:
            return (
                Divergence(index, "exception", "reference", None, repr(exc)),
                fast,
            )
        if monitor is not None and type(event) is Free:
            monitor.on_free(event.obj)
        if fast_addr != ref_addr:
            return (
                Divergence(
                    index, "alloc_addr", "malloc", fast_addr, ref_addr
                ),
                fast,
            )
        if (index + 1) % check_every == 0:
            fast_values = _probe(fast, keys)
            ref_values = _probe(reference, keys)
            for key, fast_value in fast_values.items():
                if fast_value != ref_values[key]:
                    return (
                        Divergence(
                            index,
                            "counter",
                            key,
                            fast_value,
                            ref_values[key],
                        ),
                        fast,
                    )
    return None, fast


# -- prefix minimization ---------------------------------------------------------


def _diverges(events, spec: WorkloadSpec, stack: Any) -> bool:
    try:
        divergence, _system = run_lockstep(events, spec, stack)
    except Exception:
        return False  # a crashing candidate is not a reproduction
    return divergence is not None


def minimize_prefix(
    events: List,
    spec: WorkloadSpec,
    stack: Any = False,
    max_runs: int = 60,
) -> List:
    """Greedy event-prefix minimization.

    Starting from the prefix ending at the divergent event, repeatedly
    try dropping every event of one object (Alloc/Touch/Free travel
    together so the address map stays consistent) and, once, every
    Compute event; keep any removal that still reproduces a divergence.
    Bounded by ``max_runs`` lockstep re-executions.
    """
    current = list(events)
    runs = 0
    objects = []
    seen = set()
    for event in current:
        obj = getattr(event, "obj", None)
        if obj is not None and obj not in seen:
            seen.add(obj)
            objects.append(obj)
    # The divergent event's own object must survive the minimization.
    last_obj = getattr(current[-1], "obj", None)
    for obj in objects:
        if obj == last_obj or runs >= max_runs:
            continue
        candidate = [
            e for e in current if getattr(e, "obj", None) != obj
        ]
        runs += 1
        if candidate and _diverges(candidate, spec, stack):
            current = candidate
    if runs < max_runs and type(current[-1]) is not Compute:
        candidate = [e for e in current if type(e) is not Compute]
        runs += 1
        if candidate and _diverges(candidate, spec, stack):
            current = candidate
    return current


# -- the full differential run ----------------------------------------------------


@dataclass
class DiffReport:
    """Everything one ``repro audit --diff`` leg produced."""

    workload: str
    stack: str
    events: int
    divergence: Optional[Divergence] = None
    minimized_events: Optional[int] = None
    minimized_divergence: Optional[Divergence] = None
    soundness: List[str] = field(default_factory=list)
    invariant_findings: List[Violation] = field(default_factory=list)
    columnar_mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.divergence is None
            and not self.soundness
            and not self.invariant_findings
            and not self.columnar_mismatches
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "stack": self.stack,
            "events": self.events,
            "ok": self.ok,
            "divergence": (
                self.divergence.to_dict() if self.divergence else None
            ),
            "minimized_events": self.minimized_events,
            "minimized_divergence": (
                self.minimized_divergence.to_dict()
                if self.minimized_divergence
                else None
            ),
            "soundness": list(self.soundness),
            "invariant_findings": [
                v.to_dict() for v in self.invariant_findings
            ],
            "columnar_mismatches": list(self.columnar_mismatches),
        }


def _compare_columnar(
    trace: Trace, spec: WorkloadSpec, stack: Any
) -> List[str]:
    """Replay the same trace through the event path, the scalar packed
    columnar path, and (when numpy is installed) the vectorized kernel,
    on fresh fast systems; the final stats must be bit-identical (the
    columnar form and the kernel are encodings, not models)."""
    stepped = SimulatedSystem(spec, stack)
    # The packed legs go through run(), which fires the stack's
    # begin-run hook (e.g. snapshot's restore charge); the stepped leg
    # drives the internals by hand and must fire it too, or the totals
    # diverge on any stack with a nonzero begin-run cost.
    stepped.stack.begin_run(stepped)
    allocs, frees = stepped._replay_events(trace)
    if trace.category == "function":
        stepped._function_exit()
    stepped_result = stepped._collect(trace, allocs, frees)

    legs = [
        ("columnar", SimulatedSystem(spec, stack, replay_kernel="scalar"))
    ]
    if vector_kernel.numpy_available():
        legs.append(
            (
                "vectorized",
                SimulatedSystem(
                    spec, stack, replay_kernel="vectorized"
                ),
            )
        )

    mismatches: List[str] = []
    stepped_stats = stepped_result.stats
    for label, system in legs:
        packed_result = system.run(trace)
        packed_stats = packed_result.stats
        for key in sorted(set(stepped_stats) | set(packed_stats)):
            a = stepped_stats.get(key, 0)
            b = packed_stats.get(key, 0)
            if a != b:
                mismatches.append(
                    f"stats[{key!r}]: events={a} {label}={b}"
                )
                if len(mismatches) >= 20:
                    mismatches.append("... (truncated)")
                    return mismatches
        if stepped_result.total_cycles != packed_result.total_cycles:
            mismatches.append(
                f"total_cycles: events={stepped_result.total_cycles} "
                f"{label}={packed_result.total_cycles}"
            )
    return mismatches


def run_diff(
    spec: WorkloadSpec,
    stack: Any = False,
    num_allocs: Optional[int] = None,
    check_every: int = 1,
    minimize: bool = True,
    max_minimize_runs: int = 60,
) -> DiffReport:
    """The full differential audit of one workload x stack.

    ``stack`` accepts a registry name, a Stack, or the legacy boolean.

    1. Lockstep the fast closures against the naive reference, probing
       the counter surface every ``check_every`` events, with the bypass
       soundness monitor riding the reference.
    2. Run the per-run invariant rules over the fast system's final
       (pre-teardown) state.
    3. When lockstep is clean, cross-check the columnar replay against
       the event replay on fresh systems.
    4. On divergence, greedily minimize the reproducing event prefix.
    """
    spec = spec.resolved()
    if num_allocs is not None:
        spec = replace(spec, num_allocs=num_allocs)
    entry = stack_registry.get_stack(resolve_stack(stack))
    trace = generate_trace(spec)
    events = list(trace.events)
    monitor = BypassSoundnessMonitor() if entry.hardware else None
    report = DiffReport(
        workload=spec.name,
        stack=entry.name,
        events=len(events),
    )
    divergence, fast = run_lockstep(
        events, spec, entry, monitor=monitor, check_every=check_every
    )
    report.divergence = divergence
    if monitor is not None:
        report.soundness = list(monitor.violations)
    if fast is not None:
        auditor = Auditor(epoch="run")
        auditor.check(AuditContext.from_system(fast))
        report.invariant_findings = list(auditor.violations)
    if divergence is not None:
        if minimize:
            prefix = events[: divergence.event_index + 1]
            minimized = minimize_prefix(
                prefix, spec, entry, max_runs=max_minimize_runs
            )
            report.minimized_events = len(minimized)
            report.minimized_divergence, _ = run_lockstep(
                minimized, spec, entry
            )
        return report
    report.columnar_mismatches = _compare_columnar(trace, spec, entry)
    return report
