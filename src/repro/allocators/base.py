"""Shared allocator machinery: size classes, records, the base interface.

Every software allocator operates on a :class:`~repro.kernel.process.Process`
through the kernel's syscalls, and charges userspace cycles against the
running core under the ``user_alloc`` / ``user_free`` categories that feed
the Fig. 9 breakdown.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.obs import profile as obs_profile
from repro.sim.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.machine import Core

#: Allocations at or below this go through the small-object machinery;
#: larger requests fall through to the large path (paper §4).
SMALL_THRESHOLD = 512

#: Callback the harness injects so allocator metadata writes become real
#: memory accesses: ``touch(core, vaddr, write, category)``.
TouchFn = Callable[["Core", int, bool, str], None]


class AllocationError(MemoryError):
    """The allocator could not satisfy a request."""


class DoubleFreeError(ValueError):
    """An address was freed twice, or was never allocated."""


def align8(size: int) -> int:
    """Round a request up to the nearest 8-byte boundary (§2.1 step 1)."""
    if size <= 0:
        raise ValueError("allocation size must be positive")
    return (size + 7) & ~7


def size_class_index(size: int) -> int:
    """0-based size-class index for a small request (64 classes of 8 B)."""
    aligned = align8(size)
    if aligned > SMALL_THRESHOLD:
        raise ValueError(f"{size} exceeds the small-object threshold")
    return aligned // 8 - 1


@dataclass(slots=True)
class Allocation:
    """Bookkeeping for one live allocation."""

    addr: int
    size: int
    size_class: int  # -1 for large allocations


class SoftwareAllocator(abc.ABC):
    """Base class for the userspace allocator models.

    Subclasses implement ``_malloc_small`` / ``_free_small``; the base class
    handles request routing (small vs. large), the live-allocation registry,
    and double-free detection.
    """

    #: Language runtime whose cost table applies (key into CostModel.user).
    language: str = "cpp"
    name: str = "base"

    def __init__(
        self,
        kernel: "Kernel",
        process: "Process",
        touch: Optional[TouchFn] = None,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.machine = kernel.machine
        self.costs = kernel.machine.costs.user(self.language)
        #: MAP_POPULATE sensitivity (§6.6): force eager physical backing
        #: on every mmap this allocator issues.
        self.mmap_populate = False
        #: Warm-started container: heap pages this allocator maps were
        #: already faulted by earlier invocations, so backing them is
        #: unmetered (C++ functions against a retained jemalloc heap).
        self.warm = False
        #: Optional ``(core, pages)`` hook charged per warm-prefaulted
        #: mmap. ``None`` (baseline/memento) keeps warm backing unmetered;
        #: the snapshot stack installs its per-page restore latency here.
        self.warm_charge = None
        self.touch = touch or (lambda core, addr, write, cat: None)
        # Pre-specialized header-touch callbacks for the malloc/free fast
        # paths (category and write flag folded in). The harness attaches
        # them to its touch closure; plain callables fall back to a shim.
        self.touch_alloc = getattr(touch, "alloc", None) or (
            lambda core, addr: self.touch(core, addr, True, "user_alloc")
        )
        self.touch_free = getattr(touch, "free", None) or (
            lambda core, addr: self.touch(core, addr, True, "user_free")
        )
        self.stats = kernel.machine.stats.scoped(f"alloc.{self.name}")
        # Interned per-operation cells (one bump per malloc/free).
        self._allocs = self.stats.counter("allocs")
        self._frees = self.stats.counter("frees")
        self._alloc_fast = self.stats.counter("alloc_fast")
        self._alloc_slow = self.stats.counter("alloc_slow")
        self._free_fast = self.stats.counter("free_fast")
        self._free_slow = self.stats.counter("free_slow")
        # Cycle cells for the two userspace charge categories (same store
        # Core.charge would hit; bound here to skip the dispatch).
        machine_stats = kernel.machine.stats
        self._ua_cycles = machine_stats.counter("cycles.user_alloc")
        self._uf_cycles = machine_stats.counter("cycles.user_free")
        # Fast-path cycle constants, hoisted so subclasses can charge
        # inline (same arithmetic _charge_alloc/_charge_free perform).
        # The inline form is only valid when the charge hooks are not
        # overridden (Mallacc overrides them to model its malloc cache).
        self._c_alloc_fast = self.costs.alloc_fast
        self._c_free_fast = self.costs.free_fast
        self._plain_charges = (
            type(self)._charge_alloc is SoftwareAllocator._charge_alloc
            and type(self)._charge_free is SoftwareAllocator._charge_free
        )
        # Cycle-attribution cells for the charge hooks (obs/profile.py).
        # The fast paths the subclasses inline into replay closures bypass
        # these hooks on purpose; their cycles surface as the
        # user_alloc/user_free category residual, which the profiler folds
        # into swalloc.alloc_fast/swalloc.free_fast at reconciliation.
        profile = obs_profile.PROFILE
        if profile is None:
            self._p_alloc_fast = None
            self._p_alloc_slow = None
            self._p_free_fast = None
            self._p_free_slow = None
            self._h_alloc = None
            self._h_free = None
        else:
            self._p_alloc_fast = profile.cell("swalloc.alloc_fast")
            self._p_alloc_slow = profile.cell("swalloc.alloc_slow")
            self._p_free_fast = profile.cell("swalloc.free_fast")
            self._p_free_slow = profile.cell("swalloc.free_slow")
            self._h_alloc = profile.hist("op.alloc")
            self._h_free = profile.hist("op.free")
        self.live: Dict[int, Allocation] = {}
        from repro.allocators.glibc_large import LargeAllocator

        self.large = (
            self
            if isinstance(self, LargeAllocator)
            else LargeAllocator(kernel, process, touch)
        )

    # -- public interface ---------------------------------------------------

    def malloc(self, core: "Core", size: int) -> int:
        """Allocate ``size`` bytes; returns the (virtual) address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if (size + 7) & ~7 > SMALL_THRESHOLD and self.large is not self:
            addr = self.large.malloc(core, size)
            self.live[addr] = Allocation(addr, size, -1)
            return addr
        allocation = self._malloc_small(core, size)
        self.live[allocation.addr] = allocation
        self._allocs.pending += 1
        return allocation.addr

    def free(self, core: "Core", addr: int) -> None:
        """Free a previously allocated address."""
        allocation = self.live.pop(addr, None)
        if allocation is None:
            raise DoubleFreeError(f"{addr:#x} is not a live allocation")
        if allocation.size_class < 0 and self.large is not self:
            self.large.free(core, addr)
            return
        self._free_small(core, allocation)
        self._frees.pending += 1

    def _bind_fast_paths(self) -> None:
        """Shadow ``malloc``/``free`` with closures over the routing state.

        Called by a subclass at the end of its ``__init__`` (after any
        small-path closures are in place) so the public entry points skip
        method dispatch and the ``self`` attribute loads. The closures
        are behaviorally identical to the methods above.
        """
        malloc_small = self._malloc_small
        free_small = self._free_small
        live = self.live
        large = self.large
        allocs = self._allocs
        frees = self._frees
        route_large = large is not self

        def malloc(core, size):
            if size <= 0:
                raise ValueError("allocation size must be positive")
            if (size + 7) & ~7 > SMALL_THRESHOLD and route_large:
                addr = large.malloc(core, size)
                live[addr] = Allocation(addr, size, -1)
                return addr
            allocation = malloc_small(core, size)
            live[allocation.addr] = allocation
            allocs.pending += 1
            return allocation.addr

        def free(core, addr):
            allocation = live.pop(addr, None)
            if allocation is None:
                raise DoubleFreeError(f"{addr:#x} is not a live allocation")
            if allocation.size_class < 0 and route_large:
                large.free(core, addr)
                return
            free_small(core, allocation)
            frees.pending += 1

        self.malloc = malloc
        self.free = free

    def teardown(self, core: "Core") -> None:
        """Release everything at process exit (batch free by the OS).

        The default drops the registry; address-space teardown itself is
        performed by :meth:`Kernel.exit_process`.
        """
        self.live.clear()

    @property
    def live_bytes(self) -> int:
        return sum(a.size for a in self.live.values())

    # -- subclass hooks -------------------------------------------------------

    @abc.abstractmethod
    def _malloc_small(self, core: "Core", size: int) -> Allocation:
        """Allocate a small object; charge cycles; return the record."""

    @abc.abstractmethod
    def _free_small(self, core: "Core", allocation: Allocation) -> None:
        """Free a small object; charge cycles."""

    # -- shared helpers -------------------------------------------------------

    def _mmap(self, core: "Core", length: int, populate: bool = False) -> int:
        """Request memory from the kernel (§2.1 step 4)."""
        self.stats.add("mmaps")
        base = self.kernel.syscalls.mmap(
            core, self.process, length, populate or self.mmap_populate
        )
        if self.warm:
            pages = pages_for(length)
            for page in range(pages):
                self.kernel.prefault_warm(self.process, base + page * PAGE_SIZE)
            if self.warm_charge is not None:
                self.warm_charge(core, pages)
        return base

    def _munmap(self, core: "Core", addr: int) -> None:
        self.stats.add("munmaps")
        self.kernel.syscalls.munmap(core, self.process, addr)

    def _charge_alloc(self, core: "Core", cycles: int, fast: bool) -> None:
        core.cycles += cycles
        self._ua_cycles.pending += cycles
        (self._alloc_fast if fast else self._alloc_slow).pending += 1
        if self._p_alloc_fast is not None:
            (self._p_alloc_fast if fast else self._p_alloc_slow).add(cycles)
            self._h_alloc.record(cycles)
        if not fast:
            # Slow paths run cold allocator code and walk metadata that
            # rarely stays cached across their long reuse distance.
            self.machine.dram.record_bulk_bytes(384, write=False)

    def _charge_free(self, core: "Core", cycles: int, fast: bool) -> None:
        core.cycles += cycles
        self._uf_cycles.pending += cycles
        (self._free_fast if fast else self._free_slow).pending += 1
        if self._p_free_fast is not None:
            (self._p_free_fast if fast else self._p_free_slow).add(cycles)
            self._h_free.record(cycles)
        if not fast:
            self.machine.dram.record_bulk_bytes(256, write=False)


def pages_for(nbytes: int) -> int:
    """Number of whole pages covering ``nbytes``."""
    return -(-nbytes // PAGE_SIZE)
