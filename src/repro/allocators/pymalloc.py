"""Behavioral model of CPython's pymalloc (§2.1).

The allocator requests memory from the OS in 256 KB arenas, splits them
into 4 KB pools, and serves each pool to a single 8-byte size class with an
intra-pool free list. Frees return objects to their pool; entirely-free
pools go back to the free-pool list; entirely-free arenas are munmapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.allocators.base import (
    Allocation,
    AllocationError,
    SoftwareAllocator,
    align8,
    size_class_index,
)
from repro.sim.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core

ARENA_BYTES = 256 * 1024
POOL_BYTES = PAGE_SIZE  # 4 KB pools


@dataclass
class Pool:
    """One 4 KB pool serving a single size class."""

    base: int
    arena_base: int
    size_class: int = -1  # -1 while on the free-pool list
    capacity: int = 0
    free_offsets: List[int] = field(default_factory=list)
    allocated: Set[int] = field(default_factory=set)

    def assign(self, size_class: int) -> None:
        """Dedicate this pool to ``size_class`` and build its free list."""
        object_size = (size_class + 1) * 8
        self.size_class = size_class
        self.capacity = POOL_BYTES // object_size
        self.free_offsets = [
            index * object_size
            for index in range(self.capacity - 1, -1, -1)
        ]
        self.allocated = set()

    @property
    def is_full(self) -> bool:
        return not self.free_offsets

    @property
    def is_empty(self) -> bool:
        return not self.allocated


@dataclass
class Arena:
    """One 256 KB mmap'd arena carved into pools."""

    base: int
    pools: List[Pool] = field(default_factory=list)
    free_pools: List[Pool] = field(default_factory=list)

    @property
    def free_pool_count(self) -> int:
        return len(self.free_pools)

    @property
    def fully_free(self) -> bool:
        return self.free_pool_count == len(self.pools)


class PymallocAllocator(SoftwareAllocator):
    """CPython 3.8-style small-object allocator."""

    language = "python"
    name = "pymalloc"

    def __init__(
        self, kernel, process, touch=None, arena_bytes: int = ARENA_BYTES
    ) -> None:
        super().__init__(kernel, process, touch)
        self.arena_bytes = arena_bytes
        self.arenas: Dict[int, Arena] = {}
        # usedpools: size class -> pools with at least one free object.
        self.used_pools: Dict[int, List[Pool]] = {}
        self._pool_of: Dict[int, Pool] = {}  # pool base -> Pool

    # -- allocation (Fig. 1 steps 1-4) --------------------------------------

    def _malloc_small(self, core: "Core", size: int) -> Allocation:
        size_class = size_class_index(size)
        pool = self._usable_pool(core, size_class)
        offset = pool.free_offsets.pop()
        pool.allocated.add(offset)
        addr = pool.base + offset
        if pool.is_full:
            # Step off the usedpools list; it returns on the next free.
            self.used_pools[size_class].remove(pool)
        self._charge_alloc(core, self.costs.alloc_fast, fast=True)
        # Free-list head update touches the pool header line.
        self.touch(core, pool.base, True, "user_alloc")
        return Allocation(addr, size, size_class)

    def _usable_pool(self, core: "Core", size_class: int) -> Pool:
        """Steps 2-4: used pool → free pool → new arena from mmap.

        Free pools are taken from the most-utilized arena (fewest free
        pools), CPython's usable_arenas policy: it consolidates usage so
        lightly-used arenas can drain empty and be returned to the OS.
        """
        pools = self.used_pools.setdefault(size_class, [])
        if pools:
            return pools[0]
        donor = self._most_utilized_arena()
        if donor is None:
            self._grow_arena(core)
            donor = self._most_utilized_arena()
        pool = donor.free_pools.pop()
        pool.assign(size_class)
        pools.append(pool)
        self._charge_alloc(core, self.costs.alloc_slow, fast=False)
        return pool

    def _most_utilized_arena(self) -> Optional[Arena]:
        """The arena with the fewest (but nonzero) free pools."""
        best = None
        for arena in self.arenas.values():
            if not arena.free_pools:
                continue
            if best is None or arena.free_pool_count < best.free_pool_count:
                best = arena
        return best

    def _grow_arena(self, core: "Core") -> None:
        base = self._mmap(core, self.arena_bytes)
        arena = Arena(base)
        for pool_index in range(self.arena_bytes // POOL_BYTES):
            pool = Pool(base + pool_index * POOL_BYTES, arena_base=base)
            arena.pools.append(pool)
            arena.free_pools.append(pool)
            self._pool_of[pool.base] = pool
        self.arenas[base] = arena
        self.stats.add("arenas_mapped")

    # -- free (Fig. 1 step 5) -------------------------------------------------

    def _free_small(self, core: "Core", allocation: Allocation) -> None:
        pool_base = allocation.addr & ~(POOL_BYTES - 1)
        pool = self._pool_of.get(pool_base)
        if pool is None or pool.size_class != allocation.size_class:
            raise AllocationError(
                f"{allocation.addr:#x} does not belong to a live pool"
            )
        offset = allocation.addr - pool.base
        was_full = pool.is_full
        pool.allocated.remove(offset)
        pool.free_offsets.append(offset)
        self._charge_free(core, self.costs.free_fast, fast=True)
        self.touch(core, pool.base, True, "user_free")
        if was_full:
            self.used_pools[pool.size_class].append(pool)
        if pool.is_empty:
            self._retire_pool(core, pool)

    def _retire_pool(self, core: "Core", pool: Pool) -> None:
        """Return an empty pool to its arena; munmap empty arenas."""
        self.used_pools[pool.size_class].remove(pool)
        pool.size_class = -1
        arena = self.arenas[pool.arena_base]
        arena.free_pools.append(pool)
        self._charge_free(core, self.costs.free_slow, fast=False)
        if arena.fully_free:
            self._release_arena(core, arena)

    def _release_arena(self, core: "Core", arena: Arena) -> None:
        for pool in arena.pools:
            del self._pool_of[pool.base]
        del self.arenas[arena.base]
        self._munmap(core, arena.base)
        self.stats.add("arenas_unmapped")

    # -- introspection ---------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of pool slots currently allocated (fragmentation probe)."""
        capacity = used = 0
        for pool in self._pool_of.values():
            if pool.size_class >= 0:
                capacity += pool.capacity
                used += len(pool.allocated)
        return used / capacity if capacity else 1.0
