"""Behavioral model of CPython's pymalloc (§2.1).

The allocator requests memory from the OS in 256 KB arenas, splits them
into 4 KB pools, and serves each pool to a single 8-byte size class with an
intra-pool free list. Frees return objects to their pool; entirely-free
pools go back to the free-pool list; entirely-free arenas are munmapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.allocators.base import (
    Allocation,
    AllocationError,
    SoftwareAllocator,
    align8,
    size_class_index,
)
from repro.sim.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core

ARENA_BYTES = 256 * 1024
POOL_BYTES = PAGE_SIZE  # 4 KB pools


@dataclass
class Pool:
    """One 4 KB pool serving a single size class."""

    base: int
    arena_base: int
    size_class: int = -1  # -1 while on the free-pool list
    capacity: int = 0
    free_offsets: List[int] = field(default_factory=list)
    allocated: Set[int] = field(default_factory=set)

    def assign(self, size_class: int) -> None:
        """Dedicate this pool to ``size_class`` and build its free list."""
        object_size = (size_class + 1) * 8
        self.size_class = size_class
        self.capacity = POOL_BYTES // object_size
        self.free_offsets = [
            index * object_size
            for index in range(self.capacity - 1, -1, -1)
        ]
        self.allocated = set()

    @property
    def is_full(self) -> bool:
        return not self.free_offsets

    @property
    def is_empty(self) -> bool:
        return not self.allocated


@dataclass
class Arena:
    """One 256 KB mmap'd arena carved into pools."""

    base: int
    pools: List[Pool] = field(default_factory=list)
    free_pools: List[Pool] = field(default_factory=list)

    @property
    def free_pool_count(self) -> int:
        return len(self.free_pools)

    @property
    def fully_free(self) -> bool:
        return self.free_pool_count == len(self.pools)


class PymallocAllocator(SoftwareAllocator):
    """CPython 3.8-style small-object allocator."""

    language = "python"
    name = "pymalloc"

    def __init__(
        self, kernel, process, touch=None, arena_bytes: int = ARENA_BYTES
    ) -> None:
        super().__init__(kernel, process, touch)
        self.arena_bytes = arena_bytes
        self.arenas: Dict[int, Arena] = {}
        # usedpools: size class -> pools with at least one free object.
        self.used_pools: Dict[int, List[Pool]] = {}
        self._pool_of: Dict[int, Pool] = {}  # pool base -> Pool
        # When the charge hooks are the plain ones, shadow the small-path
        # methods with closures over the per-call state (dicts, cells,
        # cost constants) — the methods below stay as the general form.
        if (
            self._plain_charges
            and type(self)._malloc_small is PymallocAllocator._malloc_small
            and type(self)._free_small is PymallocAllocator._free_small
        ):
            self._malloc_small = self._make_malloc_small()
            self._free_small = self._make_free_small()
        self._bind_fast_paths()

    # -- allocation (Fig. 1 steps 1-4) --------------------------------------

    def _malloc_small(self, core: "Core", size: int) -> Allocation:
        aligned = (size + 7) & ~7
        if size <= 0 or aligned > 512:
            size_class_index(size)  # raises with the canonical message
        size_class = aligned // 8 - 1
        # Fast path of _usable_pool, inlined: a used pool already exists.
        pools = self.used_pools.get(size_class)
        if pools:
            pool = pools[0]
        else:
            pool = self._usable_pool(core, size_class)
        offset = pool.free_offsets.pop()
        pool.allocated.add(offset)
        addr = pool.base + offset
        if not pool.free_offsets:
            # Step off the usedpools list; it returns on the next free.
            self.used_pools[size_class].remove(pool)
        if self._plain_charges:
            # Inlined _charge_alloc(core, alloc_fast, fast=True).
            cycles = self._c_alloc_fast
            core.cycles += cycles
            self._ua_cycles.pending += cycles
            self._alloc_fast.pending += 1
        else:
            self._charge_alloc(core, self.costs.alloc_fast, fast=True)
        # Free-list head update touches the pool header line.
        self.touch_alloc(core, pool.base)
        return Allocation(addr, size, size_class)

    def _make_malloc_small(self):
        used_pools = self.used_pools
        usable_pool = self._usable_pool
        c_alloc = self._c_alloc_fast
        ua_cycles = self._ua_cycles
        alloc_fast = self._alloc_fast
        touch_alloc = self.touch_alloc

        def _malloc_small(core, size):
            aligned = (size + 7) & ~7
            if size <= 0 or aligned > 512:
                size_class_index(size)  # raises with the canonical message
            size_class = aligned // 8 - 1
            pools = used_pools.get(size_class)
            if pools:
                pool = pools[0]
            else:
                pool = usable_pool(core, size_class)
            offset = pool.free_offsets.pop()
            pool.allocated.add(offset)
            addr = pool.base + offset
            if not pool.free_offsets:
                used_pools[size_class].remove(pool)
            core.cycles += c_alloc
            ua_cycles.pending += c_alloc
            alloc_fast.pending += 1
            touch_alloc(core, pool.base)
            return Allocation(addr, size, size_class)

        return _malloc_small

    def _make_free_small(self):
        pool_of = self._pool_of
        used_pools = self.used_pools
        retire_pool = self._retire_pool
        c_free = self._c_free_fast
        uf_cycles = self._uf_cycles
        free_fast = self._free_fast
        touch_free = self.touch_free
        pool_mask = ~(POOL_BYTES - 1)

        def _free_small(core, allocation):
            addr = allocation.addr
            pool = pool_of.get(addr & pool_mask)
            if pool is None or pool.size_class != allocation.size_class:
                raise AllocationError(
                    f"{addr:#x} does not belong to a live pool"
                )
            offset = addr - pool.base
            was_full = not pool.free_offsets
            pool.allocated.remove(offset)
            pool.free_offsets.append(offset)
            core.cycles += c_free
            uf_cycles.pending += c_free
            free_fast.pending += 1
            touch_free(core, pool.base)
            if was_full:
                used_pools[pool.size_class].append(pool)
            if not pool.allocated:
                retire_pool(core, pool)

        return _free_small

    def _usable_pool(self, core: "Core", size_class: int) -> Pool:
        """Steps 2-4: used pool → free pool → new arena from mmap.

        Free pools are taken from the most-utilized arena (fewest free
        pools), CPython's usable_arenas policy: it consolidates usage so
        lightly-used arenas can drain empty and be returned to the OS.
        """
        pools = self.used_pools.setdefault(size_class, [])
        if pools:
            return pools[0]
        donor = self._most_utilized_arena()
        if donor is None:
            self._grow_arena(core)
            donor = self._most_utilized_arena()
        pool = donor.free_pools.pop()
        pool.assign(size_class)
        pools.append(pool)
        self._charge_alloc(core, self.costs.alloc_slow, fast=False)
        return pool

    def _most_utilized_arena(self) -> Optional[Arena]:
        """The arena with the fewest (but nonzero) free pools."""
        best = None
        for arena in self.arenas.values():
            if not arena.free_pools:
                continue
            if best is None or arena.free_pool_count < best.free_pool_count:
                best = arena
        return best

    def _grow_arena(self, core: "Core") -> None:
        base = self._mmap(core, self.arena_bytes)
        arena = Arena(base)
        for pool_index in range(self.arena_bytes // POOL_BYTES):
            pool = Pool(base + pool_index * POOL_BYTES, arena_base=base)
            arena.pools.append(pool)
            arena.free_pools.append(pool)
            self._pool_of[pool.base] = pool
        self.arenas[base] = arena
        self.stats.add("arenas_mapped")

    # -- free (Fig. 1 step 5) -------------------------------------------------

    def _free_small(self, core: "Core", allocation: Allocation) -> None:
        pool_base = allocation.addr & ~(POOL_BYTES - 1)
        pool = self._pool_of.get(pool_base)
        if pool is None or pool.size_class != allocation.size_class:
            raise AllocationError(
                f"{allocation.addr:#x} does not belong to a live pool"
            )
        offset = allocation.addr - pool.base
        was_full = not pool.free_offsets
        pool.allocated.remove(offset)
        pool.free_offsets.append(offset)
        if self._plain_charges:
            # Inlined _charge_free(core, free_fast, fast=True).
            cycles = self._c_free_fast
            core.cycles += cycles
            self._uf_cycles.pending += cycles
            self._free_fast.pending += 1
        else:
            self._charge_free(core, self.costs.free_fast, fast=True)
        self.touch_free(core, pool.base)
        if was_full:
            self.used_pools[pool.size_class].append(pool)
        if not pool.allocated:
            self._retire_pool(core, pool)

    def _retire_pool(self, core: "Core", pool: Pool) -> None:
        """Return an empty pool to its arena; munmap empty arenas."""
        self.used_pools[pool.size_class].remove(pool)
        pool.size_class = -1
        arena = self.arenas[pool.arena_base]
        arena.free_pools.append(pool)
        self._charge_free(core, self.costs.free_slow, fast=False)
        if arena.fully_free:
            self._release_arena(core, arena)

    def _release_arena(self, core: "Core", arena: Arena) -> None:
        for pool in arena.pools:
            del self._pool_of[pool.base]
        del self.arenas[arena.base]
        self._munmap(core, arena.base)
        self.stats.add("arenas_unmapped")

    # -- introspection ---------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of pool slots currently allocated (fragmentation probe)."""
        capacity = used = 0
        for pool in self._pool_of.values():
            if pool.size_class >= 0:
                capacity += pool.capacity
                used += len(pool.allocated)
        return used / capacity if capacity else 1.0
