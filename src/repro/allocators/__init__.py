"""Userspace software allocators (the baseline stack).

Behavioral models of the allocators the paper instruments (§5): CPython's
pymalloc, jemalloc for C/C++, the Go runtime allocator with mark-sweep GC,
and the glibc-style large-allocation path. ``mallacc`` models the idealized
Mallacc comparison point of §6.7.
"""

from repro.allocators.base import (
    SMALL_THRESHOLD,
    AllocationError,
    DoubleFreeError,
    SoftwareAllocator,
    align8,
)
from repro.allocators.glibc_large import LargeAllocator
from repro.allocators.goalloc import GoAllocator
from repro.allocators.jemalloc import JemallocAllocator
from repro.allocators.mallacc import MallaccAllocator
from repro.allocators.pymalloc import PymallocAllocator

ALLOCATOR_BY_LANGUAGE = {
    "python": PymallocAllocator,
    "cpp": JemallocAllocator,
    "go": GoAllocator,
}

__all__ = [
    "ALLOCATOR_BY_LANGUAGE",
    "AllocationError",
    "DoubleFreeError",
    "GoAllocator",
    "JemallocAllocator",
    "LargeAllocator",
    "MallaccAllocator",
    "PymallocAllocator",
    "SMALL_THRESHOLD",
    "SoftwareAllocator",
    "align8",
]
