"""Behavioral model of the Go runtime allocator and its mark-sweep GC.

Go serves small objects from 8 KB spans carved out of large heap arenas
reserved with big mmaps (32 MB here; the source of the 8.6x footprint blowup under
MAP_POPULATE, §6.6). There is no explicit free: objects that die become
garbage and are reclaimed by a mark-sweep collection triggered when the
heap doubles (GOGC=100). Within a short-lived function the trigger never
fires, so allocations are batch-freed by the OS at exit — exactly the
long-lived lifetime profile Fig. 3 reports for Golang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set

from repro.allocators.base import (
    Allocation,
    AllocationError,
    SoftwareAllocator,
    size_class_index,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core

SPAN_BYTES = 8 * 1024
HEAP_ARENA_BYTES = 32 * 1024 * 1024

#: GC cycle costs (amortized mark/sweep work per object).
MARK_PER_LIVE_OBJECT = 30
SWEEP_PER_DEAD_OBJECT = 16


class GcPolicy:
    """GOGC-style pacing: collect when the live heap doubles.

    Shared by the baseline Go allocator and the Memento runtime (which
    defers obj-free calls the same way the sweeper defers frees).
    """

    def __init__(
        self, trigger_ratio: float = 2.0, min_heap_bytes: int = 4 << 20
    ) -> None:
        self.trigger_ratio = trigger_ratio
        self.min_heap_bytes = min_heap_bytes
        self._goal = min_heap_bytes
        self.heap_live = 0

    def on_alloc(self, size: int) -> bool:
        """Account an allocation; return True when a GC should run."""
        self.heap_live += size
        return self.heap_live >= self._goal

    def on_dead(self, size: int) -> None:
        """An object became unreachable (it stays on the heap until GC)."""

    def after_gc(self, live_bytes: int) -> None:
        """Re-pace after a collection."""
        self.heap_live = live_bytes
        self._goal = max(
            self.min_heap_bytes, int(live_bytes * self.trigger_ratio)
        )


@dataclass
class Span:
    """One 8 KB span dedicated to a size class."""

    base: int
    size_class: int
    capacity: int
    free_offsets: List[int] = field(default_factory=list)
    allocated: Set[int] = field(default_factory=set)

    @classmethod
    def carve(cls, base: int, size_class: int) -> "Span":
        object_size = (size_class + 1) * 8
        capacity = SPAN_BYTES // object_size
        return cls(
            base=base,
            size_class=size_class,
            capacity=capacity,
            free_offsets=[i * object_size for i in range(capacity - 1, -1, -1)],
        )

    @property
    def is_full(self) -> bool:
        return not self.free_offsets


class GoAllocator(SoftwareAllocator):
    """Go 1.13-style allocator: spans, arenas, deferred mark-sweep frees."""

    language = "go"
    name = "goalloc"

    def __init__(self, kernel, process, touch=None, gc: GcPolicy | None = None) -> None:
        super().__init__(kernel, process, touch)
        self.gc = gc or GcPolicy()
        self._arena_top = 0
        self._arena_end = 0
        self._nonfull_spans: Dict[int, List[Span]] = {}
        self._owner: Dict[int, Span] = {}
        self._garbage: List[Allocation] = []
        self.gc_runs = 0
        self._c_alloc_fast_gc = (
            self.costs.alloc_fast + self.costs.gc_per_object
        )
        # Shadow the small-path methods with closures when the plain
        # charge hooks apply (subclass overrides keep method dispatch).
        if (
            self._plain_charges
            and type(self)._malloc_small is GoAllocator._malloc_small
            and type(self)._free_small is GoAllocator._free_small
        ):
            self._malloc_small = self._make_malloc_small()
            self._free_small = self._make_free_small()
        self._bind_fast_paths()

    def _make_malloc_small(self):
        nonfull_spans = self._nonfull_spans
        owner = self._owner
        new_span = self._new_span
        c_alloc = self._c_alloc_fast_gc
        ua_cycles = self._ua_cycles
        alloc_fast = self._alloc_fast
        touch_alloc = self.touch_alloc
        gc = self.gc
        collect = self.collect

        def _malloc_small(core, size):
            aligned = (size + 7) & ~7
            if size <= 0 or aligned > 512:
                size_class_index(size)  # raises with the canonical message
            size_class = aligned // 8 - 1
            spans = nonfull_spans.get(size_class)
            if spans is None:
                spans = nonfull_spans[size_class] = []
            if not spans:
                spans.append(new_span(core, size_class))
            span = spans[0]
            offset = span.free_offsets.pop()
            span.allocated.add(offset)
            if not span.free_offsets:
                spans.pop(0)
            core.cycles += c_alloc
            ua_cycles.pending += c_alloc
            alloc_fast.pending += 1
            touch_alloc(core, span.base)
            addr = span.base + offset
            owner[addr] = span
            # Inlined gc.on_alloc(object_size).
            gc.heap_live += (size_class + 1) * 8
            if gc.heap_live >= gc._goal:
                collect(core)
            return Allocation(addr, size, size_class)

        return _malloc_small

    def _make_free_small(self):
        owner = self._owner
        garbage = self._garbage
        on_dead = self.gc.on_dead

        def _free_small(core, allocation):
            if allocation.addr not in owner:
                raise AllocationError(
                    f"{allocation.addr:#x} is not a live Go object"
                )
            garbage.append(allocation)
            on_dead(allocation.size)

        return _free_small

    # -- allocation ------------------------------------------------------------

    def _malloc_small(self, core: "Core", size: int) -> Allocation:
        aligned = (size + 7) & ~7
        if size <= 0 or aligned > 512:
            size_class_index(size)  # raises with the canonical message
        size_class = aligned // 8 - 1
        spans = self._nonfull_spans.get(size_class)
        if spans is None:
            spans = self._nonfull_spans[size_class] = []
        if not spans:
            spans.append(self._new_span(core, size_class))
        span = spans[0]
        offset = span.free_offsets.pop()
        span.allocated.add(offset)
        if not span.free_offsets:
            spans.pop(0)
        if self._plain_charges:
            # Inlined _charge_alloc(core, alloc_fast + gc_per_object, True).
            cycles = self._c_alloc_fast_gc
            core.cycles += cycles
            self._ua_cycles.pending += cycles
            self._alloc_fast.pending += 1
        else:
            self._charge_alloc(core, self._c_alloc_fast_gc, fast=True)
        self.touch_alloc(core, span.base)
        addr = span.base + offset
        self._owner[addr] = span
        # Inlined gc.on_alloc(object_size).
        gc = self.gc
        gc.heap_live += (size_class + 1) * 8
        if gc.heap_live >= gc._goal:
            self.collect(core)
        return Allocation(addr, size, size_class)

    def _new_span(self, core: "Core", size_class: int) -> Span:
        if self._arena_top + SPAN_BYTES > self._arena_end:
            base = self._mmap(core, HEAP_ARENA_BYTES)
            self._arena_top = base
            self._arena_end = base + HEAP_ARENA_BYTES
            self.stats.add("heap_arenas_mapped")
        span = Span.carve(self._arena_top, size_class)
        self._arena_top += SPAN_BYTES
        self._charge_alloc(core, self.costs.alloc_slow, fast=False)
        return span

    # -- free: objects become garbage, reclaimed at GC -------------------------

    def _free_small(self, core: "Core", allocation: Allocation) -> None:
        """An object died: no work now, the sweeper reclaims it later."""
        if allocation.addr not in self._owner:
            raise AllocationError(
                f"{allocation.addr:#x} is not a live Go object"
            )
        self._garbage.append(allocation)
        self.gc.on_dead(allocation.size)

    def collect(self, core: "Core") -> int:
        """Run a mark-sweep collection; return objects reclaimed."""
        live_objects = len(self._owner) - len(self._garbage)
        core.charge(live_objects * MARK_PER_LIVE_OBJECT, "user_free")
        reclaimed = 0
        for allocation in self._garbage:
            span = self._owner.pop(allocation.addr)
            offset = allocation.addr - span.base
            was_full = span.is_full
            span.allocated.remove(offset)
            span.free_offsets.append(offset)
            if was_full:
                self._nonfull_spans[span.size_class].append(span)
            reclaimed += 1
        core.charge(reclaimed * SWEEP_PER_DEAD_OBJECT, "user_free")
        self.stats.add("gc_reclaimed", reclaimed)
        self.stats.add("gc_runs")
        self.gc_runs += 1
        self._garbage.clear()
        live_bytes = sum(
            (span.size_class + 1) * 8 for span in self._owner.values()
        )
        self.gc.after_gc(live_bytes)
        self.machine.dram.record_bulk_bytes(
            64 * (live_objects + reclaimed), write=False
        )
        return reclaimed

    def teardown(self, core: "Core") -> None:
        """Function exit: everything is batch-freed by the OS; no sweeps."""
        self._garbage.clear()
        self._owner.clear()
        super().teardown(core)

    @property
    def garbage_objects(self) -> int:
        return len(self._garbage)
