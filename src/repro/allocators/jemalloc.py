"""Behavioral model of jemalloc for C/C++ workloads.

jemalloc serves small objects from per-size-class slab *runs* carved out of
large chunks. The model captures the two behaviours §6 attributes to it:

* it pre-maps and pre-faults a pool of memory at library initialization, so
  C++ workloads see few page faults (small page-management gains in Fig. 9)
  at the cost of up-front footprint (userspace memory waste in Fig. 11);
* its fast paths are compiled and cheap, so userspace dominates C++ memory
  management cycles (96 % per Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set

from repro.allocators.base import (
    Allocation,
    AllocationError,
    SoftwareAllocator,
    size_class_index,
)
from repro.sim.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core

CHUNK_BYTES = 2 * 1024 * 1024
#: Default slab-run span. Small-class runs are page-sized in real
#: jemalloc; the larger default amortizes carving for function workloads,
#: while the data-processing configuration uses page runs (heavier
#: retire/purge churn).
RUN_BYTES = 4 * PAGE_SIZE

#: Pages pre-faulted at init ("a small pool of memory").
PREFAULT_PAGES = 128


@dataclass
class Run:
    """One slab run dedicated to a size class."""

    base: int
    size_class: int
    capacity: int
    free_offsets: List[int] = field(default_factory=list)
    allocated: Set[int] = field(default_factory=set)

    @classmethod
    def carve(cls, base: int, size_class: int, run_bytes: int = RUN_BYTES) -> "Run":
        object_size = (size_class + 1) * 8
        capacity = run_bytes // object_size
        return cls(
            base=base,
            size_class=size_class,
            capacity=capacity,
            free_offsets=[i * object_size for i in range(capacity - 1, -1, -1)],
        )

    @property
    def is_full(self) -> bool:
        return not self.free_offsets

    @property
    def is_empty(self) -> bool:
        return not self.allocated


class JemallocAllocator(SoftwareAllocator):
    """jemalloc-style slab allocator with init-time pre-faulting."""

    language = "cpp"
    name = "jemalloc"

    def __init__(
        self,
        kernel,
        process,
        touch=None,
        purge_after=None,
        run_bytes: int = RUN_BYTES,
    ) -> None:
        """``purge_after``: when this many runs sit retired, decay purging
        kicks in and their pages are returned via MADV_DONTNEED (the
        jemalloc dirty-decay behaviour long-running processes enable; None
        disables it, matching a short-lived function that exits before the
        decay timer fires). ``run_bytes``: slab-run span."""
        super().__init__(kernel, process, touch)
        self.purge_after = purge_after
        self.run_bytes = run_bytes
        self._chunk_top = 0
        self._chunk_end = 0
        self._nonfull_runs: Dict[int, List[Run]] = {}
        self._run_of: Dict[int, Run] = {}  # run base -> Run
        self._owner: Dict[int, Run] = {}  # object addr -> Run
        self._dirty_runs: List[int] = []  # retired, pages still backed
        self._clean_runs: List[int] = []  # retired and purged (refault)
        self._retires_since_purge = 0
        self._initialized = False
        # Shadow the small-path methods with closures when the plain
        # charge hooks apply (Mallacc overrides them, keeping dispatch).
        if (
            self._plain_charges
            and type(self)._malloc_small is JemallocAllocator._malloc_small
            and type(self)._free_small is JemallocAllocator._free_small
        ):
            self._malloc_small = self._make_malloc_small()
            self._free_small = self._make_free_small()
        self._bind_fast_paths()

    def _make_malloc_small(self):
        nonfull_runs = self._nonfull_runs
        owner = self._owner
        new_run = self._new_run
        c_alloc = self._c_alloc_fast
        ua_cycles = self._ua_cycles
        alloc_fast = self._alloc_fast
        touch_alloc = self.touch_alloc
        self_ref = self

        def _malloc_small(core, size):
            if not self_ref._initialized:
                self_ref.initialize(core)
            aligned = (size + 7) & ~7
            if size <= 0 or aligned > 512:
                size_class_index(size)  # raises with the canonical message
            size_class = aligned // 8 - 1
            runs = nonfull_runs.get(size_class)
            if runs is None:
                runs = nonfull_runs[size_class] = []
            if not runs:
                runs.append(new_run(core, size_class))
            run = runs[-1]
            offset = run.free_offsets.pop()
            run.allocated.add(offset)
            if not run.free_offsets:
                runs.pop()
            core.cycles += c_alloc
            ua_cycles.pending += c_alloc
            alloc_fast.pending += 1
            touch_alloc(core, run.base)
            addr = run.base + offset
            owner[addr] = run
            return Allocation(addr, size, size_class)

        return _malloc_small

    def _make_free_small(self):
        nonfull_runs = self._nonfull_runs
        owner = self._owner
        retire_run = self._retire_run
        c_free = self._c_free_fast
        uf_cycles = self._uf_cycles
        free_fast = self._free_fast
        touch_free = self.touch_free

        def _free_small(core, allocation):
            run = owner.pop(allocation.addr, None)
            if run is None or run.size_class != allocation.size_class:
                raise AllocationError(
                    f"{allocation.addr:#x} does not belong to a live run"
                )
            offset = allocation.addr - run.base
            was_full = not run.free_offsets
            run.allocated.remove(offset)
            run.free_offsets.append(offset)
            core.cycles += c_free
            uf_cycles.pending += c_free
            free_fast.pending += 1
            touch_free(core, run.base)
            if was_full:
                nonfull_runs[run.size_class].append(run)
            if not run.allocated:
                retire_run(core, run)

        return _free_small

    def initialize(self, core: "Core") -> None:
        """Library init: map the first chunk and pre-fault a small pool."""
        if self._initialized:
            return
        base = self._mmap(core, CHUNK_BYTES)
        self._chunk_top = base
        self._chunk_end = base + CHUNK_BYTES
        if not self.warm:
            # Cold init: the library pre-faults its pool on the critical
            # path; a warm container inherited the backed pages already.
            for page in range(PREFAULT_PAGES):
                self.kernel.fault_handler.handle(
                    core, self.process, base + page * PAGE_SIZE
                )
        self._initialized = True
        self.stats.add("prefaulted_pages", PREFAULT_PAGES)

    # -- small path -----------------------------------------------------------

    def _malloc_small(self, core: "Core", size: int) -> Allocation:
        if not self._initialized:
            self.initialize(core)
        aligned = (size + 7) & ~7
        if size <= 0 or aligned > 512:
            size_class_index(size)  # raises with the canonical message
        size_class = aligned // 8 - 1
        runs = self._nonfull_runs.get(size_class)
        if runs is None:
            runs = self._nonfull_runs[size_class] = []
        if not runs:
            runs.append(self._new_run(core, size_class))
        # Allocate from the most recently carved/refilled run: hot runs
        # absorb the churn while older runs drain empty and retire.
        run = runs[-1]
        offset = run.free_offsets.pop()
        run.allocated.add(offset)
        if not run.free_offsets:
            runs.pop()
        if self._plain_charges:
            # Inlined _charge_alloc(core, alloc_fast, fast=True).
            cycles = self._c_alloc_fast
            core.cycles += cycles
            self._ua_cycles.pending += cycles
            self._alloc_fast.pending += 1
        else:
            self._charge_alloc(core, self.costs.alloc_fast, fast=True)
        self.touch_alloc(core, run.base)
        addr = run.base + offset
        self._owner[addr] = run
        return Allocation(addr, size, size_class)

    def _new_run(self, core: "Core", size_class: int) -> Run:
        if self._clean_runs:
            # Reuse a purged base: its pages refault on first touch — the
            # steady-state kernel churn of long-running processes. The
            # decay timer (~10 ms) is short relative to slab-reuse
            # distance in a steady-state server, so retired runs are
            # normally purged before demand returns to them.
            base = self._clean_runs.pop()
        elif self._dirty_runs:
            base = self._dirty_runs.pop()
        else:
            if self._chunk_top + self.run_bytes > self._chunk_end:
                chunk = self._mmap(core, CHUNK_BYTES)
                self._chunk_top = chunk
                self._chunk_end = chunk + CHUNK_BYTES
                self.stats.add("chunks_mapped")
            base = self._chunk_top
            self._chunk_top += self.run_bytes
        run = Run.carve(base, size_class, self.run_bytes)
        self._run_of[base] = run
        self._charge_alloc(core, self.costs.alloc_slow, fast=False)
        return run

    # -- free -------------------------------------------------------------------

    def _free_small(self, core: "Core", allocation: Allocation) -> None:
        run = self._owner.pop(allocation.addr, None)
        if run is None or run.size_class != allocation.size_class:
            raise AllocationError(
                f"{allocation.addr:#x} does not belong to a live run"
            )
        offset = allocation.addr - run.base
        was_full = not run.free_offsets
        run.allocated.remove(offset)
        run.free_offsets.append(offset)
        if self._plain_charges:
            # Inlined _charge_free(core, free_fast, fast=True).
            cycles = self._c_free_fast
            core.cycles += cycles
            self._uf_cycles.pending += cycles
            self._free_fast.pending += 1
        else:
            self._charge_free(core, self.costs.free_fast, fast=True)
        self.touch_free(core, run.base)
        if was_full:
            self._nonfull_runs[run.size_class].append(run)
        if not run.allocated:
            self._retire_run(core, run)

    def _retire_run(self, core: "Core", run: Run) -> None:
        """Empty runs return to the arena for reuse (jemalloc keeps the
        chunk mapped — no munmap, hence the low pool utilization Fig. 11
        charges against it)."""
        self._nonfull_runs[run.size_class].remove(run)
        del self._run_of[run.base]
        self._dirty_runs.append(run.base)
        self._charge_free(core, self.costs.free_slow, fast=False)
        self._retires_since_purge += 1
        if (
            self.purge_after is not None
            and self._retires_since_purge >= self.purge_after
        ):
            self._purge(core)

    def _purge(self, core: "Core") -> None:
        """Decay purging: MADV_DONTNEED every dirty retired run's pages.

        The decay timer fires on wall time, independent of allocation
        demand, so all currently-dirty runs purge at once; their bases
        move to the clean list and refault on reuse — the kernel churn
        that makes data processing 62% kernel-bound in Table 2."""
        purged = len(self._dirty_runs)
        for base in self._dirty_runs:
            self.kernel.syscalls.madvise_dontneed(
                core, self.process, base, self.run_bytes
            )
        self._clean_runs.extend(self._dirty_runs)
        self._dirty_runs.clear()
        self.stats.add("purges")
        self.stats.add("purged_runs", purged)
        self._retires_since_purge = 0

    # -- introspection -------------------------------------------------------------

    def utilization(self) -> float:
        """Allocated fraction of live slab capacity."""
        capacity = used = 0
        for run in self._run_of.values():
            capacity += run.capacity
            used += len(run.allocated)
        return used / capacity if capacity else 1.0

    @property
    def mapped_bytes(self) -> int:
        """Bytes of address space held in chunks (mapped, maybe unfaulted)."""
        return sum(
            vma.end - vma.start for vma in self.process.vmas
        )
