"""Large-allocation path (glibc-style).

Requests above 512 B are "directly serviced by malloc in glibc, which
eventually calls mmap as well" (§2.1). The model keeps per-request mmap for
huge blocks and a coarse free-list heap for mid-sized blocks, which is
enough to produce the syscall/fault behaviour large allocations cause.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.allocators.base import Allocation, SoftwareAllocator, align8
from repro.sim.params import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core

#: Above this, glibc mmaps the request directly (M_MMAP_THRESHOLD).
MMAP_THRESHOLD = 128 * 1024

#: Heap chunks are grown in this granularity for mid-sized requests.
HEAP_CHUNK = 1024 * 1024


class LargeAllocator(SoftwareAllocator):
    """Mid/huge allocation path shared by every language runtime."""

    language = "cpp"
    name = "glibc_large"

    def __init__(self, kernel, process, touch=None) -> None:
        super().__init__(kernel, process, touch)
        self._bins: Dict[int, List[int]] = {}  # rounded size -> free addrs
        self._heap_top = 0
        self._heap_end = 0
        self._huge: Dict[int, int] = {}  # addr -> mapped length

    def _malloc_small(self, core: "Core", size: int) -> Allocation:
        """Any size is accepted here — 'small' routing never recurses."""
        rounded = self._round(size)
        if rounded >= MMAP_THRESHOLD:
            addr = self._mmap(core, rounded)
            self._huge[addr] = rounded
            self._charge_alloc(core, self.costs.alloc_slow, fast=False)
            return Allocation(addr, size, -1)
        free_list = self._bins.get(rounded)
        if free_list:
            addr = free_list.pop()
            self._charge_alloc(core, self.costs.alloc_fast, fast=True)
            return Allocation(addr, size, -1)
        if self._heap_top + rounded > self._heap_end:
            base = self._mmap(core, max(HEAP_CHUNK, rounded))
            self._heap_top = base
            self._heap_end = base + max(HEAP_CHUNK, rounded)
        addr = self._heap_top
        self._heap_top += rounded
        self._charge_alloc(core, self.costs.alloc_fast * 2, fast=True)
        return Allocation(addr, size, -1)

    def _free_small(self, core: "Core", allocation: Allocation) -> None:
        if allocation.addr in self._huge:
            del self._huge[allocation.addr]
            self._munmap(core, allocation.addr)
            self._charge_free(core, self.costs.free_slow, fast=False)
            return
        rounded = self._round(allocation.size)
        self._bins.setdefault(rounded, []).append(allocation.addr)
        self._charge_free(core, self.costs.free_fast, fast=True)

    @staticmethod
    def _round(size: int) -> int:
        """Round to 64 B below a page, to whole pages above."""
        aligned = align8(size)
        if aligned < PAGE_SIZE:
            return (aligned + 63) & ~63
        return -(-aligned // PAGE_SIZE) * PAGE_SIZE

    def _bin_key(self, size: int) -> Tuple[int, int]:  # pragma: no cover
        return (size, self._round(size))
