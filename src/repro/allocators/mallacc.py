"""Idealized Mallacc baseline (§6.7).

Mallacc [Kanev et al., ASPLOS'17] adds a small in-core malloc cache that
accelerates TCMalloc's *userspace* fast paths: size-class lookup, free-list
pop/push. The paper compares Memento against an idealized Mallacc whose
cache has zero latency and always hits — i.e. userspace fast paths become
free, while slow paths and every kernel cost remain.

Mallacc is hardwired to C++ allocators, so the model extends the jemalloc
stack and is only meaningful for C++ workloads (DeathStarBench).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.allocators.jemalloc import JemallocAllocator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core


#: Fraction of the fast path the malloc cache covers: the size-class
#: lookup and free-list head pop/push. The surrounding work (function
#: prologue/epilogue, slab accounting, statistics) still executes even
#: when the cache always hits at zero latency — Kanev et al. report
#: malloc latency reductions of roughly half, not elimination.
ACCELERATED_FRACTION = 0.55


class MallaccAllocator(JemallocAllocator):
    """jemalloc with an idealized always-hit, zero-latency malloc cache."""

    name = "mallacc"

    def _charge_alloc(self, core: "Core", cycles: int, fast: bool) -> None:
        if fast:
            residual = int(cycles * (1 - ACCELERATED_FRACTION))
            self.stats.add("alloc_fast_accelerated")
            super()._charge_alloc(core, residual, fast)
            return
        super()._charge_alloc(core, cycles, fast)

    def _charge_free(self, core: "Core", cycles: int, fast: bool) -> None:
        if fast:
            residual = int(cycles * (1 - ACCELERATED_FRACTION))
            self.stats.add("free_fast_accelerated")
            super()._charge_free(core, residual, fast)
            return
        super()._charge_free(core, cycles, fast)
