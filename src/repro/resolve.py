"""Unified runtime-option resolution: argument → environment → default.

Before PR 8, ``--jobs``, ``--kernel``, ``--backend``, and the cache
directory each had their own resolution path — ``resolve_jobs`` in
:mod:`repro.harness.engine`, ``$REPRO_KERNEL`` handling in
:mod:`repro.harness.vector_kernel`, ``$REPRO_BACKEND`` in
:mod:`repro.backends.base`, and ad-hoc ``$REPRO_CACHE_DIR`` lookups in
the CLI, the engine, and ``create_backend`` — with three different
error behaviours. This module is the single front door: every entry
point (CLI subcommands, ``repro serve``, the engine, the benchmark
conftest) resolves options here, and a bad value always raises
:class:`UsageError`, which ``repro``'s ``main`` reports as one
``repro: error: ...`` line with exit code 2.

The underlying env-var names and defaults are unchanged; only the
resolution entry point moved.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.backends.base import (
    DEFAULT_CACHE_DIR,
    resolve_backend_kind as _resolve_backend_kind,
)

#: Worker-process count for engine fan-out (``--jobs``).
JOBS_ENV = "REPRO_JOBS"

#: Result-cache location (``--cache-dir``).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class UsageError(ValueError):
    """A bad runtime option: reported as ``repro: error:`` with exit 2."""


def resolve_count(value: Any, what: str, default: int = 1) -> int:
    """Validate a positive worker/thread count.

    ``None`` means unspecified and resolves to ``default``. Raises
    :class:`UsageError` instead of letting a zero or negative count
    surface later as a ``ProcessPoolExecutor`` traceback.
    """
    if value is None:
        return default
    try:
        count = int(value)
    except (TypeError, ValueError):
        raise UsageError(f"{what} must be a positive integer, got {value!r}")
    if count != value and not isinstance(value, str):
        # int() would silently truncate (e.g. 1.5 -> 1).
        raise UsageError(f"{what} must be a positive integer, got {value!r}")
    if count < 1:
        raise UsageError(f"{what} must be a positive integer, got {value!r}")
    return count


def resolve_jobs(jobs: Any = None) -> int:
    """Worker-process count: argument → ``$REPRO_JOBS`` → 1."""
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV) or None
    return resolve_count(jobs, "jobs")


def resolve_workers(workers: Any = None, default: int = 2) -> int:
    """Job-queue worker-thread count for ``repro serve``."""
    return resolve_count(workers, "workers", default=default)


def resolve_kernel(choice: Optional[str] = None) -> str:
    """Replay-kernel choice: argument → ``$REPRO_KERNEL`` → ``auto``.

    Returns the validated *choice* (``scalar``/``vectorized``/``auto``);
    mapping ``auto`` to an implementation happens where the run
    executes (see :func:`repro.harness.vector_kernel.resolve_kernel`).
    """
    from repro.harness import vector_kernel

    try:
        return vector_kernel.resolve_choice(choice)
    except ValueError as exc:
        raise UsageError(str(exc))


def resolve_backend(kind: Optional[str] = None) -> str:
    """Result-backend name: argument → ``$REPRO_BACKEND`` → ``json``."""
    try:
        return _resolve_backend_kind(kind)
    except ValueError as exc:
        raise UsageError(str(exc))


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """Result-cache root: argument → ``$REPRO_CACHE_DIR`` → default."""
    if cache_dir is not None:
        return str(cache_dir)
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def resolve_stack(value: Any) -> str:
    """Canonical stack name for a name, legacy boolean, or Stack.

    The single home of the old ``"memento" if memento else "baseline"``
    derivation (previously duplicated across ``harness/system.py`` and
    ``harness/perfbench.py``). Accepts a registered stack name, the
    legacy ``memento`` boolean, or a :class:`repro.stacks.Stack`;
    unknown names raise :class:`UsageError`, which the CLI and service
    report as ``repro: error:`` + exit 2 / HTTP 400 instead of silently
    running the baseline.
    """
    from repro import stacks

    try:
        return stacks.coerce(value).name
    except UsageError:
        raise
    except ValueError as exc:
        raise UsageError(str(exc))


def resolve_stack_list(
    value: Any, default: Optional[tuple] = None
) -> tuple:
    """Validated stack-name tuple from CLI-style input.

    Accepts ``None`` (→ ``default``, itself defaulting to every
    registered stack), a comma-separated string, or a sequence of
    names/booleans. The aliases ``all`` (every registered stack) and
    ``both`` (the paper's baseline/memento pair) expand in place.
    Duplicates collapse, order is preserved, and any unknown name
    raises :class:`UsageError`.
    """
    from repro import stacks

    if default is None:
        default = stacks.stack_names()
    if value is None:
        return tuple(default)
    if isinstance(value, str):
        value = [part.strip() for part in value.split(",") if part.strip()]
    names = []
    for item in value:
        if item == "all":
            expanded = stacks.stack_names()
        elif item == "both":
            expanded = ("baseline", "memento")
        else:
            expanded = (resolve_stack(item),)
        for name in expanded:
            if name not in names:
                names.append(name)
    if not names:
        raise UsageError("no stacks selected")
    return tuple(names)
