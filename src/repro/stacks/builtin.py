"""The four registered stacks: the paper's two plus two rivals.

``baseline`` and ``memento`` are pure extractions of the pre-registry
boolean — they override nothing, so every replay path is bit-identical
to the harness before stacks existed (pinned by the golden fixtures,
the lockstep kernel suite, and the differential oracle).

``snapshot`` and ``reclaim`` model the related work's rival answers:

* **snapshot** (REAP-style, vHive): the cold run demand-faults its
  working set and records the first-touch page set; a warm run restores
  from the snapshot — the recorded set is prefetched before the function
  body touches it (no demand faults), and a Table-3-style restore
  latency is charged per prefetched page plus a per-invocation setup
  cost. Idle instances keep almost nothing resident (the snapshot lives
  on disk), so they strand very little pool memory.
* **reclaim** (Squeezy-style): arena pages are released to a host pool
  between invocations — heap mmaps are never pre-backed, so every first
  touch of the next invocation pays a full demand fault (the refault
  cost, charged through the ordinary kernel fault path), and function
  exit pays a per-page release cost returning pages to the host. Idle
  instances keep only the runtime skeleton resident.
"""

from __future__ import annotations

from repro.stacks.base import Stack, register


class BaselineStack(Stack):
    name = "baseline"
    description = "software allocator, demand paging (the paper's baseline)"
    hardware = False
    knobs = frozenset({"mmap_populate", "allocator"})
    resident_fraction = 1.0
    legacy_memento = False


class MementoStack(Stack):
    name = "memento"
    description = "Memento hardware allocators + routing runtime"
    hardware = True
    knobs = frozenset()
    resident_fraction = 1.0
    legacy_memento = True


class SnapshotStack(Stack):
    """REAP-style record/replay of first-touch page sets."""

    name = "snapshot"
    description = "REAP-style snapshot/restore with working-set prefetch"
    hardware = False
    knobs = frozenset({"allocator"})
    #: The snapshot lives on disk while the instance idles; only the
    #: container skeleton stays resident in the pool.
    resident_fraction = 0.05
    legacy_memento = None

    def allocator_warm(self, spec, cold_start):
        # Cold run = the record phase: demand-fault everything so the
        # first-touch set exists to snapshot. Warm runs restore: the
        # recorded set arrives prefetched, never demand-faulted.
        return not cold_start

    def configure_allocator(self, system, allocator):
        per_page = system.machine.costs.snapshot_restore_per_page

        def restore_charge(core, pages):
            core.charge(pages * per_page, "restore")

        allocator.warm_charge = restore_charge
        if allocator.large is not allocator:
            allocator.large.warm_charge = restore_charge

    def begin_run(self, system):
        if not system.cold_start:
            system.core.charge(
                system.machine.costs.snapshot_restore_base, "restore"
            )


class ReclaimStack(Stack):
    """Squeezy-style release of arena pages to a host pool."""

    name = "reclaim"
    description = "Squeezy-style page release to a host pool, refault on touch"
    hardware = False
    knobs = frozenset({"allocator"})
    #: Pages go back to the host between invocations; the process and
    #: runtime skeleton stay resident.
    resident_fraction = 0.25
    legacy_memento = None

    def allocator_warm(self, spec, cold_start):
        # Released pages are gone: every invocation refaults its heap
        # through the ordinary demand-fault path, whatever the workload's
        # warm_heap setting says.
        return False

    def function_exit(self, system):
        pages = system.machine.frames.live("user")
        if pages:
            system.core.charge(
                pages * system.machine.costs.reclaim_release_per_page,
                "reclaim_release",
            )


BUILTIN_STACKS = (
    register(BaselineStack()),
    register(MementoStack()),
    register(SnapshotStack()),
    register(ReclaimStack()),
)
