"""The memory-management stack contract and registry.

A *stack* is one answer to the serverless ephemeral-memory problem: who
backs the function's heap, what a warm invocation pays to get its pages
back, and how much memory an idle instance strands between invocations.
Before this package a stack was a boolean (``memento: bool``) threaded
through the harness; the registry makes it a first-class object so rival
designs from the related work — REAP-style snapshot/restore, Squeezy-style
reclamation — can race the paper's two stacks in the same harness.

The contract (:class:`Stack`) has three parts:

* **identity** — ``name``, a one-line ``description``, and ``hardware``
  (does the stack run Memento's hardware allocators and routing runtime,
  or a software allocator?).
* **knob declaration** — ``knobs``, the set of :class:`SimulatedSystem`
  configuration knobs the stack supports (``mmap_populate``,
  ``allocator``). Every stack must declare its set explicitly
  (:func:`register` asserts it), so an unsupported knob fails loudly
  naming the offending stack instead of silently inheriting another
  stack's semantics.
* **system hooks** — cold-start/page-fault/free-path behavior and the
  per-invocation reset cost model: ``allocator_warm`` decides whether
  heap pages arrive pre-backed, ``configure_allocator`` installs
  per-page charge hooks, ``begin_run`` charges invocation-entry costs
  (snapshot restore), ``function_exit`` charges invocation-exit costs
  (reclaim release). The baseline and memento entries override nothing,
  so their replay paths are bit-identical to the pre-registry harness.

Hooks deliberately receive the live ``SimulatedSystem``: every charge
goes through ``core.charge``/the shared kernel machinery, so the audit
oracle's fast and reference systems (built with the same stack) stay in
lockstep.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.system import SimulatedSystem
    from repro.workloads.synth import WorkloadSpec


class Stack:
    """One registered memory-management stack.

    Subclasses override the hooks below; the base implementations are
    the baseline software path (no extra charges, ``spec.warm_heap``
    semantics), so a stack only states where it differs.
    """

    #: Registry name (also the wire/CLI spelling).
    name: str = ""
    #: One-line description for ``--help`` and reports.
    description: str = ""
    #: True when the stack runs Memento's hardware allocators and the
    #: routing runtime; False for software-allocator stacks.
    hardware: bool = False
    #: SimulatedSystem knobs this stack supports. Must be declared
    #: explicitly (asserted at registration): an undeclared knob raises
    #: naming the stack instead of inheriting another stack's behavior.
    knobs: frozenset = frozenset()
    #: Fraction of a warm instance's peak footprint that stays resident
    #: while the instance idles in the fleet pool — the stranding model.
    #: 1.0 keeps everything (baseline/memento keep-alive); stacks that
    #: snapshot to disk or release pages to the host pool keep less.
    resident_fraction: float = 1.0
    #: Legacy wire/cache spelling: the value of the pre-registry
    #: ``memento`` boolean this stack corresponds to, or ``None`` for
    #: stacks that postdate the boolean (their requests carry an
    #: explicit ``stack`` field in wire payloads and content keys).
    legacy_memento: Optional[bool] = None

    # -- system hooks ----------------------------------------------------

    def allocator_warm(
        self, spec: "WorkloadSpec", cold_start: bool
    ) -> bool:
        """Whether heap mmaps arrive pre-backed (no demand faults).

        The baseline semantics: a warm container retains its heap when
        the workload says so (``spec.warm_heap``).
        """
        return spec.warm_heap

    def configure_allocator(
        self, system: "SimulatedSystem", allocator
    ) -> None:
        """Install stack-specific charge hooks on a software allocator."""

    def begin_run(self, system: "SimulatedSystem") -> None:
        """Per-invocation entry costs (charged before the function body)."""

    def function_exit(self, system: "SimulatedSystem") -> None:
        """Per-invocation exit costs (charged while pages are still live,
        before allocator/runtime teardown)."""

    def resident_bytes(self, peak_bytes: float) -> float:
        """Idle residency an instance of this stack strands in the pool."""
        return float(peak_bytes) * self.resident_fraction


_REGISTRY: Dict[str, Stack] = {}


def register(stack: Stack) -> Stack:
    """Add a stack to the registry, asserting the contract is complete."""
    if not stack.name or not isinstance(stack.name, str):
        raise ValueError("stack must declare a non-empty name")
    if not isinstance(stack.knobs, frozenset):
        raise ValueError(
            f"stack {stack.name!r} must declare its supported knobs as a "
            f"frozenset (got {type(stack.knobs).__name__})"
        )
    if not isinstance(stack.hardware, bool):
        raise ValueError(f"stack {stack.name!r} must declare hardware")
    if not 0.0 <= stack.resident_fraction <= 1.0:
        raise ValueError(
            f"stack {stack.name!r} resident_fraction must be in [0, 1]"
        )
    if stack.name in _REGISTRY:
        raise ValueError(f"stack {stack.name!r} already registered")
    _REGISTRY[stack.name] = stack
    return stack


def get_stack(name: str) -> Stack:
    """Look up a registered stack; raises ``ValueError`` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown stack {name!r}; choose from {', '.join(_REGISTRY)}"
        ) from None


def stack_names() -> Tuple[str, ...]:
    """All registered stack names, in registration order."""
    return tuple(_REGISTRY)


def coerce(value) -> Stack:
    """Resolve a stack from a :class:`Stack`, a name, or the legacy
    ``memento`` boolean (``True`` → memento, ``False`` → baseline)."""
    if isinstance(value, Stack):
        return value
    if isinstance(value, bool):
        return _REGISTRY["memento" if value else "baseline"]
    if isinstance(value, str):
        return get_stack(value)
    raise ValueError(
        f"cannot resolve a stack from {value!r} "
        "(expected a Stack, a name, or a bool)"
    )
