"""Pluggable memory-management stacks (see :mod:`repro.stacks.base`).

Importing the package registers the four built-in stacks: ``baseline``,
``memento``, ``snapshot`` (REAP-style record/replay), and ``reclaim``
(Squeezy-style page release).
"""

from repro.stacks.base import (
    Stack,
    coerce,
    get_stack,
    register,
    stack_names,
)
from repro.stacks.builtin import (
    BUILTIN_STACKS,
    BaselineStack,
    MementoStack,
    ReclaimStack,
    SnapshotStack,
)

__all__ = [
    "Stack",
    "coerce",
    "get_stack",
    "register",
    "stack_names",
    "BUILTIN_STACKS",
    "BaselineStack",
    "MementoStack",
    "SnapshotStack",
    "ReclaimStack",
]
