"""Physical frame space: capacity and per-category usage ledger.

Fig. 11 of the paper reports *aggregate* memory usage — the total number of
physical pages allocated during execution — split into userspace and kernel
pages. The ledger tracks both live usage and the aggregate (monotonic) count
per category so the harness can reproduce that figure, while the buddy
allocator owns the actual frame numbers.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.params import MachineParams, PAGE_SIZE


class FrameSpace:
    """Capacity bookkeeping for physical memory.

    Categories in use:

    * ``user``     — pages backing application heap data
    * ``kernel``   — page tables, VMA metadata, and other kernel bookkeeping
    * ``memento``  — pages held in Memento's free page pool (not yet given
      to an arena; arena pages are charged to ``user`` when handed out)
    """

    def __init__(self, params: MachineParams) -> None:
        self.total_frames = params.dram_gb * (1 << 30) // PAGE_SIZE
        self._live: Dict[str, int] = {}
        self._aggregate: Dict[str, int] = {}
        self._peak: Dict[str, int] = {}

    def charge(self, category: str, pages: int = 1) -> None:
        """Record ``pages`` newly allocated under ``category``."""
        if pages < 0:
            raise ValueError("pages must be non-negative")
        live = self._live.get(category, 0) + pages
        self._live[category] = live
        self._aggregate[category] = self._aggregate.get(category, 0) + pages
        if live > self._peak.get(category, 0):
            self._peak[category] = live
        if self.live_total > self.total_frames:
            raise MemoryError(
                f"physical memory exhausted: {self.live_total} frames live"
            )

    def credit(self, category: str, pages: int = 1) -> None:
        """Record ``pages`` freed from ``category``."""
        live = self._live.get(category, 0) - pages
        if live < 0:
            raise ValueError(
                f"freeing more {category} pages than were allocated"
            )
        self._live[category] = live

    def move(self, src: str, dst: str, pages: int = 1) -> None:
        """Re-categorize live pages (e.g. pool page handed to an arena).

        Unlike credit+charge, a move does not inflate the aggregate count of
        ``dst`` — the page was already counted when first allocated.
        """
        self.credit(src, pages)
        live = self._live.get(dst, 0) + pages
        self._live[dst] = live
        if live > self._peak.get(dst, 0):
            self._peak[dst] = live

    def live(self, category: str) -> int:
        """Pages currently allocated under ``category``."""
        return self._live.get(category, 0)

    def aggregate(self, category: str) -> int:
        """Total pages ever allocated under ``category`` (Fig. 11 metric)."""
        return self._aggregate.get(category, 0)

    def peak(self, category: str) -> int:
        """High-water mark of live pages under ``category``."""
        return self._peak.get(category, 0)

    @property
    def live_total(self) -> int:
        return sum(self._live.values())

    @property
    def aggregate_total(self) -> int:
        return sum(self._aggregate.values())

    def usage_report(self) -> Dict[str, Dict[str, int]]:
        """Return ``{category: {live, aggregate, peak}}`` for all cats."""
        cats = set(self._live) | set(self._aggregate)
        return {
            cat: {
                "live": self.live(cat),
                "aggregate": self.aggregate(cat),
                "peak": self.peak(cat),
            }
            for cat in sorted(cats)
        }
