"""DRAM traffic and bandwidth accounting.

The evaluation (Fig. 10) reports *normalized memory bandwidth usage
reduction*, which is a function of total bytes moved to/from DRAM. The
model counts line reads and writebacks; capacity is tracked for sanity but
the paper's workloads (tens of MB) never pressure the 64 GB of Table 3.
"""

from __future__ import annotations

from repro.sim.params import LINE_SIZE, MachineParams
from repro.sim.stats import Stats


class Dram:
    """Byte-level traffic accounting for main memory."""

    __slots__ = (
        "params",
        "stats",
        "_read_lines",
        "_read_bytes",
        "_write_lines",
        "_write_bytes",
    )

    def __init__(self, params: MachineParams, stats: Stats) -> None:
        self.params = params
        self.stats = stats.scoped("dram")
        self._read_lines = self.stats.counter("read_lines")
        self._read_bytes = self.stats.counter("read_bytes")
        self._write_lines = self.stats.counter("write_lines")
        self._write_bytes = self.stats.counter("write_bytes")

    def record_read_line(self, lines: int = 1) -> None:
        """Record ``lines`` cache-line fetches from DRAM."""
        self._read_lines.pending += lines
        self._read_bytes.pending += lines * LINE_SIZE

    def record_write_line(self, lines: int = 1) -> None:
        """Record ``lines`` cache-line writebacks to DRAM."""
        self._write_lines.pending += lines
        self._write_bytes.pending += lines * LINE_SIZE

    def record_bulk_bytes(self, nbytes: float, write: bool = False) -> None:
        """Record statistically-modeled application traffic.

        Workload compute phases contribute DRAM traffic that is modeled in
        aggregate (bytes per compute burst) rather than line by line; this
        entry point keeps that traffic in the same counters.
        """
        if write:
            self._write_bytes.pending += nbytes
            self._write_lines.pending += nbytes / LINE_SIZE
        else:
            self._read_bytes.pending += nbytes
            self._read_lines.pending += nbytes / LINE_SIZE

    @property
    def total_bytes(self) -> float:
        """Total bytes moved between the LLC and DRAM."""
        return self.stats["read_bytes"] + self.stats["write_bytes"]
