"""The assembled machine: cores, caches, TLBs, DRAM, frame space.

``Machine`` owns the shared platform state; each ``Core`` owns its private
cache slice and TLB. The harness drives a core through the kernel (baseline)
or through Memento (treatment) — the machine is identical in both so that
every comparison is iso-hardware apart from Memento's structures.
"""

from __future__ import annotations

from typing import List

from repro.sim.cache import CacheHierarchy
from repro.sim.cycles import CostModel, DEFAULT_COSTS
from repro.sim.dram import Dram
from repro.sim.memory import FrameSpace
from repro.sim.params import MachineParams
from repro.sim.stats import Stats
from repro.sim.tlb import TlbHierarchy


class Core:
    """One core: private cache hierarchy + TLB + cycle accumulator.

    Cycles are accumulated by *category* so the harness can report the
    Fig. 9 breakdown (obj-alloc / obj-free / page-mgmt / bypass / app).
    """

    __slots__ = (
        "core_id",
        "machine",
        "stats",
        "caches",
        "tlb",
        "cycles",
        "_cycle_cells",
    )

    def __init__(
        self, core_id: int, machine: "Machine", stats: Stats
    ) -> None:
        self.core_id = core_id
        self.machine = machine
        self.stats = stats
        self.caches = CacheHierarchy(
            machine.params,
            stats,
            machine.dram,
            on_writeback=self._writeback_backpressure,
        )
        self.tlb = TlbHierarchy(machine.params, stats)
        self.cycles = 0
        #: Interned per-category ``cycles.*`` cells — ``charge`` runs for
        #: every simulated event, and building ``f"cycles.{category}"``
        #: per call dominated its cost.
        self._cycle_cells: dict = {}

    def _writeback_backpressure(self) -> None:
        self.charge(self.machine.costs.writeback_penalty, "mem_backpressure")

    def charge(self, cycles: float, category: str = "app") -> None:
        """Account ``cycles`` against this core under ``category``."""
        self.cycles += cycles
        cell = self._cycle_cells.get(category)
        if cell is None:
            cell = self.cycle_counter(category)
        cell.pending += cycles

    def cycle_counter(self, category: str):
        """Interned cell for ``cycles.<category>`` (hot callers hoist it)."""
        cell = self.stats.counter("cycles." + category)
        self._cycle_cells[category] = cell
        return cell

    def cycles_in(self, category: str) -> float:
        """Cycles accumulated so far under ``category``."""
        return self.stats[f"cycles.{category}"]

    def context_switch_flush(self) -> None:
        """TLB flush performed at context-switch time (no ASIDs modeled)."""
        self.tlb.flush()


class Machine:
    """The simulated platform of Table 3."""

    def __init__(
        self,
        params: MachineParams | None = None,
        costs: CostModel | None = None,
    ) -> None:
        self.params = params or MachineParams()
        self.costs = costs or DEFAULT_COSTS
        self.stats = Stats()
        self.dram = Dram(self.params, self.stats)
        self.frames = FrameSpace(self.params)
        self.cores: List[Core] = [
            Core(i, self, self.stats) for i in range(self.params.num_cores)
        ]

    @property
    def core(self) -> Core:
        """The first core — convenience for single-core workloads."""
        return self.cores[0]

    def total_cycles(self) -> float:
        """Max cycles across cores (wall-clock proxy)."""
        return max(core.cycles for core in self.cores)

    def seconds(self) -> float:
        """Simulated wall time."""
        return self.params.cycles_to_seconds(self.total_cycles())
