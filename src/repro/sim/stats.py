"""Hierarchical statistics counters.

Every simulated component (caches, TLBs, allocators, the kernel, Memento's
hardware structures) records events into a :class:`Stats` instance. Counters
are addressed by dotted names, e.g. ``"l1d.hits"`` or
``"memento.hot.alloc_hits"``, which keeps reporting code flat and lets the
harness merge and diff runs without knowing component internals.

Hot emitters bump counters millions of times per replay, so the dotted-name
``add`` path (prefix concatenation + hashing a fresh string per event) is
too slow for them. :meth:`Stats.counter` returns a :class:`Counter` handle
bound to one interned name; components create handles once at construction
and increment through them. A handle defers its increments in a plain
``pending`` integer attribute — the hottest emitters may bump
``cell.pending`` directly without even a method call — and every read
surface on :class:`Stats` folds pending amounts into the shared store
first, so ``snapshot``/``merge``/``diff`` and the string-path API always
observe exact totals.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class Counter:
    """A bound increment cell for one interned counter name.

    Increments accumulate in ``pending`` (exact for the integral amounts
    all hot emitters use) and are folded into the parent store whenever
    the parent :class:`Stats` is read. Hot loops may bump ``pending``
    in place (``cell.pending += n``) instead of calling :meth:`add`.
    """

    __slots__ = ("_store", "name", "pending")

    def __init__(self, store: Dict[str, float], name: str) -> None:
        self._store = store
        self.name = name
        self.pending = 0

    def add(self, amount: float = 1) -> None:
        """Increment the bound counter by ``amount``."""
        self.pending += amount

    def get(self) -> float:
        """Current value (0 if never incremented)."""
        return self._store.get(self.name, 0) + self.pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.get()})"


class Stats:
    """A bag of named numeric counters.

    Counters spring into existence at zero on first use. Values may be int
    or float (cycle totals stay integral; derived rates are floats).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._cells: Dict[str, Counter] = {}

    def _flush(self) -> None:
        """Fold every cell's pending increments into the shared store."""
        counters = self._counters
        for cell in self._cells.values():
            pending = cell.pending
            if pending:
                counters[cell.name] += pending
                cell.pending = 0

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name: str) -> Counter:
        """Return the interned :class:`Counter` handle for ``name``.

        Repeated calls with the same name return the same cell. Creating
        a handle does not create the counter: it appears in ``snapshot``
        only once incremented, exactly like the string path.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = Counter(self._counters, sys.intern(name))
            self._cells[cell.name] = cell
        return cell

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value``, overwriting any prior value."""
        self._flush()
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Return the value of ``name``, or ``default`` if never touched."""
        self._flush()
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        self._flush()
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        self._flush()
        return name in self._counters

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(name, value)`` pairs in sorted name order."""
        self._flush()
        return iter(sorted(self._counters.items()))

    def merge(self, other: "Stats") -> None:
        """Add every counter of ``other`` into this instance."""
        other._flush()
        self._flush()
        for name, value in other._counters.items():
            self._counters[name] += value

    def scoped(self, prefix: str) -> "ScopedStats":
        """Return a view that prepends ``prefix + '.'`` to counter names."""
        return ScopedStats(self, prefix)

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """Return a dict of all counters whose name starts with ``prefix``."""
        self._flush()
        dot = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(dot) or name == prefix
        }

    def snapshot(self) -> Dict[str, float]:
        """Return a plain-dict copy of all counters."""
        self._flush()
        return dict(self._counters)

    def to_dict(self) -> Dict[str, float]:
        """Plain-JSON representation (alias of :meth:`snapshot`),
        matching the ``to_dict``/``from_dict`` round-trip convention of
        ``RunResult`` and ``MementoConfig`` so ledger manifests and
        metric exports share one serialization path."""
        return self.snapshot()

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "Stats":
        """Inverse of :meth:`to_dict`; raises on non-numeric values or
        non-string names so a corrupted payload fails loudly."""
        if not isinstance(data, Mapping):
            raise ValueError("Stats payload must be a mapping")
        stats = cls()
        for name, value in data.items():
            if not isinstance(name, str) or isinstance(value, bool) or (
                not isinstance(value, (int, float))
            ):
                raise ValueError(
                    f"malformed Stats entry: {name!r}={value!r}"
                )
            stats._counters[name] = value
        return stats

    def diff(self, earlier: Mapping[str, float]) -> Dict[str, float]:
        """Return counters minus an earlier :meth:`snapshot`."""
        self._flush()
        out: Dict[str, float] = {}
        for name, value in self._counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def clear(self) -> None:
        """Reset all counters."""
        for cell in self._cells.values():
            cell.pending = 0
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._flush()
        return f"Stats({len(self._counters)} counters)"


class ScopedStats:
    """A prefixing view over a parent :class:`Stats`.

    Components receive a scoped view so their counter names are local
    (``"hits"``) while the global namespace stays collision-free
    (``"l1d.hits"``).
    """

    def __init__(self, parent: Stats, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip(".") + "."

    def add(self, name: str, amount: float = 1) -> None:
        self._parent.add(self._prefix + name, amount)

    def counter(self, name: str) -> Counter:
        """Interned handle for ``prefix + name`` (see :meth:`Stats.counter`)."""
        return self._parent.counter(self._prefix + name)

    def set(self, name: str, value: float) -> None:
        self._parent.set(self._prefix + name, value)

    def get(self, name: str, default: float = 0) -> float:
        return self._parent.get(self._prefix + name, default)

    def __getitem__(self, name: str) -> float:
        return self._parent[self._prefix + name]

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self._parent, self._prefix + prefix)
