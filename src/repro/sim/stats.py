"""Hierarchical statistics counters.

Every simulated component (caches, TLBs, allocators, the kernel, Memento's
hardware structures) records events into a :class:`Stats` instance. Counters
are addressed by dotted names, e.g. ``"l1d.hits"`` or
``"memento.hot.alloc_hits"``, which keeps reporting code flat and lets the
harness merge and diff runs without knowing component internals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class Stats:
    """A bag of named numeric counters.

    Counters spring into existence at zero on first use. Values may be int
    or float (cycle totals stay integral; derived rates are floats).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value``, overwriting any prior value."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Return the value of ``name``, or ``default`` if never touched."""
        return self._counters.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(name, value)`` pairs in sorted name order."""
        return iter(sorted(self._counters.items()))

    def merge(self, other: "Stats") -> None:
        """Add every counter of ``other`` into this instance."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def scoped(self, prefix: str) -> "ScopedStats":
        """Return a view that prepends ``prefix + '.'`` to counter names."""
        return ScopedStats(self, prefix)

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """Return a dict of all counters whose name starts with ``prefix``."""
        dot = prefix if prefix.endswith(".") else prefix + "."
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(dot) or name == prefix
        }

    def snapshot(self) -> Dict[str, float]:
        """Return a plain-dict copy of all counters."""
        return dict(self._counters)

    def diff(self, earlier: Mapping[str, float]) -> Dict[str, float]:
        """Return counters minus an earlier :meth:`snapshot`."""
        out: Dict[str, float] = {}
        for name, value in self._counters.items():
            delta = value - earlier.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def clear(self) -> None:
        """Reset all counters."""
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats({len(self._counters)} counters)"


class ScopedStats:
    """A prefixing view over a parent :class:`Stats`.

    Components receive a scoped view so their counter names are local
    (``"hits"``) while the global namespace stays collision-free
    (``"l1d.hits"``).
    """

    def __init__(self, parent: Stats, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix.rstrip(".") + "."

    def add(self, name: str, amount: float = 1) -> None:
        self._parent.add(self._prefix + name, amount)

    def set(self, name: str, value: float) -> None:
        self._parent.set(self._prefix + name, value)

    def get(self, name: str, default: float = 0) -> float:
        return self._parent.get(self._prefix + name, default)

    def __getitem__(self, name: str) -> float:
        return self._parent[self._prefix + name]

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self._parent, self._prefix + prefix)
