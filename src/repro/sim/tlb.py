"""Two-level TLB model (Table 3: L1 64-entry 4-way, L2 2048-entry 12-way).

The TLB caches virtual-page to physical-frame translations. Misses trigger
a page walk through whichever page table owns the address — the kernel's
(via the CR3-rooted table) or Memento's (via the MPTR-rooted table); that
dispatch lives in the harness, not here.

Lookups run once per simulated line touch, so counters are interned
:class:`~repro.sim.stats.Counter` cells and the L1 probe is inlined into
``TlbHierarchy.lookup``. ``l1_hits`` is exposed so the harness's
consecutive-line fast path can account a hit without re-probing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim.params import MachineParams, TlbParams
from repro.sim.stats import Counter, ScopedStats, Stats


class Tlb:
    """One set-associative TLB level, LRU-replaced, keyed by virtual page."""

    __slots__ = (
        "params",
        "stats",
        "_num_sets",
        "_ways",
        "_sets",
        "_hits",
        "_misses",
        "_evictions",
        "_flushes",
    )

    def __init__(self, params: TlbParams, stats: ScopedStats) -> None:
        self.params = params
        self.stats = stats
        self._num_sets = max(1, params.entries // params.ways)
        self._ways = params.ways
        self._sets = [OrderedDict() for _ in range(self._num_sets)]
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._evictions = stats.counter("evictions")
        self._flushes = stats.counter("flushes")

    def _set_for(self, vpn: int) -> OrderedDict:
        return self._sets[vpn % self._num_sets]

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the cached frame for virtual page ``vpn``, or ``None``."""
        tlb_set = self._sets[vpn % self._num_sets]
        if vpn in tlb_set:
            tlb_set.move_to_end(vpn)
            self._hits.pending += 1
            return tlb_set[vpn]
        self._misses.pending += 1
        return None

    def insert(self, vpn: int, frame: int) -> None:
        """Install a translation, evicting LRU if the set is full."""
        tlb_set = self._sets[vpn % self._num_sets]
        if vpn in tlb_set:
            tlb_set.move_to_end(vpn)
            tlb_set[vpn] = frame
            return
        if len(tlb_set) >= self._ways:
            tlb_set.popitem(last=False)
            self._evictions.pending += 1
        tlb_set[vpn] = frame

    def invalidate(self, vpn: int) -> bool:
        """Shoot down one translation; return whether it was present."""
        tlb_set = self._set_for(vpn)
        if vpn in tlb_set:
            del tlb_set[vpn]
            return True
        return False

    def flush(self) -> None:
        """Drop every translation (context switch without ASIDs)."""
        for tlb_set in self._sets:
            tlb_set.clear()
        self._flushes.add()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class TlbHierarchy:
    """L1 + L2 TLB; a hit in either avoids the page walk."""

    __slots__ = (
        "l1",
        "l2",
        "l1_hits",
        "_l1_sets",
        "_l1_num_sets",
        "_l1_misses",
    )

    def __init__(self, params: MachineParams, stats: Stats) -> None:
        self.l1 = Tlb(params.tlb_l1, stats.scoped("tlb_l1"))
        self.l2 = Tlb(params.tlb_l2, stats.scoped("tlb_l2"))
        #: Interned L1-hit cell, public for the harness's same-page fast
        #: path (a consecutive-line access that skips the probe still hits
        #: the L1 TLB in hardware and must be counted as one).
        self.l1_hits: Counter = self.l1._hits
        self._l1_sets = self.l1._sets
        self._l1_num_sets = self.l1._num_sets
        self._l1_misses = self.l1._misses

    def lookup(self, vpn: int) -> Optional[int]:
        """Translate ``vpn`` if cached; promotes L2 hits into the L1."""
        # Inlined L1 probe — the common case on replay.
        tlb_set = self._l1_sets[vpn % self._l1_num_sets]
        if vpn in tlb_set:
            tlb_set.move_to_end(vpn)
            self.l1_hits.pending += 1
            return tlb_set[vpn]
        self._l1_misses.pending += 1
        frame = self.l2.lookup(vpn)
        if frame is not None:
            self.l1.insert(vpn, frame)
        return frame

    def insert(self, vpn: int, frame: int) -> None:
        """Install a completed walk into both levels."""
        self.l1.insert(vpn, frame)
        self.l2.insert(vpn, frame)

    def invalidate(self, vpn: int) -> None:
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
