"""Simulated machine substrate.

This package models the hardware platform of Table 3 in the paper: a
multi-level cache hierarchy, a two-level TLB, DRAM traffic accounting, a
physical frame space, and the calibrated per-operation cycle cost model that
every other subsystem charges against.

The model is *behavioral*: it tracks hits, misses, traffic, and cycles, not
per-instruction microarchitecture. See DESIGN.md section 2 for why this
substitution preserves the paper's conclusions.
"""

from repro.sim.cache import Cache, CacheHierarchy, MemLevel
from repro.sim.cycles import CostModel
from repro.sim.dram import Dram
from repro.sim.machine import Core, Machine
from repro.sim.memory import FrameSpace
from repro.sim.params import MachineParams
from repro.sim.stats import Stats
from repro.sim.tlb import Tlb, TlbHierarchy

__all__ = [
    "Cache",
    "CacheHierarchy",
    "Core",
    "CostModel",
    "Dram",
    "FrameSpace",
    "Machine",
    "MachineParams",
    "MemLevel",
    "Stats",
    "Tlb",
    "TlbHierarchy",
]
