"""Set-associative cache models and the three-level hierarchy.

Caches are write-back, write-allocate, LRU. The hierarchy is non-inclusive
(each level tracks its own contents; dirty evictions are installed into the
next level down). This matches the fidelity the evaluation needs: hit/miss
classification, DRAM traffic, and the LLC-instantiation path used by the
main-memory bypass mechanism (§3.3).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.params import CacheParams, LINE_SHIFT, MachineParams
from repro.sim.stats import ScopedStats, Stats


class MemLevel(enum.IntEnum):
    """The level of the hierarchy that satisfied an access."""

    L1 = 1
    L2 = 2
    LLC = 3
    DRAM = 4


class Cache:
    """One set-associative cache level.

    Lines are identified by their line address (byte address >> 6). Sets are
    ``OrderedDict`` instances ordered least- to most-recently used, mapping
    line address to a dirty bit.
    """

    def __init__(self, params: CacheParams, stats: ScopedStats) -> None:
        self.params = params
        self.stats = stats
        self._num_sets = params.num_sets
        self._ways = params.ways
        self._sets = [OrderedDict() for _ in range(self._num_sets)]

    def _set_for(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr % self._num_sets]

    def lookup(self, line_addr: int, write: bool) -> bool:
        """Probe for ``line_addr``; update LRU and dirty state on a hit."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if write:
                cache_set[line_addr] = True
            self.stats.add("hits")
            return True
        self.stats.add("misses")
        return False

    def insert(
        self, line_addr: int, dirty: bool
    ) -> Optional[Tuple[int, bool]]:
        """Install ``line_addr``; return ``(victim, victim_dirty)`` if one
        was evicted, else ``None``."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            cache_set[line_addr] = cache_set[line_addr] or dirty
            return None
        victim = None
        if len(cache_set) >= self._ways:
            victim_addr, victim_dirty = cache_set.popitem(last=False)
            victim = (victim_addr, victim_dirty)
            self.stats.add("evictions")
            if victim_dirty:
                self.stats.add("dirty_evictions")
        cache_set[line_addr] = dirty
        return victim

    def invalidate(self, line_addr: int) -> bool:
        """Drop ``line_addr`` if present; return whether it was present."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            del cache_set[line_addr]
            return True
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without touching LRU or stats (used by tests)."""
        return line_addr in self._set_for(line_addr)

    def flush(self) -> int:
        """Drop all contents; return the number of dirty lines discarded."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for flag in cache_set.values() if flag)
            cache_set.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


@dataclass
class AccessResult:
    """Outcome of one line access through the hierarchy."""

    level: MemLevel
    cycles: int


class CacheHierarchy:
    """L1D/L2/LLC hierarchy with DRAM traffic accounting.

    ``access`` walks an address down the hierarchy charging each level's
    latency until it hits; a full miss charges the DRAM latency and records
    64 B of read traffic. Dirty victims evicted from the LLC record
    writeback traffic. ``instantiate`` implements the main-memory bypass
    fill: the line is created in the LLC (then promoted inward) without
    touching DRAM.
    """

    def __init__(
        self, params: MachineParams, stats: Stats, dram, on_writeback=None
    ) -> None:
        self.params = params
        self.dram = dram
        #: Charged per dirty LLC eviction (bandwidth backpressure on the
        #: requesting core); wired by Core.
        self.on_writeback = on_writeback or (lambda: None)
        self.l1d = Cache(params.l1d, stats.scoped("l1d"))
        self.l2 = Cache(params.l2, stats.scoped("l2"))
        self.llc = Cache(params.llc, stats.scoped("llc"))
        self.stats = stats.scoped("hierarchy")

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Access the byte address ``addr``; returns level and cycles."""
        line = addr >> LINE_SHIFT
        return self.access_line(line, write)

    def access_line(self, line: int, write: bool = False) -> AccessResult:
        """Access one line address through L1 → L2 → LLC → DRAM."""
        cycles = self.params.l1d.latency
        if self.l1d.lookup(line, write):
            return AccessResult(MemLevel.L1, cycles)

        cycles += self.params.l2.latency
        if self.l2.lookup(line, write=False):
            self._fill_l1(line, write)
            return AccessResult(MemLevel.L2, cycles)

        cycles += self.params.llc.latency
        if self.llc.lookup(line, write=False):
            self._fill_l2(line)
            self._fill_l1(line, write)
            return AccessResult(MemLevel.LLC, cycles)

        # Full miss: fetch from DRAM.
        cycles += self.params.dram_latency
        self.dram.record_read_line()
        self._fill_llc(line, dirty=False)
        self._fill_l2(line)
        self._fill_l1(line, write)
        return AccessResult(MemLevel.DRAM, cycles)

    def instantiate(self, addr: int, write: bool = True) -> AccessResult:
        """Bypass fill (§3.3): create the line in the LLC without DRAM.

        The request propagates regularly to the LLC to keep coherence
        simple; the line is zero-instantiated there and promoted inward.
        """
        line = addr >> LINE_SHIFT
        cycles = (
            self.params.l1d.latency
            + self.params.l2.latency
            + self.params.llc.latency
        )
        self.stats.add("bypass_fills")
        self._fill_llc(line, dirty=True)
        self._fill_l2(line)
        self._fill_l1(line, write)
        return AccessResult(MemLevel.LLC, cycles)

    def zero_fill_page(self, paddr_base: int) -> None:
        """Model kernel page zeroing at fault time: the 64 lines of the
        page are written through the hierarchy (temporal stores), landing
        dirty in the LLC and warming it for the faulting access. Their
        eventual dirty evictions produce the zeroing's DRAM write traffic.
        """
        base_line = paddr_base >> LINE_SHIFT
        for index in range(64):
            self._fill_llc(base_line + index, dirty=True)
        self.stats.add("zero_filled_pages")

    def present(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is anywhere in the hierarchy."""
        line = addr >> LINE_SHIFT
        return (
            self.l1d.contains(line)
            or self.l2.contains(line)
            or self.llc.contains(line)
        )

    def flush_all(self) -> None:
        """Write back and drop everything (context-switch / cold-start)."""
        for cache in (self.l1d, self.l2):
            cache.flush()
        dirty = self.llc.flush()
        for _ in range(dirty):
            self.dram.record_write_line()

    # -- internal fills ---------------------------------------------------

    def _fill_l1(self, line: int, write: bool) -> None:
        victim = self.l1d.insert(line, dirty=write)
        if victim is not None and victim[1]:
            self.l2.insert(victim[0], dirty=True)

    def _fill_l2(self, line: int) -> None:
        victim = self.l2.insert(line, dirty=False)
        if victim is not None and victim[1]:
            self.llc.insert(victim[0], dirty=True)

    def _fill_llc(self, line: int, dirty: bool) -> None:
        victim = self.llc.insert(line, dirty=dirty)
        if victim is not None and victim[1]:
            self.dram.record_write_line()
            self.on_writeback()
