"""Set-associative cache models and the three-level hierarchy.

Caches are write-back, write-allocate, LRU. The hierarchy is non-inclusive
(each level tracks its own contents; dirty evictions are installed into the
next level down). This matches the fidelity the evaluation needs: hit/miss
classification, DRAM traffic, and the LLC-instantiation path used by the
main-memory bypass mechanism (§3.3).

This module is the innermost ring of the replay hot loop (one access per
simulated line touch, walk step, and allocator metadata update), so it is
written for speed: counters are interned :class:`~repro.sim.stats.Counter`
cells, per-level latencies are hoisted into instance attributes at
construction, the L1 probe is inlined into ``access_line``, and the
``AccessResult`` for each (level, cycles) outcome is preallocated once —
a hit allocates nothing.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import List, NamedTuple, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs import profile as obs_profile
from repro.sim.params import CacheParams, LINE_SHIFT, LINE_SIZE, MachineParams
from repro.sim.stats import ScopedStats, Stats


class MemLevel(enum.IntEnum):
    """The level of the hierarchy that satisfied an access."""

    L1 = 1
    L2 = 2
    LLC = 3
    DRAM = 4


class AccessResult(NamedTuple):
    """Outcome of one line access through the hierarchy.

    A named tuple rather than a dataclass so results unpack like
    ``(level, cycles)`` pairs and the hierarchy can hand back preallocated
    instances on the hot path.
    """

    level: MemLevel
    cycles: int


class Cache:
    """One set-associative cache level.

    Lines are identified by their line address (byte address >> 6). Sets are
    ``OrderedDict`` instances ordered least- to most-recently used, mapping
    line address to a dirty bit.
    """

    __slots__ = (
        "params",
        "stats",
        "_num_sets",
        "_ways",
        "_sets",
        "_hits",
        "_misses",
        "_evictions",
        "_dirty_evictions",
    )

    def __init__(self, params: CacheParams, stats: ScopedStats) -> None:
        self.params = params
        self.stats = stats
        self._num_sets = params.num_sets
        self._ways = params.ways
        self._sets = [OrderedDict() for _ in range(self._num_sets)]
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._evictions = stats.counter("evictions")
        self._dirty_evictions = stats.counter("dirty_evictions")

    def _set_for(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr % self._num_sets]

    def lookup(self, line_addr: int, write: bool) -> bool:
        """Probe for ``line_addr``; update LRU and dirty state on a hit."""
        cache_set = self._sets[line_addr % self._num_sets]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if write:
                cache_set[line_addr] = True
            self._hits.pending += 1
            return True
        self._misses.pending += 1
        return False

    def insert(
        self, line_addr: int, dirty: bool
    ) -> Optional[Tuple[int, bool]]:
        """Install ``line_addr``; return ``(victim, victim_dirty)`` if one
        was evicted, else ``None``."""
        cache_set = self._sets[line_addr % self._num_sets]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            cache_set[line_addr] = cache_set[line_addr] or dirty
            return None
        victim = None
        if len(cache_set) >= self._ways:
            victim_addr, victim_dirty = cache_set.popitem(last=False)
            victim = (victim_addr, victim_dirty)
            self._evictions.pending += 1
            if victim_dirty:
                self._dirty_evictions.pending += 1
        cache_set[line_addr] = dirty
        return victim

    def invalidate(self, line_addr: int) -> bool:
        """Drop ``line_addr`` if present; return whether it was present."""
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            del cache_set[line_addr]
            return True
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without touching LRU or stats (used by tests)."""
        return line_addr in self._set_for(line_addr)

    def flush(self) -> int:
        """Drop all contents; return the number of dirty lines discarded."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for flag in cache_set.values() if flag)
            cache_set.clear()
        return dirty

    def flush_dirty(self) -> List[int]:
        """Drop all contents; return the dirty line addresses so the
        caller can write them back (the hierarchy installs them into the
        next level down instead of silently losing the traffic)."""
        dirty: List[int] = []
        for cache_set in self._sets:
            dirty.extend(
                line for line, flag in cache_set.items() if flag
            )
            cache_set.clear()
        return dirty

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """L1D/L2/LLC hierarchy with DRAM traffic accounting.

    ``access`` walks an address down the hierarchy charging each level's
    latency until it hits; a full miss charges the DRAM latency and records
    64 B of read traffic. Dirty victims evicted from the LLC record
    writeback traffic. ``instantiate`` implements the main-memory bypass
    fill: the line is created in the LLC (then promoted inward) without
    touching DRAM.
    """

    __slots__ = (
        "params",
        "dram",
        "on_writeback",
        "l1d",
        "l2",
        "llc",
        "stats",
        "_l1_sets",
        "_l1_num_sets",
        "_l1_ways",
        "_l1_hits",
        "_l1_misses",
        "_l1_evictions",
        "_l1_dirty_evictions",
        "_l2_sets",
        "_l2_num_sets",
        "_l2_ways",
        "_l2_hits",
        "_l2_misses",
        "_l2_evictions",
        "_l2_dirty_evictions",
        "_llc_sets",
        "_llc_num_sets",
        "_llc_ways",
        "_llc_hits",
        "_llc_misses",
        "_llc_evictions",
        "_llc_dirty_evictions",
        "_dram_read_lines",
        "_dram_read_bytes",
        "_dram_write_lines",
        "_dram_write_bytes",
        "_bypass_fills",
        "_zero_filled_pages",
        "_r_l1",
        "_r_l2",
        "_r_llc",
        "_r_dram",
        "_r_bypass",
        "access_line",
        "instantiate",
    )

    def __init__(
        self, params: MachineParams, stats: Stats, dram, on_writeback=None
    ) -> None:
        self.params = params
        self.dram = dram
        #: Charged per dirty LLC eviction (bandwidth backpressure on the
        #: requesting core); wired by Core.
        self.on_writeback = on_writeback or (lambda: None)
        self.l1d = Cache(params.l1d, stats.scoped("l1d"))
        self.l2 = Cache(params.l2, stats.scoped("l2"))
        self.llc = Cache(params.llc, stats.scoped("llc"))
        self.stats = stats.scoped("hierarchy")
        # Hot-path state: the L1 probe is inlined into access_line, and
        # the (level, cycles) result of every outcome is a constant of the
        # configured geometry, so each is built exactly once.
        self._l1_sets = self.l1d._sets
        self._l1_num_sets = self.l1d._num_sets
        self._l1_ways = self.l1d._ways
        self._l1_hits = self.l1d._hits
        self._l1_misses = self.l1d._misses
        self._l1_evictions = self.l1d._evictions
        self._l1_dirty_evictions = self.l1d._dirty_evictions
        self._l2_sets = self.l2._sets
        self._l2_num_sets = self.l2._num_sets
        self._l2_ways = self.l2._ways
        self._l2_hits = self.l2._hits
        self._l2_misses = self.l2._misses
        self._l2_evictions = self.l2._evictions
        self._l2_dirty_evictions = self.l2._dirty_evictions
        self._llc_sets = self.llc._sets
        self._llc_num_sets = self.llc._num_sets
        self._llc_ways = self.llc._ways
        self._llc_hits = self.llc._hits
        self._llc_misses = self.llc._misses
        self._llc_evictions = self.llc._evictions
        self._llc_dirty_evictions = self.llc._dirty_evictions
        self._dram_read_lines = dram._read_lines
        self._dram_read_bytes = dram._read_bytes
        self._dram_write_lines = dram._write_lines
        self._dram_write_bytes = dram._write_bytes
        self._bypass_fills = self.stats.counter("bypass_fills")
        self._zero_filled_pages = self.stats.counter("zero_filled_pages")
        l1_lat = params.l1d.latency
        l2_lat = l1_lat + params.l2.latency
        llc_lat = l2_lat + params.llc.latency
        self._r_l1 = AccessResult(MemLevel.L1, l1_lat)
        self._r_l2 = AccessResult(MemLevel.L2, l2_lat)
        self._r_llc = AccessResult(MemLevel.LLC, llc_lat)
        self._r_dram = AccessResult(MemLevel.DRAM, llc_lat + params.dram_latency)
        self._r_bypass = AccessResult(MemLevel.LLC, llc_lat)
        # The two hot entry points are built as closures over the hoisted
        # state above: every cell, set list, and constant loads from a
        # captured local instead of an attribute chase through ``self``.
        self.access_line = self._make_access_line()
        self.instantiate = self._make_instantiate()

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Access the byte address ``addr``; returns level and cycles."""
        return self.access_line(addr >> LINE_SHIFT, write)

    def _make_access_line(self):
        """Build ``access_line``: one line address through L1 → L2 → LLC
        → DRAM.

        Every probe and fill is inlined: on any outcome the line lands in
        the L1 (and inner levels fill on the way up), victims cascade
        outward exactly as the per-level ``lookup``/``insert`` methods
        would move them, and the same counters advance — this is the
        single hottest function of a replay, so it pays for the
        duplication.
        """
        l1_sets = self._l1_sets
        l1_num_sets = self._l1_num_sets
        l1_ways = self._l1_ways
        l1_hits = self._l1_hits
        l1_misses = self._l1_misses
        l1_evictions = self._l1_evictions
        l1_dirty_evictions = self._l1_dirty_evictions
        l2_sets = self._l2_sets
        l2_num_sets = self._l2_num_sets
        l2_ways = self._l2_ways
        l2_hits = self._l2_hits
        l2_misses = self._l2_misses
        l2_evictions = self._l2_evictions
        l2_dirty_evictions = self._l2_dirty_evictions
        llc_sets = self._llc_sets
        llc_num_sets = self._llc_num_sets
        llc_ways = self._llc_ways
        llc_hits = self._llc_hits
        llc_misses = self._llc_misses
        llc_evictions = self._llc_evictions
        llc_dirty_evictions = self._llc_dirty_evictions
        dram_read_lines = self._dram_read_lines
        dram_read_bytes = self._dram_read_bytes
        dram_write_lines = self._dram_write_lines
        dram_write_bytes = self._dram_write_bytes
        on_writeback = self.on_writeback
        r_l1 = self._r_l1
        r_l2 = self._r_l2
        r_llc = self._r_llc
        r_dram = self._r_dram
        line_size = LINE_SIZE

        def access_line(line, write=False):
            # Inlined L1 probe — the overwhelmingly common case.
            l1_set = l1_sets[line % l1_num_sets]
            if line in l1_set:
                l1_set.move_to_end(line)
                if write:
                    l1_set[line] = True
                l1_hits.pending += 1
                return r_l1
            l1_misses.pending += 1

            l2_set = l2_sets[line % l2_num_sets]
            if line in l2_set:
                l2_set.move_to_end(line)
                l2_hits.pending += 1
                result = r_l2
            else:
                l2_misses.pending += 1
                llc_set = llc_sets[line % llc_num_sets]
                if line in llc_set:
                    llc_set.move_to_end(line)
                    llc_hits.pending += 1
                    result = r_llc
                else:
                    # Full miss: fetch from DRAM and fill the LLC.
                    llc_misses.pending += 1
                    dram_read_lines.pending += 1
                    dram_read_bytes.pending += line_size
                    if len(llc_set) >= llc_ways:
                        victim_dirty = llc_set.popitem(last=False)[1]
                        llc_evictions.pending += 1
                        if victim_dirty:
                            llc_dirty_evictions.pending += 1
                            dram_write_lines.pending += 1
                            dram_write_bytes.pending += line_size
                            on_writeback()
                    llc_set[line] = False
                    result = r_dram
                # Fill the L2 (the line was not present — we missed it).
                if len(l2_set) >= l2_ways:
                    victim_addr, victim_dirty = l2_set.popitem(last=False)
                    l2_evictions.pending += 1
                    if victim_dirty:
                        l2_dirty_evictions.pending += 1
                        # Inlined llc.insert(victim, dirty=True); its own
                        # victim is dropped without a DRAM writeback,
                        # exactly as the insert-call form discarded the
                        # return value.
                        v_set = llc_sets[victim_addr % llc_num_sets]
                        if victim_addr in v_set:
                            v_set.move_to_end(victim_addr)
                            v_set[victim_addr] = True
                        else:
                            if len(v_set) >= llc_ways:
                                llc_evictions.pending += 1
                                if v_set.popitem(last=False)[1]:
                                    llc_dirty_evictions.pending += 1
                            v_set[victim_addr] = True
                l2_set[line] = False
            # Fill the L1 (missed above; victims spill dirty into L2).
            if len(l1_set) >= l1_ways:
                victim_addr, victim_dirty = l1_set.popitem(last=False)
                l1_evictions.pending += 1
                if victim_dirty:
                    l1_dirty_evictions.pending += 1
                    # Inlined l2.insert(victim, dirty=True), victim dropped.
                    v_set = l2_sets[victim_addr % l2_num_sets]
                    if victim_addr in v_set:
                        v_set.move_to_end(victim_addr)
                        v_set[victim_addr] = True
                    else:
                        if len(v_set) >= l2_ways:
                            l2_evictions.pending += 1
                            if v_set.popitem(last=False)[1]:
                                l2_dirty_evictions.pending += 1
                        v_set[victim_addr] = True
            l1_set[line] = write
            return result

        # Cycle-attribution profiling is bound at construction exactly
        # like the instantiate ring wrapper below: with no profile
        # installed (the default) the un-wrapped closure is returned, so
        # the disabled replay path is byte-identical. The wrapper only
        # samples outer-level outcomes into latency histograms and the
        # cross-category ``dram.access`` overlay — it never charges
        # cycles, so results are unchanged either way.
        profile = obs_profile.PROFILE
        if profile is None:
            return access_line
        h_llc = profile.hist("op.llc_access")
        h_dram = profile.hist("op.dram_access")
        dram_cell = profile.cell("dram.access")
        inner = access_line

        def access_line(line, write=False):
            result = inner(line, write)
            if result is r_dram:
                h_dram.record(r_dram.cycles)
                dram_cell.count += 1
                dram_cell.cycles += r_dram.cycles
            elif result is r_llc:
                h_llc.record(r_llc.cycles)
            return result

        return access_line

    def _make_instantiate(self):
        """Build ``instantiate``: the bypass fill (§3.3) — create the line
        in the LLC without DRAM.

        The request propagates regularly to the LLC to keep coherence
        simple; the line is zero-instantiated there and promoted inward.
        Fills (LLC dirty, then L2, then L1) are inlined — this runs once
        per bypassed line on the Memento stack, second only to
        ``access_line``.
        """
        l1_sets = self._l1_sets
        l1_num_sets = self._l1_num_sets
        l1_ways = self._l1_ways
        l1_evictions = self._l1_evictions
        l1_dirty_evictions = self._l1_dirty_evictions
        l2_sets = self._l2_sets
        l2_num_sets = self._l2_num_sets
        l2_ways = self._l2_ways
        l2_evictions = self._l2_evictions
        l2_dirty_evictions = self._l2_dirty_evictions
        llc_sets = self._llc_sets
        llc_num_sets = self._llc_num_sets
        llc_ways = self._llc_ways
        llc_evictions = self._llc_evictions
        llc_dirty_evictions = self._llc_dirty_evictions
        dram_write_lines = self._dram_write_lines
        dram_write_bytes = self._dram_write_bytes
        on_writeback = self.on_writeback
        bypass_fills = self._bypass_fills
        r_bypass = self._r_bypass
        line_size = LINE_SIZE
        line_shift = LINE_SHIFT

        def instantiate(addr, write=True):
            line = addr >> line_shift
            bypass_fills.pending += 1
            llc_set = llc_sets[line % llc_num_sets]
            if line in llc_set:
                llc_set.move_to_end(line)
                llc_set[line] = True
            else:
                if len(llc_set) >= llc_ways:
                    victim_dirty = llc_set.popitem(last=False)[1]
                    llc_evictions.pending += 1
                    if victim_dirty:
                        llc_dirty_evictions.pending += 1
                        dram_write_lines.pending += 1
                        dram_write_bytes.pending += line_size
                        on_writeback()
                llc_set[line] = True
            l2_set = l2_sets[line % l2_num_sets]
            if line in l2_set:
                l2_set.move_to_end(line)
            else:
                if len(l2_set) >= l2_ways:
                    victim_addr, victim_dirty = l2_set.popitem(last=False)
                    l2_evictions.pending += 1
                    if victim_dirty:
                        l2_dirty_evictions.pending += 1
                        # Inlined llc.insert(victim, True), victim dropped.
                        v_set = llc_sets[victim_addr % llc_num_sets]
                        if victim_addr in v_set:
                            v_set.move_to_end(victim_addr)
                            v_set[victim_addr] = True
                        else:
                            if len(v_set) >= llc_ways:
                                llc_evictions.pending += 1
                                if v_set.popitem(last=False)[1]:
                                    llc_dirty_evictions.pending += 1
                            v_set[victim_addr] = True
                l2_set[line] = False
            l1_set = l1_sets[line % l1_num_sets]
            if line in l1_set:
                l1_set.move_to_end(line)
                l1_set[line] = l1_set[line] or write
            else:
                if len(l1_set) >= l1_ways:
                    victim_addr, victim_dirty = l1_set.popitem(last=False)
                    l1_evictions.pending += 1
                    if victim_dirty:
                        l1_dirty_evictions.pending += 1
                        # Inlined l2.insert(victim, True), victim dropped.
                        v_set = l2_sets[victim_addr % l2_num_sets]
                        if victim_addr in v_set:
                            v_set.move_to_end(victim_addr)
                            v_set[victim_addr] = True
                        else:
                            if len(v_set) >= l2_ways:
                                l2_evictions.pending += 1
                                if v_set.popitem(last=False)[1]:
                                    l2_dirty_evictions.pending += 1
                            v_set[victim_addr] = True
                l1_set[line] = write
            return r_bypass

        # Event-ring sampling is bound at construction: with no ring
        # installed (the default) the un-wrapped closure above is
        # returned, so the disabled path carries zero extra work.
        ring = obs_events.RING
        if ring is None:
            return instantiate
        record = ring.record
        inner = instantiate

        def instantiate(addr, write=True):
            record("bypass.instantiate", addr)
            return inner(addr, write)

        return instantiate

    def zero_fill_page(self, paddr_base: int) -> None:
        """Model kernel page zeroing at fault time: the 64 lines of the
        page are written through the hierarchy (temporal stores), landing
        dirty in the LLC and warming it for the faulting access. Their
        eventual dirty evictions produce the zeroing's DRAM write traffic.
        """
        # 64 dirty LLC fills with the insert bodies inlined — page faults
        # run this for every mapped page, which makes it the hottest bulk
        # operation on the baseline stack.
        base_line = paddr_base >> LINE_SHIFT
        llc_sets = self._llc_sets
        num_sets = self._llc_num_sets
        ways = self._llc_ways
        record_write = self.dram.record_write_line
        on_writeback = self.on_writeback
        evictions = self._llc_evictions
        dirty_evictions = self._llc_dirty_evictions
        for line in range(base_line, base_line + 64):
            cache_set = llc_sets[line % num_sets]
            if line in cache_set:
                cache_set.move_to_end(line)
                cache_set[line] = True
                continue
            if len(cache_set) >= ways:
                victim_dirty = cache_set.popitem(last=False)[1]
                evictions.pending += 1
                if victim_dirty:
                    dirty_evictions.pending += 1
                    record_write()
                    on_writeback()
            cache_set[line] = True
        self._zero_filled_pages.pending += 1

    def present(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is anywhere in the hierarchy."""
        line = addr >> LINE_SHIFT
        return (
            self.l1d.contains(line)
            or self.l2.contains(line)
            or self.llc.contains(line)
        )

    def flush_all(self) -> None:
        """Write back and drop everything (context-switch / cold-start).

        Dirty lines are not lost: L1 victims install into the L2, L2
        victims into the LLC (evictions cascading to DRAM as usual), and
        dirty LLC lines write back to DRAM directly — so the flush's DRAM
        write traffic is fully accounted.
        """
        for line in self.l1d.flush_dirty():
            victim = self.l2.insert(line, dirty=True)
            if victim is not None and victim[1]:
                self._fill_llc(victim[0], dirty=True)
        for line in self.l2.flush_dirty():
            self._fill_llc(line, dirty=True)
        dirty = self.llc.flush()
        for _ in range(dirty):
            self.dram.record_write_line()

    # -- internal fills ---------------------------------------------------

    def _fill_llc(self, line: int, dirty: bool) -> None:
        victim = self.llc.insert(line, dirty=dirty)
        if victim is not None and victim[1]:
            self.dram.record_write_line()
            self.on_writeback()
