"""Machine configuration mirroring Table 3 of the paper.

All structural parameters of the simulated platform live here so that
sensitivity studies (e.g. the iso-storage 9-way L1D comparison of §6.1) are
expressed as parameter changes rather than code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

PAGE_SIZE = 4096
PAGE_SHIFT = 12
LINE_SIZE = 64
LINE_SHIFT = 6
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int  # access latency in cycles
    line_size: int = LINE_SIZE

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.ways)


@dataclass(frozen=True)
class TlbParams:
    """Geometry of one TLB level."""

    entries: int
    ways: int


@dataclass(frozen=True)
class MachineParams:
    """Full platform configuration (Table 3 defaults).

    CPU: 4-issue OOO at 3 GHz with a 256-entry ROB and 64-entry LSQ. The
    behavioral model does not simulate the pipeline; the frequency is used
    to convert cycles to wall time for pricing, and issue width feeds the
    instruction-cost-to-cycle conversion.
    """

    freq_hz: float = 3.0e9
    issue_width: int = 4
    rob_entries: int = 256
    lsq_entries: int = 64
    num_cores: int = 1

    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(32 * 1024, 8, 2)
    )
    l1i: CacheParams = field(
        default_factory=lambda: CacheParams(32 * 1024, 8, 2)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(256 * 1024, 8, 14)
    )
    llc: CacheParams = field(
        default_factory=lambda: CacheParams(2 * 1024 * 1024, 16, 40)
    )

    tlb_l1: TlbParams = field(default_factory=lambda: TlbParams(64, 4))
    tlb_l2: TlbParams = field(default_factory=lambda: TlbParams(2048, 12))

    dram_gb: int = 64
    dram_latency: int = 200  # cycles for a line fetch reaching DRAM
    dram_banks: int = 16

    # Memento hardware structures (Table 3): HOT is a 3.4 KB direct-mapped
    # 2-cycle structure; the AAC is a 32-entry direct-mapped 1-cycle cache.
    hot_size_bytes: int = 3481  # 3.4 KB
    hot_latency: int = 2
    aac_entries: int = 32
    aac_latency: int = 1

    def with_iso_storage_l1d(self) -> "MachineParams":
        """Return params for the §6.1 iso-storage comparison.

        The HOT's SRAM budget is granted to the L1D instead, growing it from
        8-way to a hypothetical 9-way at unchanged latency, and Memento is
        disabled by the caller.
        """
        bigger = CacheParams(
            size_bytes=self.l1d.size_bytes * 9 // 8,
            ways=9,
            latency=self.l1d.latency,
        )
        return replace(self, l1d=bigger)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the configured frequency."""
        return cycles / self.freq_hz


DEFAULT_PARAMS = MachineParams()
