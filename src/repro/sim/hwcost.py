"""Hardware area/power cost of Memento's structures (Table 3).

The paper evaluates the HOT and AAC with CACTI 6.5 at a 22 nm node. CACTI
is a closed C++ tool we cannot ship; the published outputs are carried here
as data, together with a small analytical sanity model (SRAM bit count) used
by tests to confirm the structures' sizes are self-consistent with the
paper's geometry (64 size classes, 256-object arenas).
"""

from __future__ import annotations

from dataclasses import dataclass

#: One HOT entry per 8-byte size class up to 512 B.
NUM_SIZE_CLASSES = 64


@dataclass(frozen=True)
class StructureCost:
    """Published CACTI 6.5 @22 nm figures for one hardware structure."""

    name: str
    size_bytes: float
    latency_cycles: int
    power_mw: float
    area_mm2: float


HOT_COST = StructureCost(
    name="HOT",
    size_bytes=3.4 * 1024,
    latency_cycles=2,
    power_mw=1.32,
    area_mm2=0.0084,
)

AAC_COST = StructureCost(
    name="AAC",
    size_bytes=32 * 16,  # 32 entries of per-core size-class pointers
    latency_cycles=1,
    power_mw=0.43,
    area_mm2=0.0023,
)


def hot_entry_bits(
    bitmap_bits: int = 256,
    va_bits: int = 48,
    pa_bits: int = 40,
    list_head_bits: int = 40,
    bypass_bits: int = 11,
) -> int:
    """Bits in one HOT entry.

    The entry caches the header's VA, allocation bitmap, and bypass counter
    (Fig. 5a) and adds the PA field plus the available- and full-list head
    pointers (Fig. 5b). The header's own prev/next pointers stay in memory.
    Physical pointers need only 40 bits on a 64 GB machine.
    """
    cached_header = va_bits + bitmap_bits + bypass_bits
    entry_extra = pa_bits + 2 * list_head_bits
    return cached_header + entry_extra


def hot_total_bytes(num_size_classes: int = NUM_SIZE_CLASSES) -> float:
    """Analytic HOT capacity; 3480 B ≈ 3.4 KB for 64 classes (Table 3)."""
    return num_size_classes * hot_entry_bits() / 8.0
