"""Calibrated per-operation cycle cost model.

The behavioral simulator charges cycles for each memory-management operation
instead of executing instructions. The constants here are calibrated from
the paper's own statements:

* Table 3 latencies (L1 2 cycles, L2 14, LLC 40, HOT 2, AAC 1).
* Section 1: userspace allocation/free "typically requires tens of
  instructions in popular high-level languages", and the kernel path
  (mmap + page-fault handling) requires "additional thousands of
  instructions".
* Section 3.1: HOT hits complete "within only a few cycles" (2 cycles,
  per §6.4).
* Section 6.4: HOT hits are completed in two cycles without memory
  requests.

Costs for the software allocators differ per language runtime: CPython's
pymalloc runs under the interpreter, so its fast path is several times more
expensive than jemalloc's compiled fast path; Go sits in between, and adds
garbage-collection bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class UserAllocCosts:
    """Userspace software-allocator cycle costs for one language runtime."""

    alloc_fast: int  # free object available on the size-class free list
    alloc_slow: int  # carve a new pool / span (no syscall)
    free_fast: int  # push onto free list
    free_slow: int  # pool/arena recycling list surgery
    wrapper: int  # residual cost of reaching the allocation site with
    # Memento (argument marshalling + size check that routes
    # small requests to obj-alloc)
    gc_per_object: int = 0  # amortized GC bookkeeping per allocation


# Fast paths: "tens of instructions"; interpreted runtimes pay interpreter
# dispatch on top (pymalloc is reached through C but CPython allocates
# container/object headers around every user allocation).
PYTHON_COSTS = UserAllocCosts(
    alloc_fast=85, alloc_slow=420, free_fast=88, free_slow=380, wrapper=12
)
CPP_COSTS = UserAllocCosts(
    alloc_fast=34, alloc_slow=310, free_fast=28, free_slow=290, wrapper=4
)
# Go's allocation fast path zeroes the object, consults the mcache and
# heap bitmap, and runs the write-barrier bookkeeping — pricier than a
# pointer-bump malloc.
GO_COSTS = UserAllocCosts(
    alloc_fast=88,
    alloc_slow=360,
    free_fast=30,
    free_slow=300,
    wrapper=6,
    gc_per_object=20,
)

LANGUAGE_COSTS: Dict[str, UserAllocCosts] = {
    "python": PYTHON_COSTS,
    "cpp": CPP_COSTS,
    "go": GO_COSTS,
}


@dataclass(frozen=True)
class CostModel:
    """All cycle costs charged by the simulation.

    Kernel-path costs follow the "thousands of instructions" observation:
    a 4-issue core retiring roughly 1-2 kernel instructions per cycle puts
    an mmap call or a page fault in the low-thousands of cycles, consistent
    with published Linux measurements.
    """

    # --- kernel ---
    syscall_entry_exit: int = 800  # trap + mode switches + return
    # (containerized kernel: cgroup accounting + spectre mitigations)
    mmap_base: int = 1900  # VMA lookup/insert + bookkeeping
    munmap_base: int = 1700
    munmap_per_page: int = 260  # PTE teardown + physical free per page
    page_fault: int = 3600  # trap + handler + buddy alloc + PTE install
    # (containerized kernel; entry/exit mitigations included)
    page_zero: int = 560  # clearing a 4 KB page at fault time
    context_switch: int = 2400
    buddy_alloc: int = 120  # physical page allocation inside the kernel
    buddy_free: int = 90
    #: Per-page cost of MAP_POPULATE batch backing: a tight kernel loop
    #: (alloc + clear_page + PTE store) with no per-page trap.
    populate_per_page: int = 170

    # --- rival stacks (repro.stacks) ---
    #: Per-invocation setup of a REAP-style restore: open the snapshot,
    #: map the recorded working set (Table-3-scale fixed latency).
    snapshot_restore_base: int = 2200
    #: Install one recorded page on restore: a batched read + PTE store,
    #: cheaper than a demand fault (no trap, no zeroing) but dearer than
    #: MAP_POPULATE backing (the page's bytes come off the snapshot).
    snapshot_restore_per_page: int = 480
    #: Return one arena page to the host pool at function exit
    #: (Squeezy-style release: an madvise-scale per-page teardown).
    reclaim_release_per_page: int = 150

    # --- Memento hardware ---
    hot_hit: int = 2
    hot_miss_header_fetch: int = 42  # header load from the hierarchy (≈LLC)
    hot_writeback: int = 12  # replaced entry written toward memory
    list_op: int = 10  # one available/full list pointer update
    arena_request: int = 95  # object allocator → page allocator round trip
    aac_hit: int = 1
    aac_miss: int = 60  # per-size-class pointer fetched from memory block
    hw_page_fill: int = 160  # hardware walk fill: pool grab + PTE write
    hw_walk_level: int = 24  # one Memento page-table level access
    hw_arena_free_per_page: int = 34  # hardware reclaim per page
    tlb_shootdown: int = 400  # per remote core, rare for single-threaded fns
    hot_flush_per_entry: int = 4  # context-switch HOT flush (per §6.6)

    # --- memory hierarchy (latency beyond what Cache levels charge) ---
    dram_access: int = 200
    #: Bank/bus occupancy charged to the core per dirty LLC eviction;
    #: models writeback bandwidth backpressure on execution.
    writeback_penalty: int = 30

    # --- software-visible ---
    isa_issue: int = 1  # issuing obj-alloc / obj-free itself
    user_costs: Dict[str, UserAllocCosts] = field(
        default_factory=lambda: dict(LANGUAGE_COSTS)
    )

    def user(self, language: str) -> UserAllocCosts:
        """Return the userspace cost table for ``language``.

        Raises ``KeyError`` for unknown runtimes so that workload typos
        fail loudly rather than silently simulating the wrong stack.
        """
        return self.user_costs[language]


DEFAULT_COSTS = CostModel()
