"""Batch replay kernel over the segmented columnar trace.

``_replay_columnar`` (see :mod:`repro.harness.system`) decodes and
dispatches every packed event inline. This kernel replays the memoized
:class:`~repro.workloads.trace.SegmentIndex` instead: every compute
event is extracted from the stream at pack time and folded once as an
exact pre-reduced sum into the interned counter cells (22–31% of events
on the generated workloads never reach the loop), and the surviving
stream arrives fully pre-decoded — single-line touches pre-split into
their own opcode, byte offsets premultiplied, write flags rebooled — so
the per-event body does no operand arithmetic. All stateful edges —
malloc/free, the TLB/L1 peeks, bypass decisions, page walks and faults —
execute the very same closures the scalar kernel uses, in the very same
order, so results are bit-identical by construction (pinned by the
golden fixtures, the lockstep equivalence suite, and the differential
oracle's cross-check).

Kernel selection
----------------

``resolve_kernel(choice)`` maps ``{scalar, vectorized, auto}`` (argument,
else ``$REPRO_KERNEL``, else ``auto``) to the kernel actually used.
``vectorized`` requires numpy — the optional ``[fast]`` extra — which
accelerates the one-time segmentation pass (vectorized change-point and
prefix-sum math over zero-copy views of the packed columns); ``auto``
silently resolves to ``scalar`` without it, and ``vectorized`` raises so
an explicit request never silently degrades. Because both kernels produce
bit-identical results, the engine's content keys exclude the choice: a
cached result answers requests under either kernel.

Why run-batching and not per-event state arrays: on the generated
workloads, maximal same-kind runs are short (median 1–2 events — the
generator interleaves alloc/touch/free tightly) and L1D miss rates run
12–55%, so numpy state-array execution per run would pay ~30µs of array
dispatch to replace ~2µs of scalar work, and optimistic all-hit batches
would fall back constantly. The measured arithmetic lives in DESIGN.md
§15. What does batch cleanly is everything order-independent: dispatch,
operand decode, and compute-run accumulation, which this kernel hoists
out of the per-event path entirely.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.workloads.trace import OP_ALLOC, OP_FREE, OP_TOUCH_SINGLE
from repro.core.bypass import COUNTER_MAX
from repro.sim.params import PAGE_SHIFT, PAGE_SIZE

try:  # pragma: no cover - import guard exercised by the no-numpy CI job
    import numpy  # noqa: F401  (presence is the capability test)

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _HAVE_NUMPY = False

_PAGE_MASK = PAGE_SIZE - 1

#: Valid values for ``--kernel`` / ``$REPRO_KERNEL`` / RunRequest.kernel.
KERNEL_CHOICES = ("scalar", "vectorized", "auto")

ENV_VAR = "REPRO_KERNEL"


def numpy_available() -> bool:
    """Whether the ``[fast]`` extra (numpy) is importable."""
    return _HAVE_NUMPY


def resolve_choice(choice: Optional[str] = None) -> str:
    """Validate a kernel choice, defaulting to ``$REPRO_KERNEL``/auto."""
    if choice is None:
        choice = os.environ.get(ENV_VAR) or "auto"
    if choice not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown replay kernel {choice!r}; "
            f"choose from {', '.join(KERNEL_CHOICES)}"
        )
    return choice


def resolve_kernel(choice: Optional[str] = None) -> str:
    """Map a choice to the kernel used: ``scalar`` or ``vectorized``.

    ``auto`` selects ``vectorized`` exactly when numpy is importable; an
    explicit ``vectorized`` without numpy raises rather than silently
    running something else.
    """
    choice = resolve_choice(choice)
    if choice == "vectorized":
        if not _HAVE_NUMPY:
            raise ValueError(
                "the vectorized replay kernel needs numpy "
                "(pip install -e .[fast]); "
                "use --kernel auto to fall back silently"
            )
        return "vectorized"
    if choice == "auto" and _HAVE_NUMPY:
        return "vectorized"
    return "scalar"


def replay(system, columnar) -> "tuple[int, int]":
    """Replay ``columnar`` through ``system`` over its segment index.

    Mirrors ``SimulatedSystem._replay_columnar`` exactly on every
    stateful path (same closures, same order, same counter cells); only
    the iteration structure and the compute accounting differ, and the
    latter is an exact refactoring of per-event sums (see the fold at
    the end of this function).
    """
    segments = columnar.segments()
    allocs = frees = 0
    addr_of = system._addr_of
    size_of = system._size_of
    touch_lines = system._touch_lines
    core = system.core
    app_cell = core.cycle_counter("app")
    dram = system.machine.dram
    read_bytes = dram._read_bytes
    read_lines = dram._read_lines
    translate = system._translate
    tlb_sets = system._tlb_l1_sets
    tlb_nsets = system._tlb_l1_nsets
    tlb_hit = system._tlb_l1_hit
    l1_sets = system._cache_l1_sets
    l1_nsets = system._cache_l1_nsets
    l1_hit = system._cache_l1_hit
    l1_hit_cycles = system._l1_hit_cycles
    caches = core.caches
    access_line = caches.access_line
    touch_cycles = system._touch_cycles
    page_shift = PAGE_SHIFT
    page_mask = _PAGE_MASK
    op_touch1 = OP_TOUCH_SINGLE
    op_alloc = OP_ALLOC
    op_free = OP_FREE
    stream = zip(
        segments.ops,
        segments.f0,
        segments.f1,
        segments.f2,
        segments.writes,
    )

    if system.memento:
        malloc = system.runtime.malloc
        free = system.runtime.free
        header_of = system._header_of
        bypass = system.runtime.context.bypass
        bypass_enabled = bypass.enabled
        bypassed_cell = bypass._bypassed_lines
        regular_cell = bypass._regular_lines
        instantiate = caches.instantiate
        bypass_cycles = caches._r_bypass.cycles
        counter_max = COUNTER_MAX
        for op, a, b, c, d in stream:
            if op == op_alloc:
                addr_of[a] = malloc(b)
                size_of[a] = b
                allocs += 1
            elif op == op_touch1:
                vaddr = addr_of[a] + c
                vpn = vaddr >> page_shift
                tlb_set = tlb_sets[vpn % tlb_nsets]
                if vpn in tlb_set:
                    tlb_set.move_to_end(vpn)
                    tlb_hit.pending += 1
                    frame_base = tlb_set[vpn] << page_shift
                else:
                    frame_base = translate(vaddr) << page_shift
                cache_addr = frame_base | (vaddr & page_mask)
                header = header_of(vaddr)
                if header is not None:
                    # Saturated counters never bypass
                    # (bypass-soundness, §3.3).
                    line_index = (vaddr - header.va) >> 6
                    if line_index >= header.bypass_counter:
                        bypassable = (
                            bypass_enabled and line_index < counter_max
                        )
                        header.bypass_counter = (
                            line_index + 1
                            if line_index < counter_max
                            else counter_max
                        )
                    else:
                        bypassable = False
                    if bypassable:
                        bypassed_cell.pending += 1
                        instantiate(cache_addr, d)
                        core.cycles += bypass_cycles
                        touch_cycles.pending += bypass_cycles
                        continue
                    regular_cell.pending += 1
                line = cache_addr >> 6
                l1_set = l1_sets[line % l1_nsets]
                if line in l1_set:
                    l1_set.move_to_end(line)
                    if d:
                        l1_set[line] = True
                    l1_hit.pending += 1
                    total = l1_hit_cycles
                else:
                    total = access_line(line, d)[1]
                core.cycles += total
                touch_cycles.pending += total
            elif op == op_free:
                free(addr_of.pop(a))
                del size_of[a]
                frees += 1
            else:  # OP_TOUCH_MULTI
                touch_lines(a, b, c, d)
    else:
        malloc = system.allocator.malloc
        free = system.allocator.free
        for op, a, b, c, d in stream:
            if op == op_alloc:
                addr_of[a] = malloc(core, b)
                size_of[a] = b
                allocs += 1
            elif op == op_touch1:
                vaddr = addr_of[a] + c
                vpn = vaddr >> page_shift
                tlb_set = tlb_sets[vpn % tlb_nsets]
                if vpn in tlb_set:
                    tlb_set.move_to_end(vpn)
                    tlb_hit.pending += 1
                    frame_base = tlb_set[vpn] << page_shift
                else:
                    frame_base = translate(vaddr) << page_shift
                line = (frame_base | (vaddr & page_mask)) >> 6
                l1_set = l1_sets[line % l1_nsets]
                if line in l1_set:
                    l1_set.move_to_end(line)
                    if d:
                        l1_set[line] = True
                    l1_hit.pending += 1
                    total = l1_hit_cycles
                else:
                    total = access_line(line, d)[1]
                core.cycles += total
                touch_cycles.pending += total
            elif op == op_free:
                free(core, addr_of.pop(a))
                del size_of[a]
                frees += 1
            else:  # OP_TOUCH_MULTI
                touch_lines(a, b, c, d)

    # The extracted compute events, folded once. Exact: integer
    # cycle/byte sums commute, the dyadic bytes/64 line total is exactly
    # representable at every partial sum, and nothing reads these cells
    # (or core.cycles as a clock — allocator decay is retire-driven)
    # until after replay.
    cycles_sum = segments.compute_cycles
    if cycles_sum:
        core.cycles += cycles_sum
        app_cell.pending += cycles_sum
    bytes_sum = segments.compute_bytes
    if bytes_sum:
        read_bytes.pending += bytes_sum
        read_lines.pending += bytes_sum / 64
    return allocs, frees
