"""Sensitivity studies and comparisons (§6.1 iso-storage, §6.6, §6.7).

Each study returns plain dicts/lists the benchmarks render; all runs are
deterministic. Studies that need many runs shrink the traces (the effects
under study are rate-based, not length-based).

Studies that replay complete, independent runs (populate, tuning,
coldstart, iso-storage, mallacc, ablation) are expressed as
:class:`~repro.harness.engine.RunRequest` batches on the shared
:class:`~repro.harness.engine.ExperimentEngine`, so they hit the same
persistent cache as every other entry point. The multi-process and
fragmentation studies genuinely need co-located systems or mid-run
sampling and keep constructing :class:`SimulatedSystem` directly.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.core.config import MementoConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.harness.engine import (
    ExperimentEngine,
    RunRequest,
    get_default_engine,
)
from repro.harness.experiment import geometric_mean
from repro.harness.system import SimulatedSystem
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import MachineParams
from repro.workloads.functions import CPP_FUNCTIONS, PYTHON_FUNCTIONS
from repro.workloads.registry import FUNCTION_WORKLOADS, get_workload
from repro.workloads.synth import WorkloadSpec, generate_trace
from repro.workloads.trace import Alloc, Compute, Free, Touch


def _shrunk(spec: WorkloadSpec, num_allocs: int = 8_000) -> WorkloadSpec:
    return replace(spec, num_allocs=num_allocs)


# -------------------------------------------------------------- §6.6 populate


def populate_study(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """MAP_POPULATE: eager backing vs demand paging on the baseline.

    Returns per-language speedup of populate over the lazy baseline and
    the physical-footprint ratio. The paper reports Go gaining ~3 % at an
    8.6x footprint (64 MB arena mmaps), Python/C++ near-zero gains at
    ~+9.6 % footprint.
    """
    specs = specs or [
        get_workload("html"),
        # Populate replaces demand paging; measure the C++ stack cold
        # (a warm heap has nothing left to populate).
        replace(get_workload("US"), warm_heap=False),
        get_workload("html-go"),
    ]
    engine = engine or get_default_engine()
    # Full-size traces: population cost amortizes over the heap the
    # function actually touches, which is what the study measures.
    requests = [
        RunRequest(spec, memento=False, mmap_populate=populate)
        for spec in specs
        for populate in (False, True)
    ]
    runs = engine.run_many(requests)
    out: Dict[str, Dict[str, float]] = {}
    for spec, (lazy, eager) in zip(specs, zip(runs[::2], runs[1::2])):
        out[spec.name] = {
            "language": spec.language,
            "speedup": lazy.total_cycles / eager.total_cycles,
            "footprint_ratio": eager.peak_pages / max(1, lazy.peak_pages),
        }
    return out


# ---------------------------------------------------------- §6.6 multi-process


def multiprocess_study(
    trials: int = 10,
    processes: int = 4,
    slice_events: int = 2_000,
    seed: int = 7,
) -> Dict[str, float]:
    """Four time-sharing function instances on one core (Memento).

    Measures the HOT-flush overhead that context switches add, relative
    to total execution — the paper calls it negligible.
    """
    rng = random.Random(seed)
    flush_fractions: List[float] = []
    switch_counts: List[float] = []
    for _ in range(trials):
        chosen = rng.sample(FUNCTION_WORKLOADS, processes)
        machine = Machine()
        kernel = Kernel(machine)
        config = MementoConfig()
        page_allocator = HardwarePageAllocator(kernel, config)
        systems = [
            SimulatedSystem(
                _shrunk(spec, num_allocs=3_000),
                memento=True,
                memento_config=config,
                machine=machine,
                kernel=kernel,
                page_allocator=page_allocator,
            )
            for spec in chosen
        ]

        iterators = [
            (system, iter(generate_trace(system.spec))) for system in systems
        ]
        live = list(range(len(iterators)))
        current = -1
        while live:
            index = live[rng.randrange(len(live))]
            system, events = iterators[index]
            if index != current:
                kernel.context_switch(machine.core, system.process)
                current = index
            consumed = 0
            for event in events:
                _dispatch(system, event)
                consumed += 1
                if consumed >= slice_events:
                    break
            if consumed < slice_events:
                kernel.exit_process(machine.core, system.process)
                live.remove(index)
                current = -1
        flush_cycles = (
            machine.stats["memento.hot.flushes"]
            * machine.costs.hot_flush_per_entry
            * 64
        )
        total = machine.core.cycles
        flush_fractions.append(flush_cycles / total)
        switch_counts.append(machine.stats["kernel.context_switches"])
    return {
        "mean_flush_fraction": sum(flush_fractions) / len(flush_fractions),
        "max_flush_fraction": max(flush_fractions),
        "mean_context_switches": sum(switch_counts) / len(switch_counts),
    }


def _dispatch(system: SimulatedSystem, event) -> None:
    if isinstance(event, Compute):
        system.core.charge(event.cycles, "app")
        if event.dram_bytes:
            system.machine.dram.record_bulk_bytes(event.dram_bytes)
    elif isinstance(event, Alloc):
        system._addr_of[event.obj] = system._malloc(event.size)
        system._size_of[event.obj] = event.size
    elif isinstance(event, Touch):
        system._touch(event)
    elif isinstance(event, Free):
        system._free(system._addr_of.pop(event.obj))
        del system._size_of[event.obj]


# ------------------------------------------------------------- §6.6 tuning


def tuning_study(
    arena_sizes: Sequence[int] = (256 * 1024, 1024 * 1024),
    engine: Optional[ExperimentEngine] = None,
):
    """Enlarge pymalloc's arena size: fewer mmaps, ~<1 % speedup change."""
    spec = _shrunk(get_workload("html"), num_allocs=12_000)
    engine = engine or get_default_engine()
    requests = [RunRequest(spec, memento=True)] + [
        RunRequest(
            spec,
            memento=False,
            allocator="pymalloc",
            allocator_kwargs=(("arena_bytes", arena_bytes),),
        )
        for arena_bytes in arena_sizes
    ]
    memento, *baselines = engine.run_many(requests)
    out = {}
    for arena_bytes, baseline in zip(arena_sizes, baselines):
        out[arena_bytes] = {
            "speedup": baseline.total_cycles / memento.total_cycles,
            "mmap_calls": baseline.stats["kernel.syscall.mmap_calls"],
            "peak_pages": baseline.peak_pages,
        }
    return out


# -------------------------------------------------------- §6.6 fragmentation


def fragmentation_study(
    specs: Optional[Sequence[WorkloadSpec]] = None,
) -> Dict[str, Dict[str, float]]:
    """Inactive arena-slot fraction under Memento vs software utilization.

    The paper measures ~3.68 % of HOT-managed slots inactive on average,
    within ±2 % of the software allocators.
    """
    specs = specs or [get_workload(n) for n in ("html", "aes", "US", "mk")]
    out = {}
    for spec in specs:
        small = spec  # full size: occupancy is scale-sensitive
        memento_system = SimulatedSystem(small, memento=True)
        trace = generate_trace(memento_system.spec)
        # Measure occupancy mid-run (before exit releases everything).
        allocator = memento_system.runtime.context.object_allocator
        samples: List[float] = []
        count = 0
        for event in trace:
            _dispatch(memento_system, event)
            count += 1
            if count % 5_000 == 0:
                samples.append(allocator.occupancy_fraction())
        baseline_system = SimulatedSystem(small, memento=False)
        baseline_samples: List[float] = []
        count = 0
        for event in trace:
            if isinstance(event, Compute):
                baseline_system.core.charge(event.cycles, "app")
            elif isinstance(event, Alloc):
                addr = baseline_system._malloc(event.size)
                baseline_system._addr_of[event.obj] = addr
            elif isinstance(event, Free):
                baseline_system._free(
                    baseline_system._addr_of.pop(event.obj)
                )
            count += 1
            if count % 5_000 == 0 and hasattr(
                baseline_system.allocator, "utilization"
            ):
                baseline_samples.append(
                    baseline_system.allocator.utilization()
                )
        mean = lambda xs: sum(xs) / len(xs) if xs else 1.0  # noqa: E731
        out[spec.name] = {
            "memento_inactive": 1.0 - mean(samples),
            "software_inactive": 1.0 - mean(baseline_samples),
        }
    return out


# ------------------------------------------------------------ §6.6 cold start


def coldstart_study(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, float]:
    """Cold-started speedups (container setup included): 7-22 % paper."""
    specs = specs or FUNCTION_WORKLOADS
    engine = engine or get_default_engine()
    requests = [
        RunRequest(spec, memento=memento, cold_start=True)
        for spec in specs
        for memento in (False, True)
    ]
    runs = engine.run_many(requests)
    return {
        spec.name: baseline.total_cycles / memento.total_cycles
        for spec, (baseline, memento) in zip(
            specs, zip(runs[::2], runs[1::2])
        )
    }


# --------------------------------------------------------- §6.1 iso-storage


def iso_storage_study(
    workload: str = "html",
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, float]:
    """Grant the HOT's SRAM to the L1D (9-way) instead of adding Memento.

    The paper sees ~3 % from the bigger L1D vs 28 % from Memento on dh.
    """
    spec = get_workload(workload)
    engine = engine or get_default_engine()
    baseline, bigger_l1, memento = engine.run_many([
        RunRequest(spec, memento=False),
        RunRequest(
            spec,
            memento=False,
            machine_params=MachineParams().with_iso_storage_l1d(),
        ),
        RunRequest(spec, memento=True),
    ])
    return {
        "iso_storage_speedup": baseline.total_cycles / bigger_l1.total_cycles,
        "memento_speedup": baseline.total_cycles / memento.total_cycles,
    }


# ------------------------------------------------------------- §6.7 Mallacc


def mallacc_study(
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Idealized Mallacc vs Memento on the DeathStarBench C++ functions."""
    engine = engine or get_default_engine()
    requests = []
    for spec in CPP_FUNCTIONS:
        requests += [
            RunRequest(spec, memento=False),
            RunRequest(spec, memento=False, allocator="mallacc"),
            RunRequest(spec, memento=True),
        ]
    runs = engine.run_many(requests)
    out = {}
    for index, spec in enumerate(CPP_FUNCTIONS):
        baseline, mallacc, memento = runs[index * 3:index * 3 + 3]
        out[spec.name] = {
            "mallacc_speedup": baseline.total_cycles / mallacc.total_cycles,
            "memento_speedup": baseline.total_cycles / memento.total_cycles,
        }
    out["avg"] = {
        "mallacc_speedup": geometric_mean(
            [v["mallacc_speedup"] for v in out.values()]
        ),
        "memento_speedup": geometric_mean(
            [v["memento_speedup"] for v in out.values()]
        ),
    }
    return out


# ----------------------------------------------------------------- ablations


def ablation_study(
    workload: str = "html",
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, float]:
    """Design-choice ablations from DESIGN.md §5: speedups vs baseline."""
    spec = get_workload(workload)
    engine = engine or get_default_engine()
    configs = {
        "full": MementoConfig(),
        "no_bypass": MementoConfig(bypass_enabled=False),
        "no_eager_refill": MementoConfig(eager_refill=False),
        "small_arenas_64": MementoConfig(objects_per_arena=64),
        "large_arenas_1024": MementoConfig(objects_per_arena=1024),
    }
    requests = [RunRequest(spec, memento=False)] + [
        RunRequest(spec, memento=True, config=config)
        for config in configs.values()
    ]
    baseline, *treatments = engine.run_many(requests)
    return {
        name: baseline.total_cycles / run.total_cycles
        for name, run in zip(configs, treatments)
    }
