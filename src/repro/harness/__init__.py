"""Experiment harness: replay traces on baseline or Memento systems."""

from repro.harness.engine import (
    DiskCache,
    ExperimentEngine,
    RunRequest,
    cost_model_fingerprint,
    get_default_engine,
    set_default_engine,
)
from repro.harness.experiment import (
    WorkloadResult,
    run_all,
    run_workload,
    workload_requests,
)
from repro.harness.system import RunResult, SimulatedSystem

__all__ = [
    "DiskCache",
    "ExperimentEngine",
    "RunRequest",
    "RunResult",
    "SimulatedSystem",
    "WorkloadResult",
    "cost_model_fingerprint",
    "get_default_engine",
    "run_all",
    "run_workload",
    "set_default_engine",
    "workload_requests",
]
