"""Experiment harness: replay traces on baseline or Memento systems."""

from repro.harness.experiment import (
    WorkloadResult,
    run_all,
    run_workload,
)
from repro.harness.system import RunResult, SimulatedSystem

__all__ = [
    "RunResult",
    "SimulatedSystem",
    "WorkloadResult",
    "run_all",
    "run_workload",
]
