"""Replay performance microbenchmark (``repro bench``).

Measures the simulator's hot path — trace replay throughput in
events/sec — for one representative workload per language stack
(pymalloc, jemalloc, goalloc) on both the baseline and Memento stacks,
plus the experiment engine's result-cache hit/miss timings. Results are
written to ``BENCH_<date>.json`` at the repo root so the performance
trajectory is tracked from PR to PR.

Protocol: the trace is generated and packed to its columnar form before
any clock starts; each repeat constructs a fresh
:class:`~repro.harness.system.SimulatedSystem` outside the timed region
and times only ``system.run(trace)``; the best (minimum) wall time of
``repeats`` runs is kept, which rejects scheduler noise without
averaging it in. ``--compare`` recomputes per-key speedups against a
previously written file.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence

import dataclasses

from repro.harness import vector_kernel
from repro.harness.engine import (
    ExperimentEngine,
    RunRequest,
    source_fingerprint,
)
from repro.resolve import resolve_stack_list
from repro.harness.experiment import geometric_mean
from repro.harness.system import SimulatedSystem
from repro.obs.events import EventRing, install_ring
from repro.obs.profile import CycleProfile, install_profile
from repro.obs.tracing import Tracer, get_tracer, set_tracer
from repro.workloads.registry import get_workload
from repro.workloads.synth import generate_trace

SCHEMA_VERSION = 1

#: One workload per language stack: html (python/pymalloc, function),
#: Redis (cpp/jemalloc), deploy (go/goalloc).
DEFAULT_WORKLOADS: Sequence[str] = ("html", "Redis", "deploy")

DEFAULT_NUM_ALLOCS = 8000
DEFAULT_REPEATS = 7

#: Stacks every bench payload measures by default: the paper's pair, so
#: BENCH files stay comparable from PR to PR. ``--stacks`` opts into the
#: rival stacks (see :mod:`repro.stacks`).
DEFAULT_STACKS: Sequence[str] = ("baseline", "memento")

SMOKE_NUM_ALLOCS = 500
SMOKE_REPEATS = 1


def bench_replay(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    num_allocs: int = DEFAULT_NUM_ALLOCS,
    repeats: int = DEFAULT_REPEATS,
    kernel: Optional[str] = None,
    stacks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Replay throughput per ``workload/stack`` key.

    Returns ``{key: {workload, stack, language, category, num_allocs,
    events, repeats, seconds, events_per_sec, kernel}}`` with ``seconds``
    the best-of-``repeats`` wall time of one full replay under the
    resolved ``kernel`` (default: the same auto/``$REPRO_KERNEL``
    resolution every other run uses).
    """
    results: Dict[str, Dict[str, Any]] = {}
    tracer = get_tracer()
    resolved = vector_kernel.resolve_kernel(kernel)
    stack_names = resolve_stack_list(stacks, default=DEFAULT_STACKS)
    for name in workloads:
        spec = dataclasses.replace(
            get_workload(name).resolved(), num_allocs=num_allocs
        )
        trace = generate_trace(spec)
        # Pack (and for the vectorized kernel, segment) once, outside
        # every timed region.
        trace.columnar().segments()
        events = len(trace.events)
        for stack in stack_names:
            best = float("inf")
            with tracer.span(
                "bench.replay", workload=name, stack=stack,
            ):
                for _ in range(max(1, repeats)):
                    system = SimulatedSystem(
                        spec, stack, replay_kernel=resolved
                    )
                    started = time.perf_counter()
                    system.run(trace)
                    elapsed = time.perf_counter() - started
                    if elapsed < best:
                        best = elapsed
            key = f"{name}/{stack}"
            results[key] = {
                "workload": name,
                "stack": stack,
                "language": spec.language,
                "category": spec.category,
                "num_allocs": num_allocs,
                "events": events,
                "repeats": repeats,
                "seconds": best,
                "events_per_sec": events / best,
                "kernel": resolved,
            }
    return results


def bench_kernels(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    num_allocs: int = DEFAULT_NUM_ALLOCS,
    repeats: int = DEFAULT_REPEATS,
    stacks: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Scalar-vs-vectorized kernel A/B per ``workload/stack`` key.

    Interleaves the two kernels repeat by repeat over the same packed
    trace so they sample identical machine conditions. Each key records
    both kernels' best events/s, the vectorized/scalar speedup, and the
    trace's segment shape (share of compute events extracted at pack
    time, surviving runs and their mean length) that bounds what the
    vectorized kernel can save. Without numpy only the scalar side is
    measured and ``geomean_speedup`` is null.
    """
    have_numpy = vector_kernel.numpy_available()
    kernels = ("scalar", "vectorized") if have_numpy else ("scalar",)
    stack_names = resolve_stack_list(stacks, default=DEFAULT_STACKS)
    keys: Dict[str, Any] = {}
    speedups = []
    for name in workloads:
        spec = dataclasses.replace(
            get_workload(name).resolved(), num_allocs=num_allocs
        )
        trace = generate_trace(spec)
        segments = trace.columnar().segments()
        events = len(trace.events)
        runs = segments.runs()
        for stack in stack_names:
            best = {kernel: float("inf") for kernel in kernels}
            for _ in range(max(1, repeats)):
                for kernel in kernels:
                    system = SimulatedSystem(
                        spec, stack, replay_kernel=kernel
                    )
                    started = time.perf_counter()
                    system.run(trace)
                    elapsed = time.perf_counter() - started
                    if elapsed < best[kernel]:
                        best[kernel] = elapsed
            key = f"{name}/{stack}"
            row: Dict[str, Any] = {
                "events": events,
                "scalar_events_per_sec": events / best["scalar"],
                "segment": {
                    "compute_extracted": events - len(segments.ops),
                    "compute_fraction": 1 - len(segments.ops) / events,
                    "runs": len(runs),
                    "mean_run_length": (
                        len(segments.ops) / len(runs) if runs else 0.0
                    ),
                },
            }
            if have_numpy:
                row["vectorized_events_per_sec"] = (
                    events / best["vectorized"]
                )
                row["speedup"] = best["scalar"] / best["vectorized"]
                speedups.append(row["speedup"])
            keys[key] = row
    return {
        "numpy": have_numpy,
        "repeats": repeats,
        "keys": keys,
        "geomean_speedup": (
            geometric_mean(speedups) if speedups else None
        ),
    }


def bench_engine_cache(
    workload: str = "html", num_allocs: int = 2000
) -> Dict[str, Any]:
    """Engine result-cache timings: cold miss vs disk hit vs memo hit.

    Uses a throwaway cache directory so the measurement never touches
    (or is warmed by) the working ``.repro-cache/``.
    """
    spec = dataclasses.replace(
        get_workload(workload).resolved(), num_allocs=num_allocs
    )
    request = RunRequest(spec=spec, memento=False)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        engine = ExperimentEngine(cache_dir=tmp, use_disk_cache=True)
        started = time.perf_counter()
        engine.run(request)
        miss_seconds = time.perf_counter() - started

        started = time.perf_counter()
        engine.run(request)
        memo_hit_seconds = time.perf_counter() - started

        cold_engine = ExperimentEngine(cache_dir=tmp, use_disk_cache=True)
        started = time.perf_counter()
        cold_engine.run(request)
        disk_hit_seconds = time.perf_counter() - started
    return {
        "workload": workload,
        "num_allocs": num_allocs,
        "miss_seconds": miss_seconds,
        "disk_hit_seconds": disk_hit_seconds,
        "memo_hit_seconds": memo_hit_seconds,
        "disk_hit_speedup": miss_seconds / disk_hit_seconds,
    }


def bench_obs_overhead(
    workload: str = "html",
    num_allocs: int = 4000,
    repeats: int = 3,
) -> Dict[str, Any]:
    """A/B the observability subsystem's replay cost.

    Times the same packed trace with tracing/sampling disabled (the null
    tracer, no event ring — the default production path) and enabled (a
    live :class:`Tracer` plus an :class:`EventRing`), best-of-``repeats``
    each. ``overhead_ratio`` is enabled/disabled wall time; the disabled
    side is the number the ≤5%-overhead acceptance gate watches via the
    regular replay keys.
    """
    spec = dataclasses.replace(
        get_workload(workload).resolved(), num_allocs=num_allocs
    )
    trace = generate_trace(spec)
    trace.columnar()

    def best_of(tracer, ring) -> float:
        best = float("inf")
        previous_tracer = set_tracer(tracer)
        previous_ring = install_ring(ring)
        try:
            for _ in range(max(1, repeats)):
                if tracer is not None:
                    tracer.clear()
                if ring is not None:
                    ring.clear()
                # Constructed inside the install window: systems bind the
                # ring at construction time.
                system = SimulatedSystem(spec, memento=True)
                started = time.perf_counter()
                system.run(trace)
                elapsed = time.perf_counter() - started
                if elapsed < best:
                    best = elapsed
        finally:
            set_tracer(previous_tracer)
            install_ring(previous_ring)
        return best

    disabled = best_of(None, None)
    enabled = best_of(Tracer(), EventRing())
    return {
        "workload": workload,
        "num_allocs": num_allocs,
        "repeats": repeats,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_ratio": enabled / disabled,
    }


def bench_profile_overhead(
    workload: str = "html",
    num_allocs: int = 4000,
    repeats: int = 3,
) -> Dict[str, Any]:
    """A/B the cycle-attribution profiler's replay cost.

    Same protocol as :func:`bench_obs_overhead`, but for the
    :class:`CycleProfile` gate: disabled (no profile installed — the
    closure factories emit the uninstrumented replay loop) vs enabled (a
    live profile accumulating attribution cells and histograms). The
    disabled side must stay at replay-key parity; it is the "no
    measurable regression when off" acceptance number.
    """
    spec = dataclasses.replace(
        get_workload(workload).resolved(), num_allocs=num_allocs
    )
    trace = generate_trace(spec)
    trace.columnar()

    def best_of(profile) -> float:
        best = float("inf")
        previous = install_profile(profile)
        try:
            for _ in range(max(1, repeats)):
                if profile is not None:
                    profile.clear()
                # Constructed inside the install window: components bind
                # the profile's cells at construction time.
                system = SimulatedSystem(spec, memento=True)
                started = time.perf_counter()
                system.run(trace)
                elapsed = time.perf_counter() - started
                if elapsed < best:
                    best = elapsed
        finally:
            install_profile(previous)
        return best

    disabled = best_of(None)
    enabled = best_of(CycleProfile())
    return {
        "workload": workload,
        "num_allocs": num_allocs,
        "repeats": repeats,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_ratio": enabled / disabled,
    }


def bench_audit_overhead(
    workload: str = "html",
    num_allocs: int = 4000,
    repeats: int = 3,
) -> Dict[str, Any]:
    """A/B the invariant auditor's replay cost.

    Same protocol as :func:`bench_profile_overhead`, for the
    :class:`repro.audit.Auditor` gate: disabled (no auditor installed —
    the replay takes the packed columnar path untouched) vs enabled (an
    interval-epoch auditor forcing the per-event audited dispatch plus
    periodic rule evaluation). The disabled side is the "audit-disabled
    replay within noise of the baseline" acceptance number.
    """
    from repro.audit import Auditor, install_audit

    spec = dataclasses.replace(
        get_workload(workload).resolved(), num_allocs=num_allocs
    )
    trace = generate_trace(spec)
    trace.columnar()

    def best_of(make_auditor) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            previous = install_audit(
                make_auditor() if make_auditor is not None else None
            )
            try:
                system = SimulatedSystem(spec, memento=True)
                started = time.perf_counter()
                system.run(trace)
                elapsed = time.perf_counter() - started
            finally:
                install_audit(previous)
            if elapsed < best:
                best = elapsed
        return best

    disabled = best_of(None)
    enabled = best_of(lambda: Auditor(epoch="interval", every=256))
    return {
        "workload": workload,
        "num_allocs": num_allocs,
        "repeats": repeats,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_ratio": enabled / disabled,
    }


def compare(
    current: Dict[str, Dict[str, Any]],
    reference: Dict[str, Dict[str, Any]],
) -> Dict[str, float]:
    """Per-key events/sec speedup of ``current`` over ``reference``."""
    speedups: Dict[str, float] = {}
    for key, row in current.items():
        ref = reference.get(key)
        if ref and ref.get("events_per_sec"):
            speedups[key] = row["events_per_sec"] / ref["events_per_sec"]
    return speedups


def run_bench(
    smoke: bool = False,
    repeats: Optional[int] = None,
    num_allocs: Optional[int] = None,
    workloads: Optional[Iterable[str]] = None,
    compare_path: Optional[Path] = None,
    kernel: Optional[str] = None,
    stacks: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Assemble the full benchmark payload (see module docstring)."""
    if smoke:
        num_allocs = num_allocs or SMOKE_NUM_ALLOCS
        repeats = repeats or SMOKE_REPEATS
    else:
        num_allocs = num_allocs or DEFAULT_NUM_ALLOCS
        repeats = repeats or DEFAULT_REPEATS
    names = tuple(workloads) if workloads else DEFAULT_WORKLOADS
    stacks = resolve_stack_list(stacks, default=DEFAULT_STACKS)
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "date": datetime.date.today().isoformat(),
        "smoke": smoke,
        "source_fingerprint": source_fingerprint(),
        "protocol": {
            "num_allocs": num_allocs,
            "repeats": repeats,
            "timing": (
                "best-of-N wall time of system.run(trace); trace "
                "pregenerated and columnar-packed, system constructed "
                "outside the timed region"
            ),
        },
        "stacks": list(stacks),
        "replay": bench_replay(names, num_allocs, repeats, kernel, stacks),
        "kernels": bench_kernels(names, num_allocs, repeats, stacks),
    }
    if not smoke:
        payload["engine_cache"] = bench_engine_cache()
        payload["obs_overhead"] = bench_obs_overhead()
        payload["profile_overhead"] = bench_profile_overhead()
        payload["audit_overhead"] = bench_audit_overhead()
    if compare_path is not None:
        payload["comparison"] = _comparison(
            payload["replay"], Path(compare_path)
        )
    return payload


def _comparison(
    replay: Dict[str, Dict[str, Any]], compare_path: Path
) -> Dict[str, Any]:
    """Per-key speedups plus portable provenance for the reference.

    The reference is identified by its recorded date and a content
    fingerprint of the file's bytes — never by the path it happened to
    be read from, which does not survive checkouts. A missing or
    unreadable reference degrades to a warning entry instead of failing
    the bench (CI passes historical files when it has them).
    """
    try:
        blob = compare_path.read_bytes()
        reference = json.loads(blob.decode("utf-8"))
    except (OSError, ValueError) as exc:
        print(
            f"repro bench: reference {compare_path.name} unusable "
            f"({exc}); skipping comparison",
            file=sys.stderr,
        )
        return {
            "reference": compare_path.name,
            "warning": f"reference unusable: {exc}",
            "speedup": {},
        }
    ref_replay = reference.get("replay", reference)
    return {
        "reference": compare_path.name,
        "reference_date": reference.get("date"),
        "reference_fingerprint": hashlib.sha256(blob).hexdigest()[:16],
        "reference_source_fingerprint": reference.get(
            "source_fingerprint"
        ),
        "speedup": compare(replay, ref_replay),
    }


def default_output_path(root: Path, smoke: bool = False) -> Path:
    stamp = datetime.date.today().isoformat()
    name = f"BENCH_{stamp}.smoke.json" if smoke else f"BENCH_{stamp}.json"
    return root / name


def write_bench(payload: Dict[str, Any], out: Path) -> Path:
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
