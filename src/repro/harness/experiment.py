"""Baseline-vs-Memento experiments and derived metrics.

``run_workload`` replays one workload on both stacks and derives every
per-workload metric the evaluation section reports: speedup (Fig. 8), the
savings breakdown (Fig. 9), bandwidth reduction (Fig. 10), memory usage
(Fig. 11), HOT hit rates (Fig. 12), and arena list-operation frequency
(Fig. 13). Results are memoized — the benchmark files all share one set
of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.core.config import MementoConfig
from repro.harness.system import RunResult, SimulatedSystem
from repro.workloads.registry import (
    DATAPROC_WORKLOADS,
    FUNCTION_WORKLOADS,
    PLATFORM_WORKLOADS,
)
from repro.workloads.synth import WorkloadSpec


@dataclass
class WorkloadResult:
    """Baseline and Memento runs of one workload plus derived metrics.

    ``memento_nobypass`` is a third run with the main-memory bypass
    disabled; the bypass mechanism's contribution is measured as the
    marginal gain of enabling it (ablation attribution, matching how a
    combined figure like Fig. 9 separates an otherwise-entangled
    mechanism).
    """

    spec: WorkloadSpec
    baseline: RunResult
    memento: RunResult
    memento_nobypass: RunResult

    # -- Fig. 8 -------------------------------------------------------------

    @property
    def speedup(self) -> float:
        return self.baseline.total_cycles / self.memento.total_cycles

    # -- Fig. 9 -------------------------------------------------------------

    def savings(self) -> Dict[str, float]:
        """Cycles saved per mechanism (may be slightly negative when a
        category grew; the breakdown clamps at zero like the figure)."""
        base, mem = self.baseline.cycles, self.memento.cycles

        def get(cycles: Dict[str, float], *keys: str) -> float:
            return sum(cycles.get(key, 0.0) for key in keys)

        bypass_gain = (
            self.memento_nobypass.total_cycles - self.memento.total_cycles
        )
        return {
            "obj-alloc": get(base, "user_alloc")
            - get(mem, "hw_alloc", "user_alloc"),
            "obj-free": get(base, "user_free")
            - get(mem, "hw_free", "user_free"),
            "page-mgmt": get(base, "kernel_page", "walk")
            - get(mem, "hw_page", "kernel_page", "walk"),
            "bypass": bypass_gain,
        }

    def breakdown(self) -> Dict[str, float]:
        """Fractional Fig. 9 breakdown (sums to 1 over positive savings)."""
        savings = {k: max(0.0, v) for k, v in self.savings().items()}
        total = sum(savings.values())
        if total == 0:
            return {key: 0.0 for key in savings}
        return {key: value / total for key, value in savings.items()}

    # -- Fig. 10 ------------------------------------------------------------

    @property
    def bandwidth_reduction(self) -> float:
        """Fraction of baseline DRAM traffic Memento eliminated."""
        if self.baseline.dram_bytes == 0:
            return 0.0
        return 1.0 - self.memento.dram_bytes / self.baseline.dram_bytes

    @property
    def bypass_bandwidth_share(self) -> float:
        """The share of baseline traffic saved by main-memory bypass."""
        if self.baseline.dram_bytes == 0:
            return 0.0
        return (self.memento.bypassed_lines * 64) / self.baseline.dram_bytes

    # -- Fig. 11 ------------------------------------------------------------

    def memory_usage_ratios(self) -> Dict[str, float]:
        """Normalized aggregate memory usage (Memento / baseline)."""
        base, mem = self.baseline, self.memento

        def ratio(m: float, b: float) -> float:
            return m / b if b else 1.0

        return {
            "user": ratio(mem.user_pages_aggregate, base.user_pages_aggregate),
            "kernel": ratio(
                mem.kernel_pages_aggregate, base.kernel_pages_aggregate
            ),
            "total": ratio(
                mem.total_pages_aggregate, base.total_pages_aggregate
            ),
        }

    # -- Table 2 ------------------------------------------------------------

    def user_kernel_split(self) -> Dict[str, float]:
        """Baseline memory-management cycle split (Table 2)."""
        cycles = self.baseline.cycles
        user = cycles.get("user_alloc", 0) + cycles.get("user_free", 0)
        kernel = cycles.get("kernel_page", 0) + cycles.get("walk", 0)
        total = user + kernel
        if total == 0:
            return {"user": 0.0, "kernel": 0.0}
        return {"user": user / total, "kernel": kernel / total}

    @property
    def mm_fraction_of_runtime(self) -> float:
        """Share of baseline runtime spent in memory management."""
        return self.baseline.mm_cycles / self.baseline.total_cycles


@lru_cache(maxsize=512)
def _run_cached(
    spec: WorkloadSpec,
    memento: bool,
    cold_start: bool,
    bypass: bool = True,
) -> RunResult:
    config = MementoConfig(bypass_enabled=bypass)
    return SimulatedSystem(
        spec, memento, cold_start=cold_start, memento_config=config
    ).run()


def run_workload(
    spec: WorkloadSpec, cold_start: bool = False
) -> WorkloadResult:
    """Run (or fetch the memoized) baseline + Memento + no-bypass trio."""
    return WorkloadResult(
        spec=spec,
        baseline=_run_cached(spec, False, cold_start),
        memento=_run_cached(spec, True, cold_start),
        memento_nobypass=_run_cached(spec, True, cold_start, bypass=False),
    )


def run_all(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    cold_start: bool = False,
) -> List[WorkloadResult]:
    """Run every workload (functions + data proc + platform by default)."""
    if specs is None:
        specs = (
            FUNCTION_WORKLOADS + DATAPROC_WORKLOADS + PLATFORM_WORKLOADS
        )
    return [run_workload(spec, cold_start) for spec in specs]


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean helper for speedup averages."""
    if not values:
        raise ValueError("geometric mean of no values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def average_speedup(results: Sequence[WorkloadResult]) -> float:
    return geometric_mean([r.speedup for r in results])
