"""Baseline-vs-Memento experiments and derived metrics.

``run_workload`` replays one workload on both stacks and derives every
per-workload metric the evaluation section reports: speedup (Fig. 8), the
savings breakdown (Fig. 9), bandwidth reduction (Fig. 10), memory usage
(Fig. 11), HOT hit rates (Fig. 12), and arena list-operation frequency
(Fig. 13). Runs execute through the shared
:class:`~repro.harness.engine.ExperimentEngine`, so results are memoized
in-process (the benchmark files all share one set of runs), persisted
across processes in the on-disk cache, and — via ``run_all(jobs=N)`` —
computed in parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import MementoConfig
from repro.harness.engine import (
    ExperimentEngine,
    RunRequest,
    get_default_engine,
)
from repro.harness.system import RunResult
from repro.sim.params import MachineParams
from repro.workloads.registry import (
    DATAPROC_WORKLOADS,
    FUNCTION_WORKLOADS,
    PLATFORM_WORKLOADS,
)
from repro.workloads.synth import WorkloadSpec


@dataclass
class WorkloadResult:
    """Baseline and Memento runs of one workload plus derived metrics.

    ``memento_nobypass`` is a third run with the main-memory bypass
    disabled; the bypass mechanism's contribution is measured as the
    marginal gain of enabling it (ablation attribution, matching how a
    combined figure like Fig. 9 separates an otherwise-entangled
    mechanism).
    """

    spec: WorkloadSpec
    baseline: RunResult
    memento: RunResult
    memento_nobypass: RunResult

    # -- Fig. 8 -------------------------------------------------------------

    @property
    def speedup(self) -> float:
        return self.baseline.total_cycles / self.memento.total_cycles

    # -- Fig. 9 -------------------------------------------------------------

    def savings(self) -> Dict[str, float]:
        """Cycles saved per mechanism (may be slightly negative when a
        category grew; the breakdown clamps at zero like the figure)."""
        base, mem = self.baseline.cycles, self.memento.cycles

        def get(cycles: Dict[str, float], *keys: str) -> float:
            return sum(cycles.get(key, 0.0) for key in keys)

        bypass_gain = (
            self.memento_nobypass.total_cycles - self.memento.total_cycles
        )
        return {
            "obj-alloc": get(base, "user_alloc")
            - get(mem, "hw_alloc", "user_alloc"),
            "obj-free": get(base, "user_free")
            - get(mem, "hw_free", "user_free"),
            "page-mgmt": get(base, "kernel_page", "walk")
            - get(mem, "hw_page", "kernel_page", "walk"),
            "bypass": bypass_gain,
        }

    def breakdown(self) -> Dict[str, float]:
        """Fractional Fig. 9 breakdown (sums to 1 over positive savings)."""
        savings = {k: max(0.0, v) for k, v in self.savings().items()}
        total = sum(savings.values())
        if total == 0:
            return {key: 0.0 for key in savings}
        return {key: value / total for key, value in savings.items()}

    # -- Fig. 10 ------------------------------------------------------------

    @property
    def bandwidth_reduction(self) -> float:
        """Fraction of baseline DRAM traffic Memento eliminated."""
        if self.baseline.dram_bytes == 0:
            return 0.0
        return 1.0 - self.memento.dram_bytes / self.baseline.dram_bytes

    @property
    def bypass_bandwidth_share(self) -> float:
        """The share of baseline traffic saved by main-memory bypass."""
        if self.baseline.dram_bytes == 0:
            return 0.0
        return (self.memento.bypassed_lines * 64) / self.baseline.dram_bytes

    # -- Fig. 11 ------------------------------------------------------------

    def memory_usage_ratios(self) -> Dict[str, float]:
        """Normalized aggregate memory usage (Memento / baseline)."""
        base, mem = self.baseline, self.memento

        def ratio(m: float, b: float) -> float:
            return m / b if b else 1.0

        return {
            "user": ratio(mem.user_pages_aggregate, base.user_pages_aggregate),
            "kernel": ratio(
                mem.kernel_pages_aggregate, base.kernel_pages_aggregate
            ),
            "total": ratio(
                mem.total_pages_aggregate, base.total_pages_aggregate
            ),
        }

    # -- Table 2 ------------------------------------------------------------

    def user_kernel_split(self) -> Dict[str, float]:
        """Baseline memory-management cycle split (Table 2)."""
        cycles = self.baseline.cycles
        user = cycles.get("user_alloc", 0) + cycles.get("user_free", 0)
        kernel = cycles.get("kernel_page", 0) + cycles.get("walk", 0)
        total = user + kernel
        if total == 0:
            return {"user": 0.0, "kernel": 0.0}
        return {"user": user / total, "kernel": kernel / total}

    @property
    def mm_fraction_of_runtime(self) -> float:
        """Share of baseline runtime spent in memory management."""
        return self.baseline.mm_cycles / self.baseline.total_cycles

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serializable summary: the three raw runs in their
        :meth:`RunResult.to_dict` round-trip form plus every derived
        metric the figures consume, so reporting code reads one dict
        instead of poking fields."""
        return {
            "workload": self.spec.name,
            "language": self.spec.language,
            "category": self.spec.category,
            "baseline": self.baseline.to_dict(),
            "memento": self.memento.to_dict(),
            "memento_nobypass": self.memento_nobypass.to_dict(),
            "speedup": self.speedup,
            "savings": self.savings(),
            "breakdown": self.breakdown(),
            "bandwidth_reduction": self.bandwidth_reduction,
            "bypass_bandwidth_share": self.bypass_bandwidth_share,
            "memory_usage_ratios": self.memory_usage_ratios(),
            "user_kernel_split": self.user_kernel_split(),
            "mm_fraction_of_runtime": self.mm_fraction_of_runtime,
        }


def _reject_positional(name: str, rejected: tuple) -> None:
    """The PR 1 deprecation, completed: positional flags now fail fast.

    A bare ``*`` would raise Python's generic "takes 1 positional
    argument" message; catching the arguments instead lets the error
    name the new signature.
    """
    if rejected:
        raise TypeError(
            f"{name}() no longer accepts positional "
            "config/machine_params/cold_start arguments; call "
            f"{name}(..., cold_start=..., config=..., "
            "machine_params=...) with keywords"
        )


def workload_requests(
    spec: WorkloadSpec,
    cold_start: bool = False,
    config: Optional[MementoConfig] = None,
    machine_params: Optional[MachineParams] = None,
    kernel: Optional[str] = None,
) -> List[RunRequest]:
    """The baseline / Memento / no-bypass request trio for one workload."""
    config = config or MementoConfig()
    machine_params = machine_params or MachineParams()
    common: Dict[str, Any] = {
        "machine_params": machine_params,
        "cold_start": cold_start,
        "kernel": kernel,
    }
    return [
        RunRequest(spec, memento=False, config=config, **common),
        RunRequest(spec, memento=True, config=config, **common),
        RunRequest(
            spec,
            memento=True,
            config=replace(config, bypass_enabled=False),
            **common,
        ),
    ]


def run_workload(
    spec: WorkloadSpec,
    *rejected,
    cold_start: bool = False,
    config: Optional[MementoConfig] = None,
    machine_params: Optional[MachineParams] = None,
    engine: Optional[ExperimentEngine] = None,
    kernel: Optional[str] = None,
) -> WorkloadResult:
    """Run (or recall) the baseline + Memento + no-bypass trio.

    ``config``/``machine_params``/``cold_start`` are keyword-only, so
    non-default configurations flow into the engine's content key (and
    therefore share the cache) instead of silently falling outside the
    memoized path.
    """
    _reject_positional("run_workload", rejected)
    engine = engine or get_default_engine()
    baseline, memento, nobypass = engine.run_many(
        workload_requests(spec, cold_start, config, machine_params, kernel)
    )
    return WorkloadResult(
        spec=spec,
        baseline=baseline,
        memento=memento,
        memento_nobypass=nobypass,
    )


def run_all(
    specs: Optional[Sequence[WorkloadSpec]] = None,
    *rejected,
    cold_start: bool = False,
    config: Optional[MementoConfig] = None,
    machine_params: Optional[MachineParams] = None,
    engine: Optional[ExperimentEngine] = None,
    jobs: Optional[int] = None,
    kernel: Optional[str] = None,
) -> List[WorkloadResult]:
    """Run every workload (functions + data proc + platform by default).

    The whole batch is handed to the engine at once, so with ``jobs > 1``
    independent runs fan out across worker processes.
    """
    _reject_positional("run_all", rejected)
    if specs is None:
        specs = (
            FUNCTION_WORKLOADS + DATAPROC_WORKLOADS + PLATFORM_WORKLOADS
        )
    engine = engine or get_default_engine()
    requests: List[RunRequest] = []
    for spec in specs:
        requests.extend(
            workload_requests(
                spec, cold_start, config, machine_params, kernel
            )
        )
    results = engine.run_many(requests, jobs=jobs)
    return [
        WorkloadResult(
            spec=spec,
            baseline=results[i],
            memento=results[i + 1],
            memento_nobypass=results[i + 2],
        )
        for spec, i in zip(specs, range(0, len(results), 3))
    ]


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean accumulated in log space, immune to overflow/underflow
    of the running product on long result lists."""
    if not values:
        raise ValueError("geometric mean of no values")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(
                f"geometric mean requires positive values, got {value!r}"
            )
        total += math.log(value)
    return math.exp(total / len(values))


def average_speedup(results: Sequence[WorkloadResult]) -> float:
    return geometric_mean([r.speedup for r in results])
