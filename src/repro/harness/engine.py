"""Parallel experiment engine with a persistent, content-addressed cache.

Every simulated run in the repository is described by a declarative
:class:`RunRequest` — workload spec, stack, :class:`MementoConfig`,
:class:`MachineParams`, and replay flags — which hashes into a stable
content key. :class:`ExperimentEngine` executes batches of requests,
fanning independent ones out across a ``ProcessPoolExecutor`` (the
simulator is deterministic, so parallel results are bit-identical to
serial ones), and stores every completed :class:`RunResult` as a JSON
artifact under ``.repro-cache/``. The cache key folds in a schema tag
and a fingerprint of the cycle cost model, so recalibrating the model or
changing the result format invalidates stale artifacts automatically —
pay the simulation cost once, restore cheaply forever.

``run_workload``/``run_all`` in :mod:`repro.harness.experiment`, the
sweeps, the benchmark suite's shared fixtures, and the CLI all route
through one engine, so a result computed anywhere is a cache hit
everywhere. Hit/miss/timing counters are recorded in the engine's
:class:`~repro.sim.stats.Stats` instance under ``engine.*``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.allocators import (
    GoAllocator,
    JemallocAllocator,
    MallaccAllocator,
    PymallocAllocator,
)
from repro.backends import (
    DEFAULT_CACHE_DIR,
    JsonBackend,
    ResultBackend,
    create_backend,
)
from repro import codec
from repro import stacks as stack_registry
from repro.core.config import MementoConfig
from repro.resolve import resolve_jobs, resolve_stack
from repro.harness import vector_kernel
from repro.harness.system import RunResult, SimulatedSystem
from repro.obs import ledger as obs_ledger
from repro.obs.tracing import get_tracer
from repro.sim.cycles import CostModel, DEFAULT_COSTS
from repro.sim.params import CacheParams, MachineParams, TlbParams
from repro.sim.stats import Stats
from repro.workloads.profiles import LifetimeProfile
from repro.workloads.synth import WorkloadSpec

#: Bumped whenever the cache payload or key derivation changes shape;
#: old artifacts simply stop matching and are re-simulated.
SCHEMA_VERSION = 1

#: Version stamped into :meth:`RunRequest.to_dict` wire payloads.
#: Version-0 payloads (written before the field existed) carry the same
#: body and upgrade transparently in :meth:`RunRequest.from_dict`.
REQUEST_SCHEMA_VERSION = 1

#: Backwards-compatible alias: the JSON backend is the original
#: ``DiskCache`` extracted behind the :class:`ResultBackend` contract.
DiskCache = JsonBackend

#: Named baseline-allocator overrides, so a request stays declarative
#: (and picklable/hashable) instead of carrying a class object.
ALLOCATOR_REGISTRY: Dict[str, type] = {
    "pymalloc": PymallocAllocator,
    "jemalloc": JemallocAllocator,
    "go": GoAllocator,
    "mallacc": MallaccAllocator,
}

#: Progress callback: (index, total, request, source, seconds) where
#: ``source`` is ``"live"``, ``"cache"``, or ``"memo"``.
ProgressFn = Callable[[int, int, "RunRequest", str, float], None]

#: Summary-progress callback: (done, total, counts) where ``counts``
#: maps ``"cached"``/``"live"``/``"failed"`` to tallies so far. Used
#: instead of per-run ``ProgressFn`` lines for batches at or above the
#: engine's summary threshold (per-run lines are unusable at fleet
#: scale).
SummaryFn = Callable[[int, int, Dict[str, int]], None]

#: Batches at or above this many runs switch from per-run progress
#: lines to periodic summary callbacks (when the engine has one).
SUMMARY_PROGRESS_THRESHOLD = 100

#: Versioned wire codec for :class:`RunRequest` payloads — the same
#: machinery :class:`~repro.fleet.request.FleetRequest` uses, so the
#: two request hierarchies cannot drift (see :mod:`repro.codec`).
REQUEST_CODEC = codec.VersionedCodec("RunRequest", REQUEST_SCHEMA_VERSION)

#: Backwards-compatible aliases: the canonicalization/hash primitives
#: moved to :mod:`repro.codec` in PR 8.
_canonical = codec.canonical
_digest = codec.digest


#: Identity-keyed fingerprint memo. CostModel is frozen, so an instance's
#: digest never changes; the strong reference keeps the id stable. The
#: canonical walk over ~40 fields otherwise reruns per content_key call.
_COST_FINGERPRINTS: Dict[int, Tuple[CostModel, str]] = {}


def cost_model_fingerprint(cost_model: CostModel = DEFAULT_COSTS) -> str:
    """Stable hash of every calibrated cycle cost.

    Folded into each cache key: recalibrating the model (see
    ``scripts/apply_calibration.py``) silently invalidates all cached
    results instead of serving stale metrics.
    """
    entry = _COST_FINGERPRINTS.get(id(cost_model))
    if entry is not None and entry[0] is cost_model:
        return entry[1]
    digest = codec.digest(codec.canonical(cost_model))[:16]
    _COST_FINGERPRINTS[id(cost_model)] = (cost_model, digest)
    return digest


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Content hash of the ``repro`` package's own source tree.

    Also folded into every cache key: any change to the simulator —
    even one that leaves the cost-model constants untouched — retires
    all persisted artifacts, so the cache can never serve results from
    an older model of the system.
    """
    root = Path(__file__).resolve().parent.parent
    entries = []
    for path in sorted(root.rglob("*.py")):
        try:
            blob = path.read_bytes()
        except OSError:  # pragma: no cover - racing file removal
            continue
        entries.append(
            [str(path.relative_to(root)), hashlib.sha256(blob).hexdigest()]
        )
    return codec.digest(entries)[:16]


@dataclass(frozen=True)
class RunRequest:
    """Declarative description of one simulated run.

    Frozen and hashable: requests are dict keys in the engine's
    in-memory memo and hash into the on-disk content key.
    """

    spec: WorkloadSpec
    #: Legacy stack flag, kept as a real field so pre-registry wire
    #: payloads and content keys keep their exact shape. Normalized in
    #: ``__post_init__`` to agree with ``stack`` (it mirrors the stack's
    #: ``hardware`` trait), so equal requests always hash equal.
    memento: bool = False
    config: MementoConfig = field(default_factory=MementoConfig)
    machine_params: MachineParams = field(default_factory=MachineParams)
    cold_start: bool = False
    mmap_populate: bool = False
    #: Baseline-allocator override by registry name (e.g. the tuning
    #: study's resized pymalloc, or the Mallacc comparison point).
    allocator: Optional[str] = None
    #: Keyword arguments for the override, as sorted key/value pairs so
    #: the request stays hashable.
    allocator_kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: Replay kernel choice (``scalar``/``vectorized``/``auto``). Both
    #: kernels produce bit-identical results, so this is an execution
    #: detail: it is excluded from the content key (a cached result
    #: answers requests under either kernel). ``None`` means
    #: unspecified — ``$REPRO_KERNEL`` if set, else ``auto`` (vectorized
    #: when numpy is installed, scalar otherwise), resolved where the
    #: run executes, which for pool fan-out is the worker process.
    kernel: Optional[str] = None
    #: First-class stack name (see :mod:`repro.stacks`). ``None`` means
    #: unspecified and derives from the legacy ``memento`` flag, so
    #: ``RunRequest(spec, memento=True)`` and
    #: ``RunRequest(spec, stack="memento")`` are the same request.
    stack: Optional[str] = None

    def __post_init__(self) -> None:
        if self.stack is None:
            object.__setattr__(
                self, "stack", stack_registry.coerce(bool(self.memento)).name
            )
        else:
            entry = stack_registry.coerce(resolve_stack(self.stack))
            object.__setattr__(self, "stack", entry.name)
            object.__setattr__(self, "memento", entry.hardware)
        if self.allocator is not None and self.allocator not in (
            ALLOCATOR_REGISTRY
        ):
            raise ValueError(
                f"unknown allocator {self.allocator!r}; "
                f"choose from {sorted(ALLOCATOR_REGISTRY)}"
            )
        if (
            self.allocator is not None
            and "allocator" not in stack_registry.get_stack(self.stack).knobs
        ):
            raise ValueError(
                f"allocator overrides are not supported by the "
                f"{self.stack!r} stack"
            )
        # mmap_populate is validated where the system is built (the
        # stack-knob guard in SimulatedSystem): a declarative request
        # may describe an unsupported combination, but it fails loudly
        # — naming the stack — the moment it would execute.
        if self.kernel is not None:
            vector_kernel.resolve_choice(self.kernel)

    def content_key(self, cost_model: CostModel = DEFAULT_COSTS) -> str:
        """Stable content hash identifying this run's result.

        Requests that resolve to the same simulation share a key: a spec
        before and after profile-default resolution, and software-stack
        runs regardless of the (unused) Memento config, so one baseline
        serves every ablation point of a config sweep.

        Cache-key compatibility: for the two legacy stacks the hashed
        body is exactly the pre-registry shape — the ``memento`` boolean
        field, no ``stack`` key — so requests written before the stack
        registry existed keep their content keys and ``.repro-cache/``
        stays warm. Only the new stacks (which never had pre-registry
        keys) carry the ``stack`` field into the hash.
        """
        entry = stack_registry.get_stack(self.stack)
        normalized = dataclasses.replace(
            self, spec=self.spec.resolved(), kernel=None
        )
        if not entry.hardware:
            normalized = dataclasses.replace(
                normalized, config=MementoConfig()
            )
        body = codec.canonical(normalized)
        if entry.legacy_memento is not None:
            del body["stack"]
        return codec.content_key(
            body,
            schema=SCHEMA_VERSION,
            fingerprints={
                "source": source_fingerprint(),
                "cost_model": cost_model_fingerprint(cost_model),
            },
        )

    def build_system(
        self, cost_model: Optional[CostModel] = None
    ) -> SimulatedSystem:
        """Assemble the full stack this request describes."""
        kwargs: Dict[str, Any] = {}
        if self.allocator is not None:
            kwargs["allocator_cls"] = ALLOCATOR_REGISTRY[self.allocator]
            if self.allocator_kwargs:
                kwargs["allocator_kwargs"] = dict(self.allocator_kwargs)
        return SimulatedSystem(
            self.spec,
            self.stack,
            machine_params=self.machine_params,
            cost_model=cost_model,
            memento_config=self.config,
            mmap_populate=self.mmap_populate,
            cold_start=self.cold_start,
            replay_kernel=self.kernel,
            **kwargs,
        )

    def execute(self, cost_model: Optional[CostModel] = None) -> RunResult:
        """Run the simulation this request describes (no caching)."""
        return self.build_system(cost_model).run()

    # -- wire schema -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Versioned plain-JSON form (the service's wire schema).

        Inverse of :meth:`from_dict`: a round-tripped request is equal
        to the original — same fields, same hash, same content key — so
        a run submitted over HTTP lands on the same cache entry as the
        same request executed in-process.
        """
        return REQUEST_CODEC.stamp({
            "spec": dataclasses.asdict(self.spec),
            # Both spellings ride the wire: ``stack`` is the first-class
            # field, ``memento`` keeps pre-registry readers working (and
            # legacy payloads carrying only ``memento`` still decode —
            # see from_dict).
            "memento": self.memento,
            "stack": self.stack,
            "config": dataclasses.asdict(self.config),
            "machine_params": dataclasses.asdict(self.machine_params),
            "cold_start": self.cold_start,
            "mmap_populate": self.mmap_populate,
            "allocator": self.allocator,
            "allocator_kwargs": [
                list(pair) for pair in self.allocator_kwargs
            ],
            # Additive since the v1 schema froze: readers that predate it
            # reject the unknown field loudly, current readers treat a
            # missing one as unspecified (it never changes results or
            # content keys).
            "kernel": self.kernel,
        })

    @classmethod
    def from_dict(cls, data: Any) -> "RunRequest":
        """Rebuild a request from its :meth:`to_dict` form.

        Tolerates version-0 payloads (no ``schema_version`` field — the
        body is identical); rejects payloads from a newer schema or with
        unknown fields, so wire/disk corruption fails loudly instead of
        silently simulating the wrong thing.
        """
        data = REQUEST_CODEC.open_into(cls, data)
        if "spec" not in data or (
            "memento" not in data and "stack" not in data
        ):
            raise ValueError(
                "RunRequest payload needs spec and a stack "
                "(or the legacy memento flag)"
            )
        stack = None if data.get("stack") is None else str(data["stack"])
        if stack is not None:
            stack = resolve_stack(stack)
            hardware = stack_registry.get_stack(stack).hardware
            if "memento" in data and bool(data["memento"]) != hardware:
                raise ValueError(
                    f"RunRequest payload is inconsistent: stack {stack!r} "
                    f"with memento={bool(data['memento'])!r}"
                )
        return cls(
            spec=spec_from_dict(data["spec"]),
            memento=bool(data.get("memento", False)),
            stack=stack,
            config=config_from_dict(data.get("config")),
            machine_params=machine_params_from_dict(
                data.get("machine_params")
            ),
            cold_start=bool(data.get("cold_start", False)),
            mmap_populate=bool(data.get("mmap_populate", False)),
            allocator=data.get("allocator"),
            allocator_kwargs=tuple(
                (str(name), value)
                for name, value in data.get("allocator_kwargs") or ()
            ),
            kernel=(
                None
                if data.get("kernel") is None
                else str(data["kernel"])
            ),
        )


#: Backwards-compatible alias; moved to :mod:`repro.codec` in PR 8.
_checked_fields = codec.checked_fields


def spec_from_dict(data: Any) -> WorkloadSpec:
    """Rebuild a :class:`WorkloadSpec` from its ``asdict`` wire form."""
    body = codec.checked_fields(WorkloadSpec, data, "spec")
    if body.get("lifetime") is not None:
        body["lifetime"] = LifetimeProfile(
            **codec.checked_fields(
                LifetimeProfile, body["lifetime"], "lifetime"
            )
        )
    if body.get("size_modes") is not None:
        body["size_modes"] = tuple(
            (int(size), float(weight))
            for size, weight in body["size_modes"]
        )
    return WorkloadSpec(**body)


def config_from_dict(data: Any) -> MementoConfig:
    """Rebuild a :class:`MementoConfig` (``None`` → defaults)."""
    if data is None:
        return MementoConfig()
    return MementoConfig(
        **codec.checked_fields(MementoConfig, data, "config")
    )


def machine_params_from_dict(data: Any) -> MachineParams:
    """Rebuild :class:`MachineParams` with nested cache/TLB params."""
    if data is None:
        return MachineParams()
    body = codec.checked_fields(MachineParams, data, "machine_params")
    for name in ("l1d", "l1i", "l2", "llc"):
        if isinstance(body.get(name), dict):
            body[name] = CacheParams(
                **codec.checked_fields(CacheParams, body[name], name)
            )
    for name in ("tlb_l1", "tlb_l2"):
        if isinstance(body.get(name), dict):
            body[name] = TlbParams(
                **codec.checked_fields(TlbParams, body[name], name)
            )
    return MachineParams(**body)


#: Backwards-compatible aliases for the pre-PR-8 private names.
_spec_from_dict = spec_from_dict
_config_from_dict = config_from_dict
_machine_from_dict = machine_params_from_dict


def _execute_remote(
    request: RunRequest,
) -> Tuple[Dict[str, Any], float]:
    """Worker-process entry point: run and return a serialized result.

    Returns the :meth:`RunResult.to_dict` form so the parallel path and
    the disk-cache path hand back byte-identical payloads.
    """
    started = time.perf_counter()
    result = request.execute()
    return result.to_dict(), time.perf_counter() - started


def _envelope_ok(payload: Dict[str, Any]) -> bool:
    """Validate a cache envelope (any backend).

    Version-0 envelopes spelled the version field ``schema``; the
    current writer stamps ``schema_version`` (and keeps ``schema`` so
    older readers skip cleanly rather than misread). Either spelling is
    accepted at the current version; anything else — missing version,
    other versions, no ``result`` body — is stale and gets re-simulated.
    """
    version = payload.get("schema_version", payload.get("schema"))
    return version == SCHEMA_VERSION and "result" in payload


class ExperimentEngine:
    """Executes :class:`RunRequest` batches with caching and parallelism.

    The engine is the single execution path for experiments: it answers
    each request from (1) an in-process memo holding the live
    :class:`RunResult` objects, (2) the on-disk JSON cache, or (3) a
    fresh simulation — serial, or fanned out over ``jobs`` worker
    processes when a batch holds several misses.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        jobs: int = 1,
        use_disk_cache: Optional[bool] = None,
        cost_model: Optional[CostModel] = None,
        progress: Optional[ProgressFn] = None,
        use_ledger: Optional[bool] = None,
        backend: Any = None,
        summary_progress: Optional[SummaryFn] = None,
        summary_threshold: int = SUMMARY_PROGRESS_THRESHOLD,
    ) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        if use_disk_cache is None:
            use_disk_cache = os.environ.get("REPRO_NO_CACHE", "") == ""
        # The run ledger rides with the disk cache by default: every
        # engine execution appends one manifest line to
        # <cache_dir>/ledger.jsonl (REPRO_NO_LEDGER=1 opts out).
        if use_ledger is None:
            use_ledger = (
                use_disk_cache
                and os.environ.get("REPRO_NO_LEDGER", "") == ""
            )
        self.jobs = resolve_jobs(jobs)
        self.cost_model = cost_model or DEFAULT_COSTS
        # ``backend`` names a registered result backend ("json",
        # "sqlite", "memory") or is a ready ResultBackend instance;
        # unset, the REPRO_BACKEND env var then the json default decide.
        if not use_disk_cache:
            self.disk: Optional[ResultBackend] = None
        elif isinstance(backend, ResultBackend):
            self.disk = backend
        else:
            self.disk = create_backend(backend, cache_dir)
        self.ledger = (
            obs_ledger.RunLedger(obs_ledger.default_ledger_path(cache_dir))
            if use_ledger
            else None
        )
        self.progress = progress
        # Quiet mode for fleet-scale batches: at or above
        # ``summary_threshold`` unique runs, per-run progress lines are
        # replaced by periodic ``summary_progress(done, total, counts)``
        # calls (when a summary callback is installed).
        self.summary_progress = summary_progress
        self.summary_threshold = summary_threshold
        self.stats = Stats()
        self._memo: Dict[str, RunResult] = {}

    # -- execution -------------------------------------------------------

    def run(self, request: RunRequest) -> RunResult:
        """Execute (or recall) one request."""
        return self.run_many([request])[0]

    def run_many(
        self,
        requests: Sequence[RunRequest],
        jobs: Optional[int] = None,
    ) -> List[RunResult]:
        """Execute a batch, answering from cache where possible.

        Results come back in request order. Duplicate requests within
        one batch execute once. Misses run in parallel when ``jobs`` (or
        the engine default) exceeds one and the batch has several.
        """
        jobs = self.jobs if jobs is None else resolve_jobs(jobs)
        tracer = get_tracer()
        with tracer.span(
            "engine.run_many", requests=len(requests)
        ) as batch_span:
            with tracer.span("cache.lookup"):
                keys = [
                    request.content_key(self.cost_model)
                    for request in requests
                ]
                results: Dict[str, RunResult] = {}
                misses: List[Tuple[str, RunRequest]] = []
                sources: Dict[str, str] = {}
                for key, request in zip(keys, requests):
                    if key in results or any(key == k for k, _ in misses):
                        continue
                    hit = self._lookup(key)
                    if hit is not None:
                        results[key] = hit
                        sources[key] = (
                            "memo" if key in self._memo else "cache"
                        )
                        if key not in self._memo:
                            self._memo[key] = hit
                    else:
                        misses.append((key, request))
            self.stats.add("engine.requests", len(requests))
            self.stats.add("engine.misses", len(misses))
            batch_span.set("misses", len(misses))

            emitted = 0
            total = len(results) + len(misses)
            summary = (
                self.summary_progress is not None
                and total >= self.summary_threshold
            )
            counts = {"cached": 0, "live": 0, "failed": 0}
            for key in list(results):
                request = _request_of(requests, keys, key)
                emitted += 1
                self._ledger_append(key, request, sources[key], 0.0,
                                    results[key])
                self._emit(emitted, total, request, sources[key], 0.0,
                           summary, counts)

            if misses:
                with tracer.span("execute", misses=len(misses)):
                    try:
                        for key, result, elapsed in self._execute_all(
                            misses, jobs
                        ):
                            results[key] = result
                            request = _request_of(requests, keys, key)
                            emitted += 1
                            self._ledger_append(key, request, "live",
                                                elapsed, result)
                            self._emit(emitted, total, request, "live",
                                       elapsed, summary, counts)
                    except Exception:
                        # The batch still fails (per-run isolation is a
                        # caller policy, not an engine one), but the
                        # summary line reports how far it got first.
                        if summary:
                            counts["failed"] += 1
                            self.summary_progress(
                                emitted, total, dict(counts)
                            )
                        raise
        return [results[key] for key in keys]

    def _execute_all(
        self, misses: Sequence[Tuple[str, RunRequest]], jobs: int
    ):
        """Yield ``(key, result, seconds)`` for each miss, parallel when
        it pays; results round-trip through ``to_dict`` either way so
        cached, serial, and parallel runs are bit-identical."""
        started = time.perf_counter()
        if jobs > 1 and len(misses) > 1:
            self.stats.add("engine.parallel_batches")
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                payloads = pool.map(
                    _execute_remote, [req for _, req in misses]
                )
                for (key, request), (data, elapsed) in zip(
                    misses, payloads
                ):
                    yield key, self._admit(key, request, data, elapsed), (
                        elapsed
                    )
        else:
            for key, request in misses:
                data, elapsed = _execute_remote(request)
                yield key, self._admit(key, request, data, elapsed), elapsed
        if misses:
            self.stats.add(
                "engine.live_seconds", time.perf_counter() - started
            )

    # -- cache plumbing --------------------------------------------------

    def _lookup(self, key: str) -> Optional[RunResult]:
        memo = self._memo.get(key)
        if memo is not None:
            self.stats.add("engine.memo.hits")
            return memo
        if self.disk is None:
            return None
        self.stats.add("engine.disk.gets")
        payload = self.disk.get(key)
        if payload is None:
            return None
        if not _envelope_ok(payload):
            # Readable storage holding a stale or foreign envelope:
            # retire it and re-simulate.
            self.disk.delete(key)
            self.stats.add("engine.disk.deletes")
            return None
        try:
            result = RunResult.from_dict(payload["result"])
        except (TypeError, ValueError):
            # Structurally valid JSON whose result no longer matches the
            # RunResult schema: treat as corrupt and re-simulate.
            self.disk.delete(key)
            self.stats.add("engine.disk.deletes")
            self.stats.add("engine.disk.corrupt")
            return None
        self.stats.add("engine.disk.hits")
        return result

    def _admit(
        self,
        key: str,
        request: RunRequest,
        data: Dict[str, Any],
        elapsed: float,
    ) -> RunResult:
        result = RunResult.from_dict(data)
        self._memo[key] = result
        if self.disk is not None:
            with get_tracer().span(
                "cache.admit", workload=request.spec.name
            ):
                self.disk.put(
                    key,
                    {
                        # Both spellings: ``schema_version`` is the
                        # explicit field, ``schema`` keeps version-0
                        # readers skipping (not misreading) new entries.
                        "schema_version": SCHEMA_VERSION,
                        "schema": SCHEMA_VERSION,
                        "key": key,
                        "workload": request.spec.name,
                        "stack": request.stack,
                        "elapsed_s": elapsed,
                        "result": data,
                    },
                )
            self.stats.add("engine.disk.writes")
        return result

    def _ledger_append(
        self,
        key: str,
        request: RunRequest,
        source: str,
        elapsed: float,
        result: RunResult,
    ) -> None:
        """Append one run-ledger manifest for an emitted result."""
        if self.ledger is None:
            return
        entry = obs_ledger.manifest(
            key,
            request.spec.name,
            request.stack,
            source,
            elapsed,
            {
                "total_cycles": result.total_cycles,
                "dram_bytes": result.dram_bytes,
                "stats": result.stats,
            },
            fingerprints={
                "source": source_fingerprint(),
                "cost_model": cost_model_fingerprint(self.cost_model),
            },
        )
        if getattr(result, "audit", None):
            entry["audit"] = result.audit
        self.ledger.append(entry)
        self.stats.add("engine.ledger.writes")

    def _emit(
        self,
        index: int,
        total: int,
        request: RunRequest,
        source: str,
        seconds: float,
        summary: bool = False,
        counts: Optional[Dict[str, int]] = None,
    ) -> None:
        if summary and counts is not None:
            counts["live" if source == "live" else "cached"] += 1
            # ~20 summary lines per batch, plus a guaranteed final one.
            stride = max(1, total // 20)
            if index % stride == 0 or index == total:
                self.summary_progress(index, total, dict(counts))
            return
        if self.progress is not None:
            self.progress(index, total, request, source, seconds)

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Counter snapshot (``engine.*`` namespace)."""
        return self.stats.with_prefix("engine")


def _request_of(
    requests: Sequence[RunRequest], keys: Sequence[str], key: str
) -> RunRequest:
    return requests[keys.index(key)]


# -- the shared default engine ------------------------------------------------

_default_engine: Optional[ExperimentEngine] = None


def get_default_engine() -> ExperimentEngine:
    """The process-wide engine every harness entry point shares.

    Sharing one engine is what makes the in-memory memo global: the CLI,
    the sweeps, and every benchmark fixture see each other's results.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


def set_default_engine(
    engine: Optional[ExperimentEngine],
) -> Optional[ExperimentEngine]:
    """Swap the shared engine (tests, CLI flags); returns the old one."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
