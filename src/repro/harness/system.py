"""System assembly and trace replay.

``SimulatedSystem`` builds a complete stack — machine, kernel, and either
the language's software allocator (baseline) or the Memento hardware plus
the routing runtime (treatment) — and replays a workload trace through it,
collecting cycles by category, DRAM traffic, and memory usage. Both stacks
run on identical hardware; the only difference is who handles memory
management.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

from repro.allocators import ALLOCATOR_BY_LANGUAGE
from repro.allocators.jemalloc import JemallocAllocator
from repro.core.config import MementoConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.cycles import CostModel
from repro.sim.machine import Machine
from repro.sim.params import MachineParams, PAGE_SHIFT, PAGE_SIZE
from repro.workloads.dataproc import DATAPROC_PURGE_AFTER, DATAPROC_RUN_BYTES
from repro.workloads.synth import WorkloadSpec, generate_trace
from repro.workloads.trace import Alloc, Compute, Free, Touch, Trace

#: Cycle categories making up memory management on each stack.
BASELINE_MM = ("user_alloc", "user_free", "kernel_page", "walk")
MEMENTO_MM = (
    "hw_alloc",
    "hw_free",
    "hw_page",
    "user_alloc",
    "user_free",
    "kernel_page",
    "walk",
)

#: Container cold-start model (§6.6): crun setup work executed before the
#: function body, identical on both stacks (container pages are not heap
#: and stay outside Memento's region).
COLD_START_APP_FRACTION = 0.18
COLD_START_PAGES = 400


@dataclass
class RunResult:
    """Everything one replay produced."""

    name: str
    memento: bool
    cycles: Dict[str, float] = field(default_factory=dict)
    total_cycles: float = 0.0
    seconds: float = 0.0
    dram_bytes: float = 0.0
    user_pages_aggregate: int = 0
    kernel_pages_aggregate: int = 0
    peak_pages: int = 0
    peak_user_pages: int = 0
    hot_alloc_hit_rate: Optional[float] = None
    hot_free_hit_rate: Optional[float] = None
    aac_hit_rate: Optional[float] = None
    bypassed_lines: int = 0
    list_ops_alloc: float = 0.0
    list_ops_free: float = 0.0
    allocs: int = 0
    frees: int = 0
    stats: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (the disk-cache payload format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`; raises on unknown or missing keys
        so a corrupted cache entry fails loudly at deserialization time."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunResult fields: {sorted(unknown)}")
        result = cls(**dict(data))
        if not isinstance(result.name, str) or not isinstance(
            result.cycles, dict
        ):
            raise ValueError("malformed RunResult payload")
        return result

    @property
    def total_pages_aggregate(self) -> int:
        return self.user_pages_aggregate + self.kernel_pages_aggregate

    @property
    def mm_cycles(self) -> float:
        keys = MEMENTO_MM if self.memento else BASELINE_MM
        return sum(self.cycles.get(key, 0.0) for key in keys)


class SimulatedSystem:
    """One process on one core, baseline or Memento."""

    def __init__(
        self,
        spec: WorkloadSpec,
        memento: bool,
        machine_params: Optional[MachineParams] = None,
        cost_model: Optional[CostModel] = None,
        memento_config: Optional[MementoConfig] = None,
        mmap_populate: bool = False,
        cold_start: bool = False,
        allocator_cls=None,
        allocator_kwargs: Optional[dict] = None,
        machine: Optional[Machine] = None,
        kernel: Optional[Kernel] = None,
        page_allocator: Optional[HardwarePageAllocator] = None,
    ) -> None:
        """``machine``/``kernel``/``page_allocator`` may be supplied to
        co-locate several systems on shared hardware (the multi-process
        study of §6.6); by default each system gets a private stack."""
        self.spec = spec.resolved()
        self.memento = memento
        self.machine = machine or Machine(machine_params, cost_model)
        self.kernel = kernel or Kernel(self.machine)
        self.process = self.kernel.create_process()
        self.core = self.machine.core
        self.cold_start = cold_start
        self.config = memento_config or MementoConfig()

        if memento:
            self.page_allocator = page_allocator or HardwarePageAllocator(
                self.kernel, self.config
            )
            self.runtime = MementoRuntime(
                self.kernel,
                self.process,
                self.core,
                self.spec.language,
                self.page_allocator,
                self.config,
            )
            self.allocator = None
        else:
            self.page_allocator = None
            self.runtime = None
            cls = allocator_cls or ALLOCATOR_BY_LANGUAGE[self.spec.language]
            kwargs = dict(allocator_kwargs or {})
            if (
                cls is JemallocAllocator
                and self.spec.category == "dataproc"
                and "purge_after" not in kwargs
            ):
                kwargs["purge_after"] = DATAPROC_PURGE_AFTER
                kwargs["run_bytes"] = DATAPROC_RUN_BYTES
            kwargs["touch"] = self._metadata_touch
            self.allocator = cls(self.kernel, self.process, **kwargs)
            self.allocator.mmap_populate = mmap_populate
            self.allocator.warm = self.spec.warm_heap
            self.allocator.large.warm = self.spec.warm_heap
        if memento and mmap_populate:
            raise ValueError("MAP_POPULATE applies to the baseline stack")

        self._addr_of: Dict[int, int] = {}
        self._size_of: Dict[int, int] = {}

    def _metadata_touch(
        self, core, vaddr: int, write: bool, category: str
    ) -> None:
        """Allocator metadata updates (pool/run headers, free-list heads)
        are real memory accesses: they occupy cache space and generate the
        allocation traffic the HOT absorbs on the Memento stack."""
        pfn = self._translate(vaddr)
        paddr = (pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))
        result = core.caches.access(paddr, write=write)
        core.charge(result.cycles, category)

    # -- the malloc/free/access surface ---------------------------------------

    def _malloc(self, size: int) -> int:
        if self.memento:
            return self.runtime.malloc(size)
        return self.allocator.malloc(self.core, size)

    def _free(self, addr: int) -> None:
        if self.memento:
            self.runtime.free(addr)
        else:
            self.allocator.free(self.core, addr)

    def _translate(self, vaddr: int) -> int:
        """MMU path: TLB, then the owning page table, filling on demand."""
        vpn = vaddr >> PAGE_SHIFT
        pfn = self.core.tlb.lookup(vpn)
        if pfn is not None:
            return pfn
        if self.memento and self.runtime.context.region.contains(vaddr):
            pfn = self.page_allocator.handle_walk(
                self.core, self.process, vaddr
            )
        else:
            pfn = self.kernel.translate(self.core, self.process, vaddr)
            if pfn is None:
                pfn = self.kernel.fault_handler.handle(
                    self.core, self.process, vaddr
                )
        self.core.tlb.insert(vpn, pfn)
        return pfn

    def _touch(self, event: Touch) -> None:
        base = self._addr_of[event.obj] + event.line_offset * 64
        header = None
        bypass = None
        if self.memento:
            header = self.runtime.context.object_allocator.header_of(base)
            bypass = self.runtime.context.bypass
        for line in range(event.lines):
            vaddr = base + line * 64
            pfn = self._translate(vaddr)
            paddr = (pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))
            if header is not None:
                result = bypass.access(
                    self.core, header, vaddr, event.write, cache_addr=paddr
                )
            else:
                result = self.core.caches.access(paddr, write=event.write)
            self.core.charge(result.cycles, "touch")

    # -- replay ------------------------------------------------------------------

    def run(self, trace: Optional[Trace] = None) -> RunResult:
        """Replay ``trace`` (generated from the spec when omitted)."""
        trace = trace or generate_trace(self.spec)
        if self.cold_start:
            self._run_cold_start(trace)
        allocs = frees = 0
        for event in trace:
            if isinstance(event, Compute):
                self.core.charge(event.cycles, "app")
                if event.dram_bytes:
                    self.machine.dram.record_bulk_bytes(event.dram_bytes)
            elif isinstance(event, Alloc):
                addr = self._malloc(event.size)
                self._addr_of[event.obj] = addr
                self._size_of[event.obj] = event.size
                allocs += 1
            elif isinstance(event, Touch):
                self._touch(event)
            elif isinstance(event, Free):
                self._free(self._addr_of.pop(event.obj))
                del self._size_of[event.obj]
                frees += 1
        if trace.category == "function":
            self._function_exit()
        return self._collect(trace, allocs, frees)

    def _run_cold_start(self, trace: Trace) -> None:
        """Container setup before the function body (identical work on
        both stacks: container pages are not Memento-managed)."""
        spec = self.spec
        setup_app = int(
            spec.num_allocs * spec.compute_per_alloc * COLD_START_APP_FRACTION
        )
        self.core.charge(setup_app, "app")
        base = self.kernel.syscalls.mmap(
            self.core, self.process, COLD_START_PAGES * PAGE_SIZE
        )
        for page in range(COLD_START_PAGES):
            self.kernel.fault_handler.handle(
                self.core, self.process, base + page * PAGE_SIZE
            )
        self.machine.dram.record_bulk_bytes(COLD_START_PAGES * 1024)

    def _function_exit(self) -> None:
        """Function completion: runtimes tear down, the OS batch-frees."""
        if self.memento:
            self.runtime.teardown()
        else:
            self.allocator.teardown(self.core)
        self.kernel.exit_process(self.core, self.process)

    # -- result collection ----------------------------------------------------------

    def _collect(self, trace: Trace, allocs: int, frees: int) -> RunResult:
        stats = self.machine.stats
        cycles = {
            key.split("cycles.", 1)[1]: value
            for key, value in stats.with_prefix("cycles").items()
        }
        result = RunResult(
            name=trace.name,
            memento=self.memento,
            cycles=cycles,
            total_cycles=self.core.cycles,
            seconds=self.machine.params.cycles_to_seconds(self.core.cycles),
            dram_bytes=self.machine.dram.total_bytes,
            allocs=allocs,
            frees=frees,
            stats=stats.snapshot(),
        )
        result.peak_pages = max(
            self.machine.frames.peak("user")
            + self.machine.frames.peak("kernel"),
            1,
        )
        result.peak_user_pages = max(self.machine.frames.peak("user"), 1)
        if self.memento:
            allocator = self.runtime.context.object_allocator
            result.hot_alloc_hit_rate = allocator.hot.alloc_hit_rate()
            result.hot_free_hit_rate = allocator.hot.free_hit_rate()
            result.aac_hit_rate = self.page_allocator.aac.hit_rate()
            result.bypassed_lines = int(
                stats["memento.bypass.bypassed_lines"]
            )
            list_ops = (
                stats["memento.list.available.pushes"]
                + stats["memento.list.available.removes"]
                + stats["memento.list.full.pushes"]
                + stats["memento.list.full.removes"]
            )
            # Split list surgery between the alloc path (arena switches)
            # and the free path (full->available moves, releases).
            alloc_side = (
                stats["memento.list.full.pushes"]
                + stats["memento.list.available.removes"]
            )
            result.list_ops_alloc = alloc_side / max(1, allocs)
            result.list_ops_free = (list_ops - alloc_side) / max(1, frees)
            result.user_pages_aggregate = int(
                stats["memento.page.arena_pages_mapped"]
            ) + self.process.user_pages_aggregate
            # Memento table pages are pool pages recycled in hardware; the
            # OS allocates them once, so the aggregate contribution is the
            # peak, not the churn count.
            result.kernel_pages_aggregate = (
                int(stats["memento.page.table_pages_peak"])
                + int(self.machine.frames.aggregate("kernel"))
                + self.process.vmas.aggregate_metadata_pages()
            )
        else:
            result.user_pages_aggregate = self.process.user_pages_aggregate
            result.kernel_pages_aggregate = int(
                self.machine.frames.aggregate("kernel")
            ) + self.process.vmas.aggregate_metadata_pages()
        return result
