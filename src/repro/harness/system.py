"""System assembly and trace replay.

``SimulatedSystem`` builds a complete stack — machine, kernel, and either
the language's software allocator (baseline) or the Memento hardware plus
the routing runtime (treatment) — and replays a workload trace through it,
collecting cycles by category, DRAM traffic, and memory usage. Both stacks
run on identical hardware; the only difference is who handles memory
management.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

from repro.allocators import ALLOCATOR_BY_LANGUAGE
from repro.allocators.jemalloc import JemallocAllocator
from repro.audit import invariants as audit_invariants
from repro import stacks as stack_registry
from repro.resolve import resolve_stack
from repro.obs import profile as obs_profile
from repro.obs.tracing import get_tracer
from repro.core.bypass import COUNTER_MAX
from repro.core.config import MementoConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.harness import vector_kernel
from repro.kernel.kernel import Kernel
from repro.sim.cycles import CostModel
from repro.sim.machine import Machine
from repro.sim.params import MachineParams, PAGE_SHIFT, PAGE_SIZE
from repro.workloads.dataproc import DATAPROC_PURGE_AFTER, DATAPROC_RUN_BYTES
from repro.workloads.synth import WorkloadSpec, generate_trace
from repro.workloads.trace import (
    Alloc,
    Compute,
    Free,
    KIND_ALLOC,
    KIND_COMPUTE,
    KIND_FREE,
    KIND_TOUCH,
    Touch,
    Trace,
)

_PAGE_MASK = PAGE_SIZE - 1

#: Cycle categories making up memory management on each stack. The
#: ``restore``/``reclaim_release`` categories are charged only by the
#: snapshot/reclaim stacks (software paths), so including them leaves
#: baseline sums untouched.
BASELINE_MM = (
    "user_alloc",
    "user_free",
    "kernel_page",
    "walk",
    "restore",
    "reclaim_release",
)
MEMENTO_MM = (
    "hw_alloc",
    "hw_free",
    "hw_page",
    "user_alloc",
    "user_free",
    "kernel_page",
    "walk",
)

#: Container cold-start model (§6.6): crun setup work executed before the
#: function body, identical on both stacks (container pages are not heap
#: and stay outside Memento's region).
COLD_START_APP_FRACTION = 0.18
COLD_START_PAGES = 400

#: Version stamped into every :meth:`RunResult.to_dict` payload. Bump on
#: any field rename/retype; additive fields with defaults may keep it.
RESULT_SCHEMA_VERSION = 1


@dataclass
class RunResult:
    """Everything one replay produced."""

    name: str
    memento: bool
    cycles: Dict[str, float] = field(default_factory=dict)
    total_cycles: float = 0.0
    seconds: float = 0.0
    dram_bytes: float = 0.0
    user_pages_aggregate: int = 0
    kernel_pages_aggregate: int = 0
    peak_pages: int = 0
    peak_user_pages: int = 0
    hot_alloc_hit_rate: Optional[float] = None
    hot_free_hit_rate: Optional[float] = None
    aac_hit_rate: Optional[float] = None
    bypassed_lines: int = 0
    list_ops_alloc: float = 0.0
    list_ops_free: float = 0.0
    allocs: int = 0
    frees: int = 0
    stats: Dict[str, float] = field(default_factory=dict)
    #: Invariant-audit summary (None unless an auditor was installed).
    audit: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation (the wire and disk-cache format).

        Stamped with ``schema_version`` so the format can evolve:
        version-0 payloads (written before the field existed) carry the
        same body and upgrade transparently in :meth:`from_dict`.
        ``audit`` only appears when an auditor was installed, keeping
        unaudited payloads (golden fixtures, cache entries, digests)
        stable across the subsystem's introduction.
        """
        payload = asdict(self)
        payload["schema_version"] = RESULT_SCHEMA_VERSION
        if payload.get("audit") is None:
            payload.pop("audit", None)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`; raises on unknown or missing keys
        so a corrupted cache entry fails loudly at deserialization time.

        A missing ``schema_version`` marks a version-0 payload, whose
        body is identical — it upgrades for free. A version newer than
        this reader is rejected (never guess at a future format).
        """
        data = dict(data)
        version = data.pop("schema_version", 0)
        if not isinstance(version, int) or version > RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"RunResult schema_version {version!r} is newer than "
                f"this reader understands ({RESULT_SCHEMA_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunResult fields: {sorted(unknown)}")
        result = cls(**data)
        if not isinstance(result.name, str) or not isinstance(
            result.cycles, dict
        ):
            raise ValueError("malformed RunResult payload")
        return result

    @property
    def total_pages_aggregate(self) -> int:
        return self.user_pages_aggregate + self.kernel_pages_aggregate

    @property
    def mm_cycles(self) -> float:
        keys = MEMENTO_MM if self.memento else BASELINE_MM
        return sum(self.cycles.get(key, 0.0) for key in keys)


class SimulatedSystem:
    """One process on one core, baseline or Memento."""

    def __init__(
        self,
        spec: WorkloadSpec,
        stack=None,
        machine_params: Optional[MachineParams] = None,
        cost_model: Optional[CostModel] = None,
        memento_config: Optional[MementoConfig] = None,
        mmap_populate: bool = False,
        cold_start: bool = False,
        allocator_cls=None,
        allocator_kwargs: Optional[dict] = None,
        machine: Optional[Machine] = None,
        kernel: Optional[Kernel] = None,
        page_allocator: Optional[HardwarePageAllocator] = None,
        replay_kernel: Optional[str] = None,
        memento: Optional[bool] = None,
    ) -> None:
        """``stack`` names a registered memory-management stack (see
        :mod:`repro.stacks`); the legacy ``memento`` boolean — positional
        or by keyword — still resolves (``True`` → memento, ``False`` →
        baseline).

        ``machine``/``kernel``/``page_allocator`` may be supplied to
        co-locate several systems on shared hardware (the multi-process
        study of §6.6); by default each system gets a private stack.

        ``replay_kernel`` picks the replay implementation —
        ``scalar``/``vectorized``/``auto`` (default: ``$REPRO_KERNEL``,
        else ``auto``). Both kernels are bit-identical; see
        :mod:`repro.harness.vector_kernel`."""
        self.spec = spec.resolved()
        if stack is None:
            stack = bool(memento) if memento is not None else False
        self.stack = stack_registry.get_stack(resolve_stack(stack))
        self.stack_name = self.stack.name
        memento = self.stack.hardware
        self.memento = memento
        # Knob support is declared per stack (repro.stacks): an
        # unsupported knob fails loudly naming the offending stack
        # instead of inheriting another stack's semantics.
        if mmap_populate and "mmap_populate" not in self.stack.knobs:
            raise ValueError(
                f"MAP_POPULATE is not supported by the "
                f"{self.stack_name!r} stack (supported knobs: "
                f"{sorted(self.stack.knobs) or 'none'})"
            )
        if allocator_cls is not None and "allocator" not in self.stack.knobs:
            raise ValueError(
                f"allocator overrides are not supported by the "
                f"{self.stack_name!r} stack (supported knobs: "
                f"{sorted(self.stack.knobs) or 'none'})"
            )
        self.replay_kernel_choice = vector_kernel.resolve_choice(
            replay_kernel
        )
        self.replay_kernel = vector_kernel.resolve_kernel(
            self.replay_kernel_choice
        )
        # Cycle-attribution profile, bound before any component below is
        # constructed so their cells intern against it; the checkpoint
        # scopes this system's deltas (profiled systems must run
        # sequentially — interleaved construction would mix windows).
        self._profile = obs_profile.PROFILE
        self._profile_ckpt = (
            self._profile.checkpoint() if self._profile is not None else None
        )
        # Invariant auditor, captured at construction exactly like the
        # profile/ring hooks: with none installed (the default) the replay
        # paths below are byte-identical to an audit-free build.
        self._audit = audit_invariants.AUDIT
        self.machine = machine or Machine(machine_params, cost_model)
        self.kernel = kernel or Kernel(self.machine)
        self.process = self.kernel.create_process()
        self.core = self.machine.core
        self.cold_start = cold_start
        self.config = memento_config or MementoConfig()

        self._addr_of: Dict[int, int] = {}
        self._size_of: Dict[int, int] = {}
        # Hoisted `cycles.touch` cell: `_touch_lines` batches one event's
        # line latencies into a single add (int sums, so bit-identical to
        # per-line charging).
        self._touch_cycles = self.core.cycle_counter("touch")
        # Replay fast-path peeks: the L1 TLB / L1D sets of this system's
        # core, so the common all-hits metadata access needs no calls into
        # the sim layer. A peek-hit mutates exactly what the full lookup
        # would (LRU bump + hit counter); a peek-miss mutates nothing and
        # falls back to the full path, which then counts the miss itself.
        tlb = self.core.tlb
        caches = self.core.caches
        self._tlb_l1_sets = tlb._l1_sets
        self._tlb_l1_nsets = tlb._l1_num_sets
        self._tlb_l1_hit = tlb.l1_hits
        self._cache_l1_sets = caches._l1_sets
        self._cache_l1_nsets = caches._l1_num_sets
        self._cache_l1_hit = caches._l1_hits
        self._l1_hit_cycles = caches._r_l1.cycles
        self._meta_cells: Dict[str, Any] = {}
        # The allocator metadata-touch callback is built as a closure so
        # its per-call state loads from closure cells, not `self`.
        self._metadata_touch = self._make_metadata_touch()

        if memento:
            self.page_allocator = page_allocator or HardwarePageAllocator(
                self.kernel, self.config
            )
            self.runtime = MementoRuntime(
                self.kernel,
                self.process,
                self.core,
                self.spec.language,
                self.page_allocator,
                self.config,
            )
            self.allocator = None
            self._header_of = self.runtime.context.object_allocator.header_of
        else:
            self.page_allocator = None
            self.runtime = None
            cls = allocator_cls or ALLOCATOR_BY_LANGUAGE[self.spec.language]
            kwargs = dict(allocator_kwargs or {})
            if (
                cls is JemallocAllocator
                and self.spec.category == "dataproc"
                and "purge_after" not in kwargs
            ):
                kwargs["purge_after"] = DATAPROC_PURGE_AFTER
                kwargs["run_bytes"] = DATAPROC_RUN_BYTES
            kwargs["touch"] = self._metadata_touch
            self.allocator = cls(self.kernel, self.process, **kwargs)
            self.allocator.mmap_populate = mmap_populate
            # The stack decides whether heap mmaps arrive pre-backed
            # (baseline: the workload's warm_heap; snapshot: prefetch on
            # warm restores; reclaim: never) and installs any per-page
            # charge hooks (snapshot's restore latency).
            warm = self.stack.allocator_warm(self.spec, cold_start)
            self.allocator.warm = warm
            self.allocator.large.warm = warm
            self.stack.configure_allocator(self, self.allocator)
            self._header_of = None
        # Built last: the touch closure captures the stack-specific cells
        # (bypass engine on Memento) chosen above.
        self._touch_lines = self._make_touch_lines()
        # Baseline for the derived bypass component (co-located machines
        # may carry counts from an earlier system on the same stats).
        self._profile_bypassed0 = (
            int(self.machine.stats["memento.bypass.bypassed_lines"])
            if self._profile is not None and memento
            else 0
        )

    def _make_metadata_touch(self):
        """Build the allocator metadata-touch callback.

        Allocator metadata updates (pool/run headers, free-list heads) are
        real memory accesses: they occupy cache space and generate the
        allocation traffic the HOT absorbs on the Memento stack. The
        callback runs twice per baseline malloc/free, so it is a closure —
        every piece of per-call state is a captured cell rather than an
        attribute chase through ``self``.
        """
        tlb_sets = self._tlb_l1_sets
        tlb_nsets = self._tlb_l1_nsets
        tlb_hit = self._tlb_l1_hit
        l1_sets = self._cache_l1_sets
        l1_nsets = self._cache_l1_nsets
        l1_hit = self._cache_l1_hit
        l1_hit_cycles = self._l1_hit_cycles
        access_line = self.core.caches.access_line
        translate = self._translate
        meta_cells = self._meta_cells
        cycle_counter = self.core.cycle_counter
        page_shift = PAGE_SHIFT
        page_mask = _PAGE_MASK

        def metadata_touch(core, vaddr, write, category):
            vpn = vaddr >> page_shift
            tlb_set = tlb_sets[vpn % tlb_nsets]
            if vpn in tlb_set:
                tlb_set.move_to_end(vpn)
                tlb_hit.pending += 1
                pfn = tlb_set[vpn]
            else:
                pfn = translate(vaddr)
            line = ((pfn << page_shift) | (vaddr & page_mask)) >> 6
            l1_set = l1_sets[line % l1_nsets]
            if line in l1_set:
                l1_set.move_to_end(line)
                if write:
                    l1_set[line] = True
                l1_hit.pending += 1
                cycles = l1_hit_cycles
            else:
                cycles = access_line(line, write)[1]
            core.cycles += cycles
            cell = meta_cells.get(category)
            if cell is None:
                cell = meta_cells[category] = cycle_counter(category)
            cell.pending += cycles

        # Specialized variants for the two categories every allocator
        # emits on its malloc/free fast paths: the category cell and the
        # write flag are bound into the closure, dropping two arguments
        # and a dict probe per call. Exposed as attributes so the
        # allocator base class can pick them up without a new parameter.
        def make_category_touch(category):
            cell = None

            def category_touch(core, vaddr):
                nonlocal cell
                vpn = vaddr >> page_shift
                tlb_set = tlb_sets[vpn % tlb_nsets]
                if vpn in tlb_set:
                    tlb_set.move_to_end(vpn)
                    tlb_hit.pending += 1
                    pfn = tlb_set[vpn]
                else:
                    pfn = translate(vaddr)
                line = ((pfn << page_shift) | (vaddr & page_mask)) >> 6
                l1_set = l1_sets[line % l1_nsets]
                if line in l1_set:
                    l1_set.move_to_end(line)
                    l1_set[line] = True
                    l1_hit.pending += 1
                    cycles = l1_hit_cycles
                else:
                    cycles = access_line(line, True)[1]
                core.cycles += cycles
                if cell is None:
                    cell = meta_cells.get(category)
                    if cell is None:
                        cell = meta_cells[category] = cycle_counter(category)
                cell.pending += cycles

            return category_touch

        metadata_touch.alloc = make_category_touch("user_alloc")
        metadata_touch.free = make_category_touch("user_free")
        return metadata_touch

    # -- the malloc/free/access surface ---------------------------------------

    def _malloc(self, size: int) -> int:
        if self.memento:
            return self.runtime.malloc(size)
        return self.allocator.malloc(self.core, size)

    def _free(self, addr: int) -> None:
        if self.memento:
            self.runtime.free(addr)
        else:
            self.allocator.free(self.core, addr)

    def _translate(self, vaddr: int) -> int:
        """MMU path: TLB, then the owning page table, filling on demand."""
        vpn = vaddr >> PAGE_SHIFT
        pfn = self.core.tlb.lookup(vpn)
        if pfn is not None:
            return pfn
        if self.memento and self.runtime.context.region.contains(vaddr):
            pfn = self.page_allocator.handle_walk(
                self.core, self.process, vaddr
            )
        else:
            pfn = self.kernel.translate(self.core, self.process, vaddr)
            if pfn is None:
                pfn = self.kernel.fault_handler.handle(
                    self.core, self.process, vaddr
                )
        self.core.tlb.insert(vpn, pfn)
        return pfn

    def _touch(self, event: Touch) -> None:
        self._touch_lines(
            event.obj, event.lines, event.line_offset, event.write
        )

    def _make_touch_lines(self):
        """Build the per-event line-touch kernel as a closure.

        Accesses ``lines`` consecutive cache lines of an object: the
        innermost replay loop. Two fast-path transformations, both
        accounting-identical to the straightforward per-line form:

        * consecutive lines on the same page skip the TLB probe — the
          previous line's lookup/insert left the page MRU in the L1 TLB,
          so a probe would hit without changing state; the hit is counted
          manually via the exposed ``l1_hits`` cell;
        * per-line latencies (ints) are summed locally and charged to
          ``cycles.touch`` once per event.

        A closure rather than a method so every piece of per-call state —
        TLB/L1 sets, counter cells, the bypass engine's decision inputs —
        loads from captured cells instead of attribute chains.
        """
        core = self.core
        addr_of = self._addr_of
        translate = self._translate
        tlb_sets = self._tlb_l1_sets
        tlb_nsets = self._tlb_l1_nsets
        tlb_hit = self._tlb_l1_hit
        l1_sets = self._cache_l1_sets
        l1_nsets = self._cache_l1_nsets
        l1_hit = self._cache_l1_hit
        l1_hit_cycles = self._l1_hit_cycles
        caches = core.caches
        access_line = caches.access_line
        touch_cycles = self._touch_cycles
        page_shift = PAGE_SHIFT
        page_mask = _PAGE_MASK

        if not self.memento:

            def touch_lines(obj, lines, line_offset, write):
                base = addr_of[obj] + line_offset * 64
                total = 0
                last_vpn = -1
                frame_base = 0
                for vaddr in range(base, base + lines * 64, 64):
                    vpn = vaddr >> page_shift
                    if vpn != last_vpn:
                        tlb_set = tlb_sets[vpn % tlb_nsets]
                        if vpn in tlb_set:
                            tlb_set.move_to_end(vpn)
                            tlb_hit.pending += 1
                            frame_base = tlb_set[vpn] << page_shift
                        else:
                            frame_base = translate(vaddr) << page_shift
                        last_vpn = vpn
                    else:
                        tlb_hit.pending += 1
                    line = (frame_base | (vaddr & page_mask)) >> 6
                    l1_set = l1_sets[line % l1_nsets]
                    if line in l1_set:
                        l1_set.move_to_end(line)
                        if write:
                            l1_set[line] = True
                        l1_hit.pending += 1
                        total += l1_hit_cycles
                    else:
                        total += access_line(line, write)[1]
                core.cycles += total
                touch_cycles.pending += total

            return touch_lines

        # Memento: the bypass decision (inlined BypassEngine.access, §3.3)
        # runs per line when the touched object has a live arena header;
        # headerless addresses take the plain route above.
        header_of = self._header_of
        bypass = self.runtime.context.bypass
        enabled = bypass.enabled
        bypassed_cell = bypass._bypassed_lines
        regular_cell = bypass._regular_lines
        instantiate = caches.instantiate
        bypass_cycles = caches._r_bypass.cycles
        counter_max = COUNTER_MAX

        def touch_lines(obj, lines, line_offset, write):
            base = addr_of[obj] + line_offset * 64
            total = 0
            last_vpn = -1
            frame_base = 0
            header = header_of(base)
            if header is not None:
                header_va = header.va
                for vaddr in range(base, base + lines * 64, 64):
                    vpn = vaddr >> page_shift
                    if vpn != last_vpn:
                        tlb_set = tlb_sets[vpn % tlb_nsets]
                        if vpn in tlb_set:
                            tlb_set.move_to_end(vpn)
                            tlb_hit.pending += 1
                            frame_base = tlb_set[vpn] << page_shift
                        else:
                            frame_base = translate(vaddr) << page_shift
                        last_vpn = vpn
                    else:
                        tlb_hit.pending += 1
                    # Saturated counters never bypass: past counter_max
                    # the touched-line bound is unknown (bypass-soundness).
                    line_index = (vaddr - header_va) >> 6
                    if line_index >= header.bypass_counter:
                        bypassable = enabled and line_index < counter_max
                        header.bypass_counter = (
                            line_index + 1
                            if line_index < counter_max
                            else counter_max
                        )
                    else:
                        bypassable = False
                    cache_addr = frame_base | (vaddr & page_mask)
                    if bypassable:
                        bypassed_cell.pending += 1
                        instantiate(cache_addr, write)
                        total += bypass_cycles
                    else:
                        regular_cell.pending += 1
                        line = cache_addr >> 6
                        l1_set = l1_sets[line % l1_nsets]
                        if line in l1_set:
                            l1_set.move_to_end(line)
                            if write:
                                l1_set[line] = True
                            l1_hit.pending += 1
                            total += l1_hit_cycles
                        else:
                            total += access_line(line, write)[1]
            else:
                for vaddr in range(base, base + lines * 64, 64):
                    vpn = vaddr >> page_shift
                    if vpn != last_vpn:
                        tlb_set = tlb_sets[vpn % tlb_nsets]
                        if vpn in tlb_set:
                            tlb_set.move_to_end(vpn)
                            tlb_hit.pending += 1
                            frame_base = tlb_set[vpn] << page_shift
                        else:
                            frame_base = translate(vaddr) << page_shift
                        last_vpn = vpn
                    else:
                        tlb_hit.pending += 1
                    line = (frame_base | (vaddr & page_mask)) >> 6
                    l1_set = l1_sets[line % l1_nsets]
                    if line in l1_set:
                        l1_set.move_to_end(line)
                        if write:
                            l1_set[line] = True
                        l1_hit.pending += 1
                        total += l1_hit_cycles
                    else:
                        total += access_line(line, write)[1]
            core.cycles += total
            touch_cycles.pending += total

        return touch_lines

    # -- replay ------------------------------------------------------------------

    def run(self, trace: Optional[Trace] = None) -> RunResult:
        """Replay ``trace`` (generated from the spec when omitted).

        Each phase — trace load, columnar pack (inside ``columnar()``),
        replay, stats fold — runs under a tracer span; with the default
        null tracer every span is one shared no-op context manager, so
        the instrumented path is indistinguishable from the bare one.
        """
        import gc

        tracer = get_tracer()
        profile = self._profile
        marks = []
        with tracer.span(
            "system.run",
            workload=self.spec.name,
            stack=self.stack_name,
        ) as run_span:
            if profile is not None:
                marks.append(("setup", self.core.cycles))
            if trace is None:
                with tracer.span("trace.load", workload=self.spec.name):
                    trace = generate_trace(self.spec)
            if self.cold_start:
                self._run_cold_start(trace)
            # Invocation-entry costs (snapshot restore); a no-op on the
            # baseline/memento stacks.
            self.stack.begin_run(self)
            if profile is not None:
                marks.append(("cold_start", self.core.cycles))
            audit = self._audit
            packer = getattr(trace, "columnar", None)
            # Event-epoch auditing needs per-event dispatch with check
            # hooks, so the packed form is skipped entirely for it.
            if audit is not None and audit.steps_events:
                columnar = None
            else:
                columnar = packer() if packer is not None else None
            # The replay churns through dataclass records and OrderedDict
            # nodes fast enough to trip the cyclic collector thousands of
            # times per run; nothing in the simulator creates cycles
            # mid-run, so the pauses buy no memory back. Suspend
            # collection for the replay only (restoring the caller's
            # setting on every exit path).
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                with tracer.span("replay", events=len(trace)):
                    if audit is not None and audit.steps_events:
                        allocs, frees = self._replay_audited(trace, audit)
                    elif columnar is not None:
                        # Kernel choice changes only the iteration
                        # structure — results are bit-identical (golden
                        # fixtures + lockstep suite + oracle cross-check).
                        if self.replay_kernel == "vectorized":
                            allocs, frees = vector_kernel.replay(
                                self, columnar
                            )
                        else:
                            allocs, frees = self._replay_columnar(columnar)
                    else:
                        allocs, frees = self._replay_events(trace)
            finally:
                if gc_was_enabled:
                    gc.enable()
            if profile is not None:
                marks.append(("replay", self.core.cycles))
            # The per-run check fires before function exit: teardown
            # destroys the structures the rules inspect.
            if audit is not None:
                audit.check(audit_invariants.AuditContext.from_system(self))
            if trace.category == "function":
                self._function_exit()
            if profile is not None:
                marks.append(("teardown", self.core.cycles))
            with tracer.span("stats.fold"):
                result = self._collect(trace, allocs, frees)
            if audit is not None:
                result.audit = audit.summary()
            if profile is not None:
                self._finish_profile(result, marks)
            run_span.set("total_cycles", result.total_cycles)
        return result

    def _finish_profile(self, result: RunResult, marks) -> None:
        """Reconcile this run's cycle attribution into the installed
        profile (:meth:`CycleProfile.finish_run`). Read-only over the
        simulator's state: the RunResult is already built and unchanged.
        """
        derived = None
        if self.memento:
            bypassed = (
                int(result.stats.get("memento.bypass.bypassed_lines", 0))
                - self._profile_bypassed0
            )
            if bypassed:
                # Each bypassed line charged exactly the LLC-instantiate
                # latency into cycles.touch, so the component is exact.
                cost = self.core.caches._r_bypass.cycles
                derived = {
                    "touch.bypass_instantiate": (bypassed, bypassed * cost)
                }
        phases = {}
        prev = 0
        for name, cycle_mark in marks:
            delta = cycle_mark - prev
            prev = cycle_mark
            if delta:
                phases[name] = delta
        self._profile.finish_run(
            workload=result.name,
            stack=self.stack_name,
            categories={k: int(v) for k, v in result.cycles.items()},
            total_cycles=int(result.total_cycles),
            checkpoint=self._profile_ckpt,
            derived=derived,
            phases=phases,
        )

    def _replay_columnar(self, columnar) -> "tuple[int, int]":
        """Drive the packed trace form: integer kind tags and operand
        columns, no per-event objects or attribute loads."""
        allocs = frees = 0
        addr_of = self._addr_of
        size_of = self._size_of
        touch_lines = self._touch_lines
        core = self.core
        app_cell = core.cycle_counter("app")
        dram = self.machine.dram
        read_bytes = dram._read_bytes
        read_lines = dram._read_lines
        # Single-line touches are the majority of every workload's events
        # (60-75%), so that case is fully inlined against locals hoisted
        # once per replay: TLB peek, L1 peek, and (Memento) the bypass
        # decision, identical to the _touch_lines body for lines == 1.
        translate = self._translate
        tlb_sets = self._tlb_l1_sets
        tlb_nsets = self._tlb_l1_nsets
        tlb_hit = self._tlb_l1_hit
        l1_sets = self._cache_l1_sets
        l1_nsets = self._cache_l1_nsets
        l1_hit = self._cache_l1_hit
        l1_hit_cycles = self._l1_hit_cycles
        caches = core.caches
        access_line = caches.access_line
        touch_cycles = self._touch_cycles
        columns = zip(
            columnar.kinds, columnar.f0, columnar.f1, columnar.f2, columnar.f3
        )
        if self.memento:
            # Memento stack: runtime methods bound directly (no per-event
            # stack-selection wrapper).
            malloc = self.runtime.malloc
            free = self.runtime.free
            header_of = self._header_of
            bypass = self.runtime.context.bypass
            bypass_enabled = bypass.enabled
            bypassed_cell = bypass._bypassed_lines
            regular_cell = bypass._regular_lines
            instantiate = caches.instantiate
            bypass_cycles = caches._r_bypass.cycles
            for kind, a, b, c, d in columns:
                if kind == KIND_TOUCH:
                    # The packed write column is an int array; rebool it
                    # so cache dirty bits stay booleans on this path too
                    # (audit rule: cache-writeback-ledger).
                    d = d != 0
                    if b != 1:
                        touch_lines(a, b, c, d)
                        continue
                    vaddr = addr_of[a] + c * 64
                    vpn = vaddr >> PAGE_SHIFT
                    tlb_set = tlb_sets[vpn % tlb_nsets]
                    if vpn in tlb_set:
                        tlb_set.move_to_end(vpn)
                        tlb_hit.pending += 1
                        frame_base = tlb_set[vpn] << PAGE_SHIFT
                    else:
                        frame_base = translate(vaddr) << PAGE_SHIFT
                    cache_addr = frame_base | (vaddr & _PAGE_MASK)
                    header = header_of(vaddr)
                    if header is not None:
                        # Saturated counters never bypass (bypass-soundness).
                        line_index = (vaddr - header.va) >> 6
                        if line_index >= header.bypass_counter:
                            bypassable = (
                                bypass_enabled and line_index < COUNTER_MAX
                            )
                            header.bypass_counter = (
                                line_index + 1
                                if line_index < COUNTER_MAX
                                else COUNTER_MAX
                            )
                        else:
                            bypassable = False
                        if bypassable:
                            bypassed_cell.pending += 1
                            instantiate(cache_addr, d)
                            core.cycles += bypass_cycles
                            touch_cycles.pending += bypass_cycles
                            continue
                        regular_cell.pending += 1
                    line = cache_addr >> 6
                    l1_set = l1_sets[line % l1_nsets]
                    if line in l1_set:
                        l1_set.move_to_end(line)
                        if d:
                            l1_set[line] = True
                        l1_hit.pending += 1
                        total = l1_hit_cycles
                    else:
                        total = access_line(line, d)[1]
                    core.cycles += total
                    touch_cycles.pending += total
                elif kind == KIND_COMPUTE:
                    core.cycles += a
                    app_cell.pending += a
                    if b:
                        # Inlined dram.record_bulk_bytes(b) (read traffic).
                        read_bytes.pending += b
                        read_lines.pending += b / 64
                elif kind == KIND_ALLOC:
                    addr_of[a] = malloc(b)
                    size_of[a] = b
                    allocs += 1
                else:
                    free(addr_of.pop(a))
                    del size_of[a]
                    frees += 1
        else:
            malloc = self.allocator.malloc
            free = self.allocator.free
            for kind, a, b, c, d in columns:
                if kind == KIND_TOUCH:
                    # Rebool the packed write column — see the Memento
                    # branch (audit rule: cache-writeback-ledger).
                    d = d != 0
                    if b != 1:
                        touch_lines(a, b, c, d)
                        continue
                    vaddr = addr_of[a] + c * 64
                    vpn = vaddr >> PAGE_SHIFT
                    tlb_set = tlb_sets[vpn % tlb_nsets]
                    if vpn in tlb_set:
                        tlb_set.move_to_end(vpn)
                        tlb_hit.pending += 1
                        frame_base = tlb_set[vpn] << PAGE_SHIFT
                    else:
                        frame_base = translate(vaddr) << PAGE_SHIFT
                    line = (frame_base | (vaddr & _PAGE_MASK)) >> 6
                    l1_set = l1_sets[line % l1_nsets]
                    if line in l1_set:
                        l1_set.move_to_end(line)
                        if d:
                            l1_set[line] = True
                        l1_hit.pending += 1
                        total = l1_hit_cycles
                    else:
                        total = access_line(line, d)[1]
                    core.cycles += total
                    touch_cycles.pending += total
                elif kind == KIND_COMPUTE:
                    core.cycles += a
                    app_cell.pending += a
                    if b:
                        # Inlined dram.record_bulk_bytes(b) (read traffic).
                        read_bytes.pending += b
                        read_lines.pending += b / 64
                elif kind == KIND_ALLOC:
                    addr_of[a] = malloc(core, b)
                    size_of[a] = b
                    allocs += 1
                else:
                    free(core, addr_of.pop(a))
                    del size_of[a]
                    frees += 1
        return allocs, frees

    def _replay_audited(self, events, audit) -> "tuple[int, int]":
        """Per-event replay with invariant checks at the audit's epoch.

        The dispatch mirrors ``_replay_events`` handler-for-handler; the
        only additions are the event counter and the epoch hook. Runs
        only when an auditor with a per-event/interval epoch is
        installed, so the unaudited paths carry none of this.
        """
        allocs = frees = 0
        addr_of = self._addr_of
        size_of = self._size_of
        touch_lines = self._touch_lines
        core = self.core
        dram = self.machine.dram
        ctx = audit_invariants.AuditContext.from_system(self)
        should_check = audit.should_check
        check = audit.check
        for index, event in enumerate(events):
            kind = type(event)
            if kind is Touch:
                touch_lines(
                    event.obj, event.lines, event.line_offset, event.write
                )
            elif kind is Compute:
                core.charge(event.cycles, "app")
                if event.dram_bytes:
                    dram.record_bulk_bytes(event.dram_bytes)
            elif kind is Alloc:
                addr_of[event.obj] = self._malloc(event.size)
                size_of[event.obj] = event.size
                allocs += 1
            elif kind is Free:
                self._free(addr_of.pop(event.obj))
                del size_of[event.obj]
                frees += 1
            if should_check(index):
                check(ctx, index)
        return allocs, frees

    def _replay_events(self, events) -> "tuple[int, int]":
        """Object-event fallback (traces carrying non-canonical events):
        a type-keyed dispatch table instead of an isinstance chain."""
        allocs = frees = 0
        addr_of = self._addr_of
        size_of = self._size_of

        def on_compute(event) -> None:
            self.core.charge(event.cycles, "app")
            if event.dram_bytes:
                self.machine.dram.record_bulk_bytes(event.dram_bytes)

        def on_alloc(event) -> None:
            nonlocal allocs
            addr_of[event.obj] = self._malloc(event.size)
            size_of[event.obj] = event.size
            allocs += 1

        def on_touch(event) -> None:
            self._touch_lines(
                event.obj, event.lines, event.line_offset, event.write
            )

        def on_free(event) -> None:
            nonlocal frees
            self._free(addr_of.pop(event.obj))
            del size_of[event.obj]
            frees += 1

        dispatch = {
            Compute: on_compute,
            Alloc: on_alloc,
            Touch: on_touch,
            Free: on_free,
        }
        get = dispatch.get
        for event in events:
            handler = get(type(event))
            if handler is not None:
                handler(event)
        return allocs, frees

    def _run_cold_start(self, trace: Trace) -> None:
        """Container setup before the function body (identical work on
        both stacks: container pages are not Memento-managed)."""
        spec = self.spec
        setup_app = int(
            spec.num_allocs * spec.compute_per_alloc * COLD_START_APP_FRACTION
        )
        self.core.charge(setup_app, "app")
        base = self.kernel.syscalls.mmap(
            self.core, self.process, COLD_START_PAGES * PAGE_SIZE
        )
        for page in range(COLD_START_PAGES):
            self.kernel.fault_handler.handle(
                self.core, self.process, base + page * PAGE_SIZE
            )
        self.machine.dram.record_bulk_bytes(COLD_START_PAGES * 1024)

    def _function_exit(self) -> None:
        """Function completion: runtimes tear down, the OS batch-frees."""
        # Invocation-exit costs charged while pages are still live
        # (reclaim's per-page release); a no-op on baseline/memento.
        self.stack.function_exit(self)
        if self.memento:
            self.runtime.teardown()
        else:
            self.allocator.teardown(self.core)
        self.kernel.exit_process(self.core, self.process)

    # -- result collection ----------------------------------------------------------

    def _collect(self, trace: Trace, allocs: int, frees: int) -> RunResult:
        stats = self.machine.stats
        cycles = {
            key.split("cycles.", 1)[1]: value
            for key, value in stats.with_prefix("cycles").items()
        }
        result = RunResult(
            name=trace.name,
            memento=self.memento,
            cycles=cycles,
            total_cycles=self.core.cycles,
            seconds=self.machine.params.cycles_to_seconds(self.core.cycles),
            dram_bytes=self.machine.dram.total_bytes,
            allocs=allocs,
            frees=frees,
            stats=stats.snapshot(),
        )
        result.peak_pages = max(
            self.machine.frames.peak("user")
            + self.machine.frames.peak("kernel"),
            1,
        )
        result.peak_user_pages = max(self.machine.frames.peak("user"), 1)
        if self.memento:
            allocator = self.runtime.context.object_allocator
            result.hot_alloc_hit_rate = allocator.hot.alloc_hit_rate()
            result.hot_free_hit_rate = allocator.hot.free_hit_rate()
            result.aac_hit_rate = self.page_allocator.aac.hit_rate()
            result.bypassed_lines = int(
                stats["memento.bypass.bypassed_lines"]
            )
            list_ops = (
                stats["memento.list.available.pushes"]
                + stats["memento.list.available.removes"]
                + stats["memento.list.full.pushes"]
                + stats["memento.list.full.removes"]
            )
            # Split list surgery between the alloc path (arena switches)
            # and the free path (full->available moves, releases).
            alloc_side = (
                stats["memento.list.full.pushes"]
                + stats["memento.list.available.removes"]
            )
            result.list_ops_alloc = alloc_side / max(1, allocs)
            result.list_ops_free = (list_ops - alloc_side) / max(1, frees)
            result.user_pages_aggregate = int(
                stats["memento.page.arena_pages_mapped"]
            ) + self.process.user_pages_aggregate
            # Memento table pages are pool pages recycled in hardware; the
            # OS allocates them once, so the aggregate contribution is the
            # peak, not the churn count.
            result.kernel_pages_aggregate = (
                int(stats["memento.page.table_pages_peak"])
                + int(self.machine.frames.aggregate("kernel"))
                + self.process.vmas.aggregate_metadata_pages()
            )
        else:
            result.user_pages_aggregate = self.process.user_pages_aggregate
            result.kernel_pages_aggregate = int(
                self.machine.frames.aggregate("kernel")
            ) + self.process.vmas.aggregate_metadata_pages()
        return result
