"""Memento reproduction: hardware memory management for serverless.

A behavioral, pure-Python reproduction of *Memento: Architectural Support
for Ephemeral Memory Management in Serverless Environments* (MICRO '23).

Layers (bottom-up):

* :mod:`repro.sim` — the machine: caches, TLBs, DRAM, cycle cost model.
* :mod:`repro.kernel` — the OS: buddy allocator, page tables, mmap/munmap,
  page faults, processes.
* :mod:`repro.allocators` — software allocators (pymalloc, jemalloc, Go,
  glibc-large, idealized Mallacc): the baseline stack.
* :mod:`repro.core` — Memento itself: arenas, the Hardware Object Table,
  the hardware page allocator, main-memory bypass, and the obj-alloc /
  obj-free runtime integration.
* :mod:`repro.workloads` — the paper's 23 workloads as deterministic
  statistical traces.
* :mod:`repro.harness` / :mod:`repro.analysis` — baseline-vs-Memento
  experiments and the evaluation-section metrics.

Quick start::

    from repro import run_workload, get_workload
    result = run_workload(get_workload("html"))
    print(result.speedup, result.breakdown())
"""

from repro.core.config import MementoConfig
from repro.core.runtime import MementoRuntime
from repro.harness.engine import (
    ExperimentEngine,
    RunRequest,
    get_default_engine,
)
from repro.harness.experiment import run_all, run_workload
from repro.harness.system import SimulatedSystem
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.workloads.registry import all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "ExperimentEngine",
    "Kernel",
    "Machine",
    "MementoConfig",
    "MementoRuntime",
    "RunRequest",
    "SimulatedSystem",
    "all_workloads",
    "get_default_engine",
    "get_workload",
    "run_all",
    "run_workload",
]
