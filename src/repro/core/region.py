"""The reserved Memento virtual region (§3.2).

The OS reserves a contiguous virtual range per process and exposes it to
hardware via the MRS/MRE control registers. The region is divided *evenly*
into 64 size-class sub-regions — the key design decision that lets the
hardware recover the size class and the arena base address of any object
pointer with simple bit arithmetic (no associative search, no metadata
lookup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.arena import arena_span_bytes
from repro.core.config import MementoConfig


@dataclass(frozen=True)
class MementoRegion:
    """MRS/MRE register pair plus the derived carve geometry.

    The geometry is fixed at reservation time, so the per-class arena
    spans are precomputed into ``spans`` — address recovery on the free
    path is then pure integer arithmetic, exactly as in the hardware.
    """

    mrs: int  # Memento Region Start
    mre: int  # Memento Region End (exclusive)
    config: MementoConfig

    def __post_init__(self) -> None:
        config = self.config
        object.__setattr__(
            self,
            "spans",
            tuple(
                arena_span_bytes(size_class, config)
                for size_class in range(config.num_size_classes)
            ),
        )
        object.__setattr__(
            self, "per_class_bytes", config.per_class_region_bytes
        )

    @classmethod
    def reserve(
        cls, base: int, config: MementoConfig
    ) -> "MementoRegion":
        """Reserve a region of ``config.region_bytes`` at ``base``."""
        if base % 4096:
            raise ValueError("region base must be page aligned")
        return cls(mrs=base, mre=base + config.region_bytes, config=config)

    def contains(self, addr: int) -> bool:
        """MMU check: does ``addr`` fall inside [MRS, MRE)? (§3.2)"""
        return self.mrs <= addr < self.mre

    def class_base(self, size_class: int) -> int:
        """Base virtual address of a size class's sub-region."""
        if not 0 <= size_class < self.config.num_size_classes:
            raise ValueError(f"size class {size_class} out of range")
        return self.mrs + size_class * self.per_class_bytes

    def size_class_of(self, addr: int) -> int:
        """Recover the size class of an in-region address (bit math)."""
        if not self.mrs <= addr < self.mre:
            raise ValueError(f"{addr:#x} is outside the Memento region")
        return (addr - self.mrs) // self.per_class_bytes

    def arena_base_of(self, addr: int) -> Tuple[int, int]:
        """Recover ``(size_class, arena_base)`` for an object address.

        The offset within the size-class sub-region is rounded down to the
        arena span of that class — "the rounding can be implemented in
        hardware efficiently because the arena sizes are known in advance".
        """
        offset = addr - self.mrs
        if offset < 0 or addr >= self.mre:
            raise ValueError(f"{addr:#x} is outside the Memento region")
        size_class = offset // self.per_class_bytes
        class_offset = offset - size_class * self.per_class_bytes
        return size_class, addr - class_offset % self.spans[size_class]

    def arenas_per_class(self, size_class: int) -> int:
        """How many arenas fit in one size class's sub-region."""
        return self.config.per_class_region_bytes // arena_span_bytes(
            size_class, self.config
        )
