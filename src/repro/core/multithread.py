"""Multi-threaded Memento (§3.4).

Serverless functions are typically single-threaded, but Memento supports
multi-threaded applications:

* **Per-thread arenas.** Each thread allocates from arenas whose virtual
  range lives in its own window of every size-class sub-region, so the
  allocation path is race-free by construction — no locks, no atomics.
* **Cross-thread frees.** An obj-free whose operand lies outside the
  executing thread's windows is recognized by the hardware (pure address
  arithmetic) and handled one of two ways:

  - ``"software"`` — batched: the free is appended to a thread-local
    buffer; when the buffer fills (or at a flush point), a software
    handler acquires the owner's allocator lock and performs the batch,
    amortizing the handler invocation.
  - ``"hardware"`` — the local HOT issues a BusRdX for the owner arena's
    header line, acquires exclusive ownership through the regular cache
    coherence protocol, and performs the read-modify-write of the bitmap
    atomically. Write serialization comes from coherence, not locks.

Both paths end in the owner allocator's bitmap, so double frees and
address validation behave exactly as in the single-threaded design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.allocators.base import align8
from repro.core.bypass import BypassEngine
from repro.core.config import MementoConfig
from repro.core.errors import MementoDoubleFreeError, NotAMementoAddressError
from repro.core.object_allocator import HardwareObjectAllocator
from repro.core.region import MementoRegion
from repro.core.runtime import REGION_BASE
from repro.sim.params import LINE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.page_allocator import HardwarePageAllocator
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.machine import Core

#: Cycle cost of invoking the software batch-free handler (entry, lock
#: acquisition, loop setup) — amortized over the batch (§3.4).
SOFTWARE_HANDLER_INVOKE = 450
#: Per-object cost inside the software handler (locked free-list update).
SOFTWARE_HANDLER_PER_OBJECT = 40
#: Extra latency of a BusRdX that must pull the header line out of
#: another core's private cache (coherence round trip).
BUSRDX_REMOTE_PENALTY = 60


@dataclass
class ThreadState:
    """One thread's allocator plus its deferred cross-thread frees."""

    thread_id: int
    allocator: HardwareObjectAllocator
    nonlocal_buffer: List[int] = field(default_factory=list)


class MultiThreadMementoRuntime:
    """A process-wide Memento runtime for ``num_threads`` threads.

    Each thread is pinned to a core (round-robin over the machine's
    cores) and owns a :class:`HardwareObjectAllocator` over its own VA
    windows. ``cross_thread_mode`` selects the §3.4 deallocation strategy
    for frees of another thread's objects.
    """

    def __init__(
        self,
        kernel: "Kernel",
        process: "Process",
        page_allocator: "HardwarePageAllocator",
        num_threads: int,
        config: Optional[MementoConfig] = None,
        cross_thread_mode: str = "hardware",
        software_batch_size: int = 32,
    ) -> None:
        if cross_thread_mode not in ("hardware", "software"):
            raise ValueError(
                "cross_thread_mode must be 'hardware' or 'software'"
            )
        self.kernel = kernel
        self.process = process
        self.config = config or MementoConfig()
        self.page_allocator = page_allocator
        self.cross_thread_mode = cross_thread_mode
        self.software_batch_size = software_batch_size
        self.machine = kernel.machine
        self.stats = self.machine.stats.scoped("memento.mt")

        base = REGION_BASE + process.pid * self.config.region_bytes
        self.region = MementoRegion.reserve(base, self.config)
        page_allocator.attach(process, self.region, threads=num_threads)
        self.bypass = BypassEngine(
            self.config, self.machine.stats.scoped("memento.bypass")
        )

        cores = self.machine.cores
        self.threads: List[ThreadState] = [
            ThreadState(
                thread_id=tid,
                allocator=HardwareObjectAllocator(
                    cores[tid % len(cores)],
                    process,
                    self.region,
                    page_allocator,
                    self.config,
                    thread_id=tid,
                ),
            )
            for tid in range(num_threads)
        ]
        #: Shared ownership map: arena base VA -> owning thread id.
        self._arena_owner: Dict[int, int] = {}

    # -- allocation ----------------------------------------------------------

    def malloc(self, thread_id: int, size: int) -> int:
        """Allocate from ``thread_id``'s own arenas (race-free, §3.4)."""
        if align8(size) > self.config.small_threshold:
            raise ValueError("multi-thread runtime serves small objects")
        state = self.threads[thread_id]
        addr = state.allocator.obj_alloc(size)
        _cls, arena_base = self.region.arena_base_of(addr)
        self._arena_owner.setdefault(arena_base, thread_id)
        self.stats.add("allocs")
        return addr

    # -- free ------------------------------------------------------------------

    def free(self, thread_id: int, addr: int) -> None:
        """Free ``addr`` from ``thread_id``; detects non-local objects by
        comparing the address against the thread's own VA windows."""
        if not self.region.contains(addr):
            raise NotAMementoAddressError(f"{addr:#x} outside the region")
        owner = self._owner_of(addr)
        state = self.threads[thread_id]
        if owner == thread_id:
            state.allocator.obj_free(addr)
            self.stats.add("local_frees")
            return
        self.stats.add("cross_thread_frees")
        if self.cross_thread_mode == "software":
            state.nonlocal_buffer.append(addr)
            if len(state.nonlocal_buffer) >= self.software_batch_size:
                self.flush_nonlocal(thread_id)
        else:
            self._hardware_remote_free(state, owner, addr)

    def _owner_of(self, addr: int) -> int:
        size_class, arena_base = self.region.arena_base_of(addr)
        page_state = self.page_allocator.state_of(self.process)
        return page_state.owner_thread(size_class, arena_base)

    def _hardware_remote_free(
        self, state: ThreadState, owner: int, addr: int
    ) -> None:
        """§3.4 hardware-only path: BusRdX on the owner arena's header,
        then an atomic read-modify-write of the bitmap in the local HOT."""
        owner_alloc = self.threads[owner].allocator
        _cls, arena_base = self.region.arena_base_of(addr)
        header = owner_alloc.headers.get(arena_base)
        if header is None:
            raise MementoDoubleFreeError(
                f"{addr:#x} does not belong to a live arena"
            )
        core = state.allocator.core
        # BusRdX: exclusive ownership of the header line. The line most
        # likely sits dirty in the owner core's cache.
        result = core.caches.access_line(header.pa >> LINE_SHIFT, write=True)
        core.charge(
            result.cycles + BUSRDX_REMOTE_PENALTY, "hw_free"
        )
        # Invalidate the owner's HOT entry if it caches this header —
        # coherence supplies the line and drops the stale copy (§3.4).
        # The header parks on the owner's available list so the owner's
        # next allocation of this class finds it through memory.
        entry = owner_alloc.hot.lookup(header.size_class)
        hot_resident = entry.valid and entry.header is header
        index = header.object_index(addr, self.config)
        was_full = header.is_full
        # Clear the slot *before* parking the header on a list: pushing
        # first would momentarily leave a full arena on the available
        # list, and a double-free abort at clear_slot would leave it
        # there permanently (audit rule: arena-list-membership).
        if not header.clear_slot(index):
            raise MementoDoubleFreeError(f"double free of {addr:#x}")
        if hot_resident:
            owner_alloc.hot.entries[header.size_class].header = None
            owner_alloc.available[header.size_class].push_head(header)
            self.stats.add("hot_invalidations")
        elif was_full and header.list_name == "full":
            # The freed slot makes the arena available again.
            owner_alloc.full[header.size_class].remove(header)
            owner_alloc.available[header.size_class].push_head(header)
            core.charge(2 * self.machine.costs.list_op, "hw_free")
        core.charge(self.machine.costs.hot_hit, "hw_free")
        self.stats.add("hardware_remote_frees")

    def flush_nonlocal(self, thread_id: int) -> int:
        """§3.4 software path: the batch handler frees buffered objects
        under the owner allocators' locks."""
        state = self.threads[thread_id]
        if not state.nonlocal_buffer:
            return 0
        core = state.allocator.core
        core.charge(SOFTWARE_HANDLER_INVOKE, "hw_free")
        flushed = 0
        for addr in state.nonlocal_buffer:
            owner = self._owner_of(addr)
            core.charge(SOFTWARE_HANDLER_PER_OBJECT, "hw_free")
            self.threads[owner].allocator.obj_free(addr)
            flushed += 1
        state.nonlocal_buffer.clear()
        self.stats.add("software_batch_flushes")
        self.stats.add("software_batched_frees", flushed)
        return flushed

    def flush_all(self) -> int:
        """Flush every thread's buffer (context switch / exit, §3.4)."""
        return sum(
            self.flush_nonlocal(state.thread_id) for state in self.threads
        )

    # -- introspection -----------------------------------------------------------

    @property
    def live_objects(self) -> int:
        return sum(
            header.live_objects
            for state in self.threads
            for header in state.allocator.headers.values()
        )

    def pending_nonlocal(self) -> int:
        return sum(len(state.nonlocal_buffer) for state in self.threads)
