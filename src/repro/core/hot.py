"""The Hardware Object Table (HOT), §3.1.

A per-core direct-mapped structure of 64 entries — one per size class —
each holding the most recently used arena header of that class plus the
header's physical address and the size class's available/full list heads
(Fig. 5b). Hits complete in 2 cycles without memory requests (§6.4);
lookup uses the size class as a direct index, no associative search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.arena import ArenaHeader
from repro.core.config import MementoConfig
from repro.obs import events as obs_events
from repro.sim.stats import ScopedStats


@dataclass(slots=True)
class HotEntry:
    """One HOT entry: cached header + PA + list heads (Fig. 5b).

    Behaviorally the entry references the live header object; the cached
    copy/write-back discipline shows up as cycle and traffic costs charged
    by the object allocator, not as a second copy of the bits.
    """

    header: Optional[ArenaHeader] = None

    @property
    def valid(self) -> bool:
        return self.header is not None


class HardwareObjectTable:
    """64-entry direct-mapped cache of per-size-class arena headers."""

    __slots__ = (
        "config",
        "stats",
        "entries",
        "_fills",
        "_alloc_hits",
        "_alloc_misses",
        "_free_hits",
        "_free_misses",
        "_ring",
    )

    def __init__(self, config: MementoConfig, stats: ScopedStats) -> None:
        self.config = config
        self.stats = stats
        self.entries: List[HotEntry] = [
            HotEntry() for _ in range(config.num_size_classes)
        ]
        # Interned counter cells: record_alloc/record_free run once per
        # obj-alloc/obj-free — the hottest counters in the Memento stack.
        self._fills = stats.counter("fills")
        self._alloc_hits = stats.counter("alloc_hits")
        self._alloc_misses = stats.counter("alloc_misses")
        self._free_hits = stats.counter("free_hits")
        self._free_misses = stats.counter("free_misses")
        #: Sampled hardware-event ring, bound at construction (None keeps
        #: the record paths to a single attribute test when sampling is off).
        self._ring = obs_events.RING

    def lookup(self, size_class: int) -> HotEntry:
        """Direct-mapped index by size class (no search)."""
        return self.entries[size_class]

    def fill(self, size_class: int, header: ArenaHeader) -> Optional[ArenaHeader]:
        """Install ``header``; return the replaced header for write-back."""
        entry = self.entries[size_class]
        replaced = entry.header
        entry.header = header
        self._fills.add()
        return replaced

    def record_alloc(self, hit: bool) -> None:
        (self._alloc_hits if hit else self._alloc_misses).pending += 1
        if self._ring is not None:
            self._ring.record("hot.alloc_hit" if hit else "hot.alloc_miss")

    def record_free(self, hit: bool) -> None:
        (self._free_hits if hit else self._free_misses).pending += 1
        if self._ring is not None:
            self._ring.record("hot.free_hit" if hit else "hot.free_miss")

    def alloc_hit_rate(self) -> float:
        """Fraction of obj-alloc requests satisfied by the resident entry."""
        hits = self.stats["alloc_hits"]
        total = hits + self.stats["alloc_misses"]
        return hits / total if total else 1.0

    def free_hit_rate(self) -> float:
        hits = self.stats["free_hits"]
        total = hits + self.stats["free_misses"]
        return hits / total if total else 1.0

    def flush(self) -> int:
        """Invalidate every entry (context switch, §6.6).

        Returns the number of valid entries flushed so the kernel can
        charge the per-entry write-back cost.
        """
        flushed = 0
        for entry in self.entries:
            if entry.valid:
                entry.header = None
                flushed += 1
        self.stats.add("flushes")
        self.stats.add("flushed_entries", flushed)
        return flushed

    @property
    def valid_entries(self) -> int:
        return sum(1 for entry in self.entries if entry.valid)
