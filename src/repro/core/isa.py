"""ISA extension semantics: obj-alloc and obj-free (§3.1).

The instructions are thin: obj-alloc carries the requested size and
returns a virtual address; obj-free carries the address. All the work
happens in the hardware object allocator; this module gives the pair a
first-class, documented surface (and is where an instruction-level
simulator would hook decode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.object_allocator import HardwareObjectAllocator


@dataclass(frozen=True)
class MementoIsa:
    """The two-instruction interface exposed to language runtimes."""

    allocator: "HardwareObjectAllocator"

    def obj_alloc(self, size: int) -> int:
        """``obj-alloc size`` → virtual address of a block of ≥ ``size``
        bytes (size must be within the small-object threshold)."""
        return self.allocator.obj_alloc(size)

    def obj_free(self, addr: int) -> None:
        """``obj-free addr`` → deallocate; raises
        :class:`~repro.core.errors.MementoDoubleFreeError` to software on
        a double free (§3.4)."""
        self.allocator.obj_free(addr)
