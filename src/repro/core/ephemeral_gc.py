"""Ephemeral-aware garbage collection — the §4 extension, built out.

The paper sketches this as future work: "although Memento does not help
with tracking liveness, it could be integrated with an enhanced GC
algorithm to help differentiate between ephemeral and non-ephemeral
allocations. Once this distinction is made, the GC algorithm could
leverage Memento to proactively free dead ephemeral objects before they
create too much cache pressure rather than waiting to free objects when
there is too much memory pressure."

This module implements that design:

* **Ephemerality prediction** comes from Memento's own hardware state —
  the per-size-class allocation/free rates the HOT observes. A size class
  whose frees closely track its allocations is ephemeral; one that only
  accumulates is not. (Allocation-site prediction would be richer; the
  hardware only sees classes, so that is what we use.)
* **Proactive collection** runs when the live ephemeral population
  crosses a small threshold — orders of magnitude below the heap-growth
  trigger of a conventional GOGC-style policy — and frees dead ephemeral
  objects through ``obj-free`` while their arenas (and the HOT entry) are
  still cache-resident. Non-ephemeral classes are left to the normal
  pacing, preserving the batch-free-at-exit behaviour that makes Memento
  cheap for long-lived state.

The measurable effect (see ``benchmarks/test_ext_ephemeral_gc.py``):
dead-object reclamation happens at HOT-hit cost instead of the free-miss
header fetches a deferred collection pays once arenas have left the
cache, and arena churn drops because slots recycle sooner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.allocators.base import align8
from repro.core.config import MementoConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import MementoRuntime


@dataclass
class ClassStats:
    """Per-size-class behaviour observed through the Memento interface."""

    allocs: int = 0
    deaths: int = 0

    @property
    def death_ratio(self) -> float:
        return self.deaths / self.allocs if self.allocs else 0.0


@dataclass
class EphemeralGcConfig:
    """Tuning for the ephemeral-aware collector."""

    #: A class is ephemeral when at least this fraction of its
    #: allocations have died (observed through the runtime).
    ephemeral_death_ratio: float = 0.5
    #: Minimum allocations before a class is classified at all.
    warmup_allocs: int = 64
    #: Proactive collection triggers when this many dead ephemeral
    #: objects are pending — small, so arenas are still cache-hot.
    proactive_threshold: int = 64
    #: Fallback pacing for non-ephemeral garbage (GOGC-style heap-growth
    #: trigger, in bytes of dead-but-unreclaimed memory).
    deferred_threshold_bytes: int = 1 << 20


class EphemeralAwareGc:
    """A GC front-end that drives ``obj-free`` proactively (§4).

    Wraps a :class:`~repro.core.runtime.MementoRuntime`: the language
    runtime reports deaths through :meth:`on_dead` (as a reference
    counter or tracer would); the collector decides *when* each death
    becomes an ``obj-free``.
    """

    def __init__(
        self,
        runtime: "MementoRuntime",
        config: Optional[EphemeralGcConfig] = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or EphemeralGcConfig()
        self.stats = runtime.kernel.machine.stats.scoped("memento.egc")
        self._class_stats: Dict[int, ClassStats] = {}
        self._pending_ephemeral: List[int] = []
        self._pending_other: List[int] = []
        self._pending_other_bytes = 0
        self._size_of: Dict[int, int] = {}

    # -- allocation/death feed ------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate through the runtime, learning class behaviour."""
        addr = self.runtime.malloc(size)
        size_class = (align8(size) // 8) - 1
        self._class_stats.setdefault(size_class, ClassStats()).allocs += 1
        self._size_of[addr] = align8(size)
        return addr

    def on_dead(self, addr: int) -> None:
        """The language runtime determined ``addr`` is unreachable."""
        size = self._size_of.get(addr)
        if size is None:
            raise ValueError(f"{addr:#x} was not allocated through this GC")
        size_class = size // 8 - 1
        stats = self._class_stats.setdefault(size_class, ClassStats())
        stats.deaths += 1
        if self.is_ephemeral(size_class):
            self._pending_ephemeral.append(addr)
            if len(self._pending_ephemeral) >= self.config.proactive_threshold:
                self.collect_ephemeral()
        else:
            self._pending_other.append(addr)
            self._pending_other_bytes += size
            if self._pending_other_bytes >= self.config.deferred_threshold_bytes:
                self.collect_deferred()

    # -- classification ----------------------------------------------------------

    def is_ephemeral(self, size_class: int) -> bool:
        """Classes whose objects demonstrably die fast are ephemeral.

        Before warmup the class is treated as ephemeral — optimistic,
        because misclassifying a long-lived class costs only an early
        free, while missing an ephemeral class forfeits the cache-hot
        reclamation the mechanism exists for.
        """
        stats = self._class_stats.get(size_class)
        if stats is None or stats.allocs < self.config.warmup_allocs:
            return True
        return stats.death_ratio >= self.config.ephemeral_death_ratio

    def ephemeral_classes(self) -> List[int]:
        return [
            size_class
            for size_class, stats in sorted(self._class_stats.items())
            if stats.allocs >= self.config.warmup_allocs
            and stats.death_ratio >= self.config.ephemeral_death_ratio
        ]

    # -- collection ----------------------------------------------------------------

    def collect_ephemeral(self) -> int:
        """Proactively free dead ephemeral objects (cache-hot arenas)."""
        freed = self._drain(self._pending_ephemeral)
        self.stats.add("proactive_collections")
        self.stats.add("proactive_frees", freed)
        return freed

    def collect_deferred(self) -> int:
        """Conventional pacing for non-ephemeral garbage."""
        freed = self._drain(self._pending_other)
        self._pending_other_bytes = 0
        self.stats.add("deferred_collections")
        self.stats.add("deferred_frees", freed)
        return freed

    def collect_all(self) -> int:
        """Full collection (exit or memory pressure)."""
        return self.collect_ephemeral() + self.collect_deferred()

    def _drain(self, pending: List[int]) -> int:
        freed = 0
        for addr in pending:
            self.runtime.free(addr)
            del self._size_of[addr]
            freed += 1
        pending.clear()
        return freed

    # -- introspection --------------------------------------------------------------

    @property
    def pending_dead(self) -> int:
        return len(self._pending_ephemeral) + len(self._pending_other)

    @property
    def live_tracked(self) -> int:
        return len(self._size_of) - self.pending_dead
